//! Quickstart: explain a fairness violation in three steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fume::core::{ExplainRequest, Fume};
use fume::forest::DareConfig;
use fume::lattice::SupportRange;
use fume::tabular::datasets::planted_toy;
use fume::tabular::split::train_test_split;

fn main() {
    // 1. Data: a toy population in which label bias against the protected
    //    group was planted inside the cohort `city = urban AND job = manual`.
    let (data, group) = planted_toy().generate_full(42).expect("generate");
    let (train, test) = train_test_split(&data, 0.3, 42).expect("split");
    println!(
        "train: {} rows, test: {} rows, sensitive attribute: {}",
        train.num_rows(),
        test.num_rows(),
        train.schema().attribute(group.attr).unwrap().name()
    );

    // 2. Configure FUME: statistical parity, subsets of 2-25% support,
    //    up to 2 literals, top-5.
    let fume = Fume::builder()
        .support(SupportRange::new(0.02, 0.25).expect("valid range"))
        .forest(DareConfig::small(42))
        .build();

    // 3. Explain. FUME trains a DaRE forest, measures its violation, and
    //    searches the predicate lattice using machine unlearning to score
    //    every candidate subset.
    let report = fume.run(&ExplainRequest::new(&train, &test, group)).expect("a violation exists");

    println!(
        "\nmodel accuracy: {:.1}%   statistical parity violation |F|: {:.4}",
        report.original_accuracy * 100.0,
        report.original_bias
    );
    println!(
        "unlearning operations: {}   search time: {:.2}s\n",
        report.unlearning_operations,
        report.search_time.as_secs_f64()
    );
    println!("{}", report.to_markdown());
    println!(
        "The planted cohort (city = urban AND job = manual) should rank at \
         or near the top."
    );
}
