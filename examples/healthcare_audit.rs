//! Healthcare audit — MEPS-style utilization model, across all three
//! fairness metrics.
//!
//! The paper observes that the attributable subsets *differ across
//! fairness metrics* on the same data: no single cohort explains every
//! notion of bias. This example reproduces that observation on the MEPS
//! stand-in.
//!
//! ```text
//! cargo run --release --example healthcare_audit
//! ```

use fume::core::{ExplainRequest, Fume};
use fume::fairness::{fairness_report, FairnessMetric};
use fume::forest::{DareConfig, DareForest};
use fume::tabular::datasets::meps;
use fume::tabular::split::train_test_split;
use fume::tabular::Classifier;

fn main() {
    let (data, group) = meps().generate_scaled(0.5, 19).expect("generate");
    let (train, test) = train_test_split(&data, 0.3, 19).expect("split");
    let forest_cfg = DareConfig::default().with_trees(40).with_seed(19);
    let forest = DareForest::fit(&train, forest_cfg.clone());

    let snapshot = fairness_report(&forest, &test, group);
    println!(
        "utilization model: accuracy {:.1}%\n  statistical parity: {:+.4}\n  \
         equalized odds:     {:+.4}\n  predictive parity:  {:+.4}\n",
        forest.accuracy(&test) * 100.0,
        snapshot.statistical_parity,
        snapshot.equalized_odds,
        snapshot.predictive_parity,
    );

    for metric in FairnessMetric::ALL {
        println!("== top subsets attributable to {} ==", metric.name());
        let fume = Fume::builder()
            .metric(metric)
            .top_k(3)
            .forest(forest_cfg.clone())
            .build();
        match fume.run(&ExplainRequest::new(&train, &test, group).with_model(&forest)) {
            Ok(report) => print!("{}", report.to_markdown()),
            Err(e) => println!("  ({e})"),
        }
        println!();
    }
    println!(
        "Note how the ranked cohorts differ per metric — the paper's finding \
         that no single subset explains bias across all fairness notions."
    );
}
