//! Credit-scoring audit — the paper's Example 1.1 end to end.
//!
//! A loan-approval forest discriminates against younger applicants on a
//! German-Credit-like dataset. The example contrasts three explanation
//! strategies:
//! 1. manually mining discriminatory tree paths (Table 1 — inadequate);
//! 2. the DropUnprivUnfavor baseline (blunt);
//! 3. FUME's top-5 attributable subsets (precise and interpretable);
//!
//! and finally *applies* the best subset's removal via exact unlearning.
//!
//! ```text
//! cargo run --release --example credit_audit
//! ```

use fume::core::{
    apply_removal, drop_unpriv_unfavor, mine_unfair_paths, ExplainRequest, Fume,
};
use fume::fairness::{fairest_threshold, threshold_sweep, FairnessMetric};
use fume::forest::{DareConfig, DareForest};
use fume::tabular::datasets::german_credit;
use fume::tabular::split::train_test_split;
use fume::tabular::Classifier;

fn main() {
    let (data, group) = german_credit().generate_full(7).expect("generate");
    let (train, test) = train_test_split(&data, 0.3, 7).expect("split");

    let forest_cfg = DareConfig::default().with_trees(50).with_seed(7);
    let forest = DareForest::fit(&train, forest_cfg.clone());
    let metric = FairnessMetric::StatisticalParity;
    let bias = metric.bias(&forest, &test, group);
    println!(
        "deployed model: accuracy {:.1}%, statistical parity violation {:.4}",
        forest.accuracy(&test) * 100.0,
        bias
    );

    // --- Strategy 0: is this just a threshold artifact? ---
    let sweep = threshold_sweep(&forest, &test, group, metric, 19);
    let acc_now = forest.accuracy(&test);
    let useful: Vec<_> = sweep
        .iter()
        .copied()
        .filter(|p| p.accuracy >= acc_now - 0.03)
        .collect();
    if let (Some(constrained), Some(any)) =
        (fairest_threshold(&useful), fairest_threshold(&sweep))
    {
        println!(
            "\n== Strategy 0: shared-threshold sweep ==\n  \
             within 3pp of deployed accuracy, the fairest cut-off ({:.2}) still \
             leaves |F| = {:.4};\n  erasing the gap entirely needs a degenerate \
             cut-off ({:.2}) costing {:.1}pp accuracy —\n  the violation is \
             structural, not a thresholding artifact.",
            constrained.threshold,
            constrained.fairness.abs(),
            any.threshold,
            (acc_now - any.accuracy) * 100.0
        );
    }

    // --- Strategy 1: manual path mining (the paper's Table 1) ---
    println!("\n== Strategy 1: discriminatory paths in the first 5 levels ==");
    let paths = mine_unfair_paths(&forest, &train, group, 5);
    for p in paths.iter().take(4) {
        println!(
            "  tree {:>2}: {} ({:.2}% of samples)",
            p.tree_index,
            p.description,
            p.sample_fraction * 100.0
        );
    }
    println!(
        "  ... {} such paths across {} trees — impossible to summarize by hand.",
        paths.len(),
        forest.trees().len()
    );

    // --- Strategy 2: DropUnprivUnfavor ---
    println!("\n== Strategy 2: DropUnprivUnfavor baseline ==");
    let b = drop_unpriv_unfavor(&train, &test, group, metric, &forest_cfg);
    println!(
        "  removes {:.1}% of training data, parity reduction {:.1}%, accuracy {:.1}% -> {:.1}%",
        b.removed_fraction * 100.0,
        b.parity_reduction * 100.0,
        b.accuracy_before * 100.0,
        b.accuracy_after * 100.0
    );

    // --- Strategy 3: FUME ---
    println!("\n== Strategy 3: FUME top-5 attributable subsets (5-15% support) ==");
    let fume = Fume::builder().forest(forest_cfg).build();
    let report = fume
        .run(&ExplainRequest::new(&train, &test, group).with_model(&forest))
        .expect("the model is biased");
    print!("{}", report.to_markdown());
    println!(
        "  ({} unlearning operations in {:.2}s)",
        report.unlearning_operations,
        report.search_time.as_secs_f64()
    );

    // --- Act on the finding: unlearn the top subset for real ---
    if let Some(top) = report.top_k.first() {
        let (cleaned, del) = apply_removal(&forest, &train, &top.rows);
        println!(
            "\nafter unlearning `{}` ({} rows): violation {:.4} -> {:.4}, \
             accuracy {:.1}% -> {:.1}% ({} subtrees retrained)",
            top.pattern,
            top.rows.len(),
            bias,
            metric.bias(&cleaned, &test, group),
            forest.accuracy(&test) * 100.0,
            cleaned.accuracy(&test) * 100.0,
            del.subtrees_retrained
        );
    }
}
