//! Production lifecycle of an unlearnable model: train → persist → serve
//! → honor deletion requests → absorb new data → re-audit — the workflow
//! that motivates machine unlearning in the first place (GDPR/CCPA right
//! to be forgotten, paper §7), plus the diagnostic extras built around
//! FUME: slice finding and instance-level attribution.
//!
//! ```text
//! cargo run --release --example model_lifecycle
//! ```

use fume::core::{find_slices, overlap_with_subset, rank_instances, ExplainRequest, Fume};
use fume::fairness::FairnessMetric;
use fume::forest::persist;
use fume::forest::{DareConfig, DareForest};
use fume::lattice::SupportRange;
use fume::tabular::datasets::planted_toy;
use fume::tabular::split::train_test_split;
use fume::tabular::Classifier;

fn main() {
    let (data, group) = planted_toy().generate_full(99).expect("generate");
    let (train, test) = train_test_split(&data, 0.3, 99).expect("split");
    let cfg = DareConfig::default().with_trees(30).with_max_depth(8).with_seed(99);

    // --- train and persist ---
    let forest = DareForest::fit(&train, cfg.clone());
    let path = std::env::temp_dir().join("fume_lifecycle_model.dare");
    persist::save(&forest, &path).expect("save");
    println!(
        "trained on {} rows, saved {} bytes to {}",
        forest.num_instances(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );

    // --- reload and serve ---
    let mut served = persist::load(&path).expect("load");
    assert_eq!(served.predict_proba(&test), forest.predict_proba(&test));
    println!("reloaded model reproduces predictions bit-for-bit");

    // --- a deletion request arrives (right to be forgotten) ---
    let forget: Vec<u32> = vec![12, 57, 101];
    let report = served.delete(&forget, &train).expect("rows exist");
    println!(
        "unlearned {} individuals ({} nodes updated, {} subtrees retrained)",
        forget.len(),
        report.nodes_updated,
        report.subtrees_retrained
    );

    // --- new data arrives ---
    served.insert(&forget, &train).expect("re-adding is an insert");
    println!("re-learned the rows as fresh data; {} instances held", served.num_instances());

    // --- periodic fairness audit with FUME ---
    let fume = Fume::builder()
        .support(SupportRange::new(0.02, 0.25).expect("valid"))
        .forest(cfg.clone())
        .build();
    let audit = fume
        .run(&ExplainRequest::new(&train, &test, group).with_model(&served))
        .expect("the toy model is biased");
    println!(
        "\naudit: |F| = {:.4}; top attributable subset: {} (removes {:.1}% of the bias)",
        audit.original_bias,
        audit.top_k[0].pattern,
        audit.top_k[0].parity_reduction * 100.0
    );

    // --- drill down: which individuals inside the subset matter most? ---
    let top = &audit.top_k[0];
    let ranked = rank_instances(
        &served,
        &train,
        &test,
        group,
        FairnessMetric::StatisticalParity,
        Some(&top.rows),
        None,
    );
    println!(
        "instance drill-down: {} rows ranked; strongest single row removes {:.2}% of the bias",
        ranked.len(),
        ranked.first().map(|a| a.parity_reduction * 100.0).unwrap_or(0.0)
    );
    let all_ranked = rank_instances(
        &served,
        &train,
        &test,
        group,
        FairnessMetric::StatisticalParity,
        Some(&(0..400).collect::<Vec<_>>()),
        None,
    );
    println!(
        "of the 20 individually most responsible rows (first 400 scanned), {:.0}% lie inside the subset",
        overlap_with_subset(&all_ranked, &top.rows, 20) * 100.0
    );

    // --- contrast: what would a slice finder say? ---
    let params = fume.config().search_params().expect("valid");
    let slices = find_slices(&served, &test, &params, 3);
    println!("\nslice finder (accuracy lens, not fairness):");
    for s in &slices {
        println!(
            "  {} — error {:.1}% vs {:.1}% elsewhere",
            s.pattern,
            s.slice_error * 100.0,
            s.rest_error * 100.0
        );
    }
    println!(
        "slices show where the model errs; FUME shows which training data *causes unfairness* — \
         different questions, same lattice."
    );

    let _ = std::fs::remove_file(&path);
}
