//! Policing audit — the paper's Stop-Question-Frisk analysis (§6.3).
//!
//! A frisk-prediction model shows racial disparity. FUME surfaces the
//! attributable subsets, and permutation feature importance explains *why*
//! each subset matters: deleting `Sex = Female` rows breaks the model's
//! sex↔race dependence, shifting importance onto legitimate stop reasons.
//!
//! ```text
//! cargo run --release --example policing_audit
//! ```

use fume::core::{ExplainRequest, Fume, RetrainRemoval, RemovalMethod};
use fume::fairness::{permutation_importance, FairnessMetric};
use fume::forest::{DareConfig, DareForest};
use fume::tabular::datasets::sqf;
use fume::tabular::split::train_test_split;
use fume::tabular::Classifier;

fn main() {
    // 10% sample of SQF keeps the example snappy; pass 1.0 for full scale.
    let (data, group) = sqf().generate_scaled(0.10, 11).expect("generate");
    let (train, test) = train_test_split(&data, 0.3, 11).expect("split");
    let forest_cfg = DareConfig::default().with_trees(40).with_seed(11);
    let forest = DareForest::fit(&train, forest_cfg.clone());

    let metric = FairnessMetric::StatisticalParity;
    println!(
        "frisk model: accuracy {:.1}%, racial disparity {:.4}",
        forest.accuracy(&test) * 100.0,
        metric.bias(&forest, &test, group)
    );

    let fume = Fume::builder().forest(forest_cfg.clone()).build();
    let report = fume
        .run(&ExplainRequest::new(&train, &test, group).with_model(&forest))
        .expect("the model is biased");
    print!("\n{}", report.to_markdown());

    // Why is the top subset attributable? Compare feature importance of a
    // model trained with vs without it (the paper's §6.3 analysis).
    let Some(top) = report.top_k.first() else {
        println!("no attributable subsets in this support range");
        return;
    };
    println!("\n== feature importance shift when `{}` is removed ==", top.pattern);
    let before = permutation_importance(&forest, &test, 5, 11);
    let removal = RetrainRemoval::new(&train, forest_cfg);
    let after = removal
        .with_removed(&top.rows, |without| permutation_importance(without, &test, 5, 11));
    let change = after.relative_change_from(&before);

    let schema = train.schema();
    let mut ranked: Vec<usize> = (0..schema.num_attributes()).collect();
    ranked.sort_by(|&a, &b| {
        change[b]
            .partial_cmp(&change[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("  biggest importance gains:");
    for &a in ranked.iter().take(3) {
        println!(
            "    {:<45} {:+.1}%",
            schema.attribute(a).unwrap().name(),
            100.0 * change[a].clamp(-10.0, 10.0)
        );
    }
    println!("  biggest importance losses:");
    for &a in ranked.iter().rev().take(3) {
        println!(
            "    {:<45} {:+.1}%",
            schema.attribute(a).unwrap().name(),
            100.0 * change[a].clamp(-10.0, 10.0)
        );
    }
    println!(
        "\nExpected shape (paper Table 5 discussion): sex/race lose importance, \
         legitimate stop reasons (drug transaction, casing, lookout) gain."
    );
}
