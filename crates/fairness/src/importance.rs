//! Permutation feature importance (scikit-learn-style), used by the
//! paper's §6.3 analysis to explain *why* a subset is attributable: after
//! deleting an attributable subset and retraining, the sensitive
//! attribute's importance should drop.

use fume_tabular::{Classifier, Dataset};
use fume_tabular::rng::{SeedableRng, SliceRandom, StdRng};

/// Importance scores per attribute: mean accuracy drop over `repeats`
/// random permutations of that attribute's column.
#[derive(Debug, Clone, PartialEq)]
pub struct Importances {
    /// `scores[attr]` = mean accuracy drop when `attr` is permuted.
    pub scores: Vec<f64>,
    /// The model's unpermuted baseline accuracy.
    pub baseline_accuracy: f64,
}

impl Importances {
    /// Attribute indices ranked by decreasing importance.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.scores.len()).collect();
        idx.sort_by(|&a, &b| self.scores[b].total_cmp(&self.scores[a]));
        idx
    }

    /// Relative change of each attribute's importance from `before` to
    /// `self`, as a signed fraction (+0.5 = importance grew 50 %).
    /// Attributes with (near-)zero importance before are reported as
    /// `f64::INFINITY` growth when they gained importance, 0 otherwise.
    pub fn relative_change_from(&self, before: &Importances) -> Vec<f64> {
        self.scores
            .iter()
            .zip(&before.scores)
            .map(|(&after, &b)| {
                if b.abs() < 1e-12 {
                    if after.abs() < 1e-12 {
                        0.0
                    } else if after > 0.0 {
                        f64::INFINITY
                    } else {
                        f64::NEG_INFINITY
                    }
                } else {
                    (after - b) / b.abs()
                }
            })
            .collect()
    }
}

/// Computes permutation importance of every attribute of `data` for
/// classifier `h`, averaging over `repeats` seeded shuffles.
pub fn permutation_importance<C: Classifier + ?Sized>(
    h: &C,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Importances {
    let baseline_accuracy = h.accuracy(data);
    // fume-lint: allow(F003) -- seed provenance: the caller passes an explicit seed, so permutation order is reproducible per invocation
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = Vec::with_capacity(data.num_attributes());
    for attr in 0..data.num_attributes() {
        let mut drop_sum = 0.0;
        for _ in 0..repeats.max(1) {
            let mut column = data.column(attr).to_vec();
            column.shuffle(&mut rng);
            let permuted = data
                .with_column(attr, column)
                // fume-lint: allow(F001) -- shuffle permutes existing codes of the same column, so the domain and length are unchanged by construction
                .expect("permuted column stays in domain");
            drop_sum += baseline_accuracy - h.accuracy(&permuted);
        }
        scores.push(drop_sum / repeats.max(1) as f64);
    }
    Importances { scores, baseline_accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::{Attribute, Schema};
    use std::sync::Arc;

    /// Predicts positive iff attribute 0 has code 1 (ignores attribute 1).
    struct Attr0Model;
    impl Classifier for Attr0Model {
        fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
            data.column(0).iter().map(|&c| f64::from(c)).collect()
        }
    }

    fn data() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("signal", vec!["0".into(), "1".into()]),
                Attribute::categorical("noise", vec!["0".into(), "1".into()]),
            ])
            .unwrap(),
        );
        let n = 200;
        let signal: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        let noise: Vec<u16> = (0..n).map(|i| ((i / 7) % 2) as u16).collect();
        let labels: Vec<bool> = signal.iter().map(|&c| c == 1).collect();
        Dataset::new(schema, vec![signal, noise], labels).unwrap()
    }

    #[test]
    fn signal_attribute_dominates() {
        let d = data();
        let imp = permutation_importance(&Attr0Model, &d, 5, 0);
        assert_eq!(imp.baseline_accuracy, 1.0);
        assert!(imp.scores[0] > 0.3, "signal importance {}", imp.scores[0]);
        assert!(imp.scores[1].abs() < 0.05, "noise importance {}", imp.scores[1]);
        assert_eq!(imp.ranking()[0], 0);
    }

    #[test]
    fn importance_is_deterministic_per_seed() {
        let d = data();
        let a = permutation_importance(&Attr0Model, &d, 3, 9);
        let b = permutation_importance(&Attr0Model, &d, 3, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn relative_change_semantics() {
        let before = Importances { scores: vec![0.4, 0.0, 0.2], baseline_accuracy: 1.0 };
        let after = Importances { scores: vec![0.2, 0.1, 0.3], baseline_accuracy: 1.0 };
        let change = after.relative_change_from(&before);
        assert!((change[0] + 0.5).abs() < 1e-12, "halved = -50%");
        assert_eq!(change[1], f64::INFINITY, "appeared from zero");
        assert!((change[2] - 0.5).abs() < 1e-12, "+50%");
    }
}
