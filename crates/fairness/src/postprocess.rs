//! Post-processing bias mitigation: group-specific decision thresholds
//! (Hardt, Price & Srebro, NeurIPS 2016 — the paper's related-work
//! category "post-processing", §7).
//!
//! Post-processing assumes access only to model *scores*: it picks a
//! separate cut-off per sensitive group so that a chosen fairness
//! criterion holds on held-out data. It patches the symptom without
//! touching data or model — the natural counterpoint to FUME, which
//! diagnoses the cause. The mitigation-comparison experiment contrasts
//! the two.

use fume_tabular::{Classifier, Dataset, GroupSpec};

use crate::confusion::GroupConfusion;
use crate::metrics::FairnessMetric;

/// A pair of per-group decision thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupThresholds {
    /// Cut-off for privileged rows.
    pub privileged: f64,
    /// Cut-off for protected rows.
    pub protected: f64,
}

impl Default for GroupThresholds {
    fn default() -> Self {
        Self { privileged: 0.5, protected: 0.5 }
    }
}

/// Applies per-group thresholds to a classifier's scores.
pub fn predict_with_thresholds<C: Classifier + ?Sized>(
    h: &C,
    data: &Dataset,
    group: GroupSpec,
    thresholds: GroupThresholds,
) -> Vec<bool> {
    let scores = h.predict_proba(data);
    scores
        .into_iter()
        .enumerate()
        .map(|(row, s)| {
            let t = if data.is_privileged(row, group) {
                thresholds.privileged
            } else {
                thresholds.protected
            };
            s > t
        })
        .collect()
}

/// Result of a threshold search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdFit {
    /// The chosen thresholds.
    pub thresholds: GroupThresholds,
    /// |metric| achieved on the tuning data.
    pub residual_bias: f64,
    /// Accuracy achieved on the tuning data.
    pub accuracy: f64,
}

/// Grid-searches per-group thresholds on `tune` data, minimizing the
/// absolute value of `metric`; ties broken toward higher accuracy. The
/// grid has `steps` cut-offs per group (steps² candidate pairs), so keep
/// it modest (the default examples use 19 → 361 pairs, one score pass).
pub fn fit_group_thresholds<C: Classifier + ?Sized>(
    h: &C,
    tune: &Dataset,
    group: GroupSpec,
    metric: FairnessMetric,
    steps: usize,
) -> ThresholdFit {
    let steps = steps.max(2);
    let scores = h.predict_proba(tune);
    let mask = tune.privileged_mask(group);
    let labels = tune.labels();
    let grid: Vec<f64> = (1..=steps)
        .map(|i| i as f64 / (steps as f64 + 1.0))
        .collect();

    let mut best = ThresholdFit {
        thresholds: GroupThresholds::default(),
        residual_bias: f64::INFINITY,
        accuracy: 0.0,
    };
    for &tp in &grid {
        for &tq in &grid {
            let preds: Vec<bool> = scores
                .iter()
                .zip(&mask)
                .map(|(&s, &m)| if m { s > tp } else { s > tq })
                .collect();
            let confusion = GroupConfusion::tally(&preds, labels, &mask);
            let bias = metric.from_confusion(&confusion).abs();
            let correct =
                preds.iter().zip(labels).filter(|(p, y)| p == y).count();
            let accuracy = correct as f64 / labels.len().max(1) as f64;
            if bias + 1e-12 < best.residual_bias
                || (bias <= best.residual_bias + 1e-12 && accuracy > best.accuracy)
            {
                best = ThresholdFit {
                    thresholds: GroupThresholds { privileged: tp, protected: tq },
                    residual_bias: bias,
                    accuracy,
                };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::{Attribute, Schema};
    use std::sync::Arc;

    /// Scores protected rows systematically lower (a biased scorer).
    struct BiasedScorer;
    impl Classifier for BiasedScorer {
        fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
            (0..data.num_rows())
                .map(|r| {
                    let base = if data.label(r) { 0.7 } else { 0.3 };
                    // A ±0.25 group shift pushes protected positives below
                    // (and privileged negatives above) the default 0.5
                    // cut-off, so one shared threshold cannot be fair.
                    if data.code(r, 0) == 1 {
                        base + 0.25
                    } else {
                        base - 0.25
                    }
                })
                .collect()
        }
    }

    fn data() -> (Dataset, GroupSpec) {
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "sex",
                vec!["f".into(), "m".into()],
            )])
            .unwrap(),
        );
        let n = 400;
        let sex: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        let labels: Vec<bool> = (0..n).map(|i| (i / 2) % 2 == 0).collect();
        (
            Dataset::new(schema, vec![sex], labels).unwrap(),
            GroupSpec::new(0, 1),
        )
    }

    #[test]
    fn default_threshold_is_biased_fitted_is_not() {
        let (d, g) = data();
        let h = BiasedScorer;
        let default_preds =
            predict_with_thresholds(&h, &d, g, GroupThresholds::default());
        let default_bias = FairnessMetric::StatisticalParity.compute(
            &default_preds,
            d.labels(),
            &d.privileged_mask(g),
        );
        assert!(default_bias.abs() > 0.2, "scorer is biased: {default_bias}");

        let fit = fit_group_thresholds(&h, &d, g, FairnessMetric::StatisticalParity, 19);
        assert!(fit.residual_bias < 0.05, "residual {}", fit.residual_bias);
        // The protected group needs the lower cut-off.
        assert!(fit.thresholds.protected < fit.thresholds.privileged);
        // And the fix should not destroy accuracy on this separable toy.
        assert!(fit.accuracy > 0.9, "accuracy {}", fit.accuracy);
    }

    #[test]
    fn fitted_thresholds_apply_consistently() {
        let (d, g) = data();
        let h = BiasedScorer;
        let fit = fit_group_thresholds(&h, &d, g, FairnessMetric::EqualizedOdds, 9);
        let preds = predict_with_thresholds(&h, &d, g, fit.thresholds);
        let confusion =
            GroupConfusion::tally(&preds, d.labels(), &d.privileged_mask(g));
        let bias = FairnessMetric::EqualizedOdds.from_confusion(&confusion).abs();
        assert!((bias - fit.residual_bias).abs() < 1e-12);
    }

    #[test]
    fn tiny_grids_still_return_something() {
        let (d, g) = data();
        let fit =
            fit_group_thresholds(&BiasedScorer, &d, g, FairnessMetric::StatisticalParity, 0);
        assert!(fit.residual_bias.is_finite());
    }
}
