//! Decision-threshold sweeps: how bias and accuracy trade off as the
//! (shared) decision cut-off moves — the diagnostic view behind
//! post-processing mitigation, and a quick check of whether a violation
//! is threshold-artifact or structural.

use fume_tabular::{Classifier, Dataset, GroupSpec};

use crate::confusion::GroupConfusion;
use crate::metrics::FairnessMetric;

/// One point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The shared decision threshold.
    pub threshold: f64,
    /// Signed fairness metric at this threshold.
    pub fairness: f64,
    /// Accuracy at this threshold.
    pub accuracy: f64,
    /// Fraction predicted positive overall.
    pub selection_rate: f64,
}

/// Sweeps a shared decision threshold over `steps` equally spaced
/// cut-offs in `(0, 1)`, evaluating `metric` and accuracy at each. One
/// scoring pass; `O(steps × n)` thresholding.
pub fn threshold_sweep<C: Classifier + ?Sized>(
    h: &C,
    data: &Dataset,
    group: GroupSpec,
    metric: FairnessMetric,
    steps: usize,
) -> Vec<SweepPoint> {
    let steps = steps.max(1);
    let scores = h.predict_proba(data);
    let mask = data.privileged_mask(group);
    let labels = data.labels();
    let n = data.num_rows().max(1) as f64;

    (1..=steps)
        .map(|i| {
            let threshold = i as f64 / (steps as f64 + 1.0);
            let preds: Vec<bool> = scores.iter().map(|&s| s > threshold).collect();
            let confusion = GroupConfusion::tally(&preds, labels, &mask);
            let correct =
                preds.iter().zip(labels).filter(|(p, y)| p == y).count() as f64;
            let selected = preds.iter().filter(|&&p| p).count() as f64;
            SweepPoint {
                threshold,
                fairness: metric.from_confusion(&confusion),
                accuracy: correct / n,
                selection_rate: selected / n,
            }
        })
        .collect()
}

/// The sweep point with the smallest |fairness|, ties broken toward
/// higher accuracy — "could a single shared threshold fix this?".
pub fn fairest_threshold(sweep: &[SweepPoint]) -> Option<SweepPoint> {
    sweep.iter().copied().min_by(|a, b| {
        a.fairness
            .abs()
            .total_cmp(&b.fairness.abs())
            .then(b.accuracy.total_cmp(&a.accuracy))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::{Attribute, Schema};
    use std::sync::Arc;

    /// Scores equal the row's "merit" with a constant group handicap for
    /// protected rows — no shared threshold can be fair.
    struct HandicapScorer;
    impl Classifier for HandicapScorer {
        fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
            (0..data.num_rows())
                .map(|r| {
                    let merit = if data.label(r) { 0.7 } else { 0.3 };
                    if data.code(r, 0) == 1 {
                        merit + 0.2
                    } else {
                        merit - 0.2
                    }
                })
                .collect()
        }
    }

    fn data() -> (Dataset, GroupSpec) {
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "g",
                vec!["prot".into(), "priv".into()],
            )])
            .unwrap(),
        );
        let n = 200;
        let g: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        let labels: Vec<bool> = (0..n).map(|i| (i / 2) % 2 == 0).collect();
        (Dataset::new(schema, vec![g], labels).unwrap(), GroupSpec::new(0, 1))
    }

    #[test]
    fn sweep_shape_and_monotone_selection() {
        let (d, g) = data();
        let sweep =
            threshold_sweep(&HandicapScorer, &d, g, FairnessMetric::StatisticalParity, 20);
        assert_eq!(sweep.len(), 20);
        // Selection rate is non-increasing in the threshold.
        assert!(sweep.windows(2).all(|w| w[0].selection_rate >= w[1].selection_rate));
        // Thresholds are strictly increasing in (0, 1).
        assert!(sweep.windows(2).all(|w| w[0].threshold < w[1].threshold));
        assert!(sweep.iter().all(|p| p.threshold > 0.0 && p.threshold < 1.0));
    }

    #[test]
    fn structural_bias_survives_every_shared_threshold() {
        let (d, g) = data();
        let sweep =
            threshold_sweep(&HandicapScorer, &d, g, FairnessMetric::StatisticalParity, 30);
        // In the informative threshold band (where the model actually
        // separates), the group handicap shows up at every cut-off.
        let informative: Vec<_> = sweep
            .iter()
            .filter(|p| p.selection_rate > 0.05 && p.selection_rate < 0.95)
            .collect();
        assert!(!informative.is_empty());
        assert!(
            informative.iter().all(|p| p.fairness < -0.05),
            "a shared threshold cannot equalize a constant group handicap"
        );
        let best = fairest_threshold(&sweep).unwrap();
        assert!(best.fairness.abs() <= sweep[10].fairness.abs());
    }

    #[test]
    fn empty_sweep_handled() {
        assert_eq!(fairest_threshold(&[]), None);
    }
}
