//! The paper's three group-fairness metrics (§2.1).
//!
//! Every metric is a signed difference *protected − privileged* (the
//! paper's `F(h, D) = P(Ŷ=1|S=0) − P(Ŷ=1|S=1)` convention for statistical
//! parity): a negative value means the classifier is biased **against**
//! the protected group, and `|F|` is the magnitude of the bias.
//!
//! Degenerate inputs follow the empty-denominator contract documented in
//! [`crate::confusion`]: an empty group, an all-one-label group, or an
//! empty `Ŷ=1` set (predictive parity) contributes a rate of 0.0, so
//! every metric is finite and in `[-1, 1]` on *any* dataset — the
//! evaluator boundary never has to launder a NaN minted here.

use fume_tabular::{Classifier, Dataset, GroupSpec};

use crate::confusion::GroupConfusion;

/// Which notion of group fairness to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairnessMetric {
    /// Difference in positive-prediction rates:
    /// `P(Ŷ=1 | S=0) − P(Ŷ=1 | S=1)`.
    StatisticalParity,
    /// Average of the TPR and FPR differences between groups (the
    /// "average odds difference"); zero iff both rates match, i.e.
    /// equalized odds holds.
    EqualizedOdds,
    /// Difference in positive predictive value:
    /// `P(Y=1 | Ŷ=1, S=0) − P(Y=1 | Ŷ=1, S=1)`.
    PredictiveParity,
    /// Difference in true-positive rates only:
    /// `P(Ŷ=1 | Y=1, S=0) − P(Ŷ=1 | Y=1, S=1)` — the common relaxation of
    /// equalized odds (Hardt et al.'s *equality of opportunity*). Not one
    /// of the paper's three metrics, provided as an extension.
    EqualOpportunity,
}

impl FairnessMetric {
    /// The paper's three metrics (§2.1).
    pub const ALL: [FairnessMetric; 3] = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualizedOdds,
        FairnessMetric::PredictiveParity,
    ];

    /// Every supported metric, including extensions.
    pub const EXTENDED: [FairnessMetric; 4] = [
        FairnessMetric::StatisticalParity,
        FairnessMetric::EqualizedOdds,
        FairnessMetric::PredictiveParity,
        FairnessMetric::EqualOpportunity,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Self::StatisticalParity => "statistical parity",
            Self::EqualizedOdds => "equalized odds",
            Self::PredictiveParity => "predictive parity",
            Self::EqualOpportunity => "equal opportunity",
        }
    }

    /// Computes the signed metric from tallied confusion counts.
    pub fn from_confusion(self, g: &GroupConfusion) -> f64 {
        match self {
            Self::StatisticalParity => {
                g.protected.selection_rate() - g.privileged.selection_rate()
            }
            Self::EqualizedOdds => {
                let d_tpr = g.protected.tpr() - g.privileged.tpr();
                let d_fpr = g.protected.fpr() - g.privileged.fpr();
                0.5 * (d_tpr + d_fpr)
            }
            Self::PredictiveParity => g.protected.ppv() - g.privileged.ppv(),
            Self::EqualOpportunity => g.protected.tpr() - g.privileged.tpr(),
        }
    }

    /// Computes the signed metric of predictions against labels/groups.
    pub fn compute(
        self,
        preds: &[bool],
        labels: &[bool],
        privileged_mask: &[bool],
    ) -> f64 {
        self.from_confusion(&GroupConfusion::tally(preds, labels, privileged_mask))
    }

    /// Evaluates classifier `h` on `data`: the paper's `F(h, D)`.
    pub fn evaluate<C: Classifier + ?Sized>(
        self,
        h: &C,
        data: &Dataset,
        group: GroupSpec,
    ) -> f64 {
        fume_obs::counter!("fairness.metric_evals", 1);
        let preds = h.predict(data);
        self.compute(&preds, data.labels(), &data.privileged_mask(group))
    }

    /// `|F(h, D)|` — the magnitude of the violation.
    pub fn bias<C: Classifier + ?Sized>(self, h: &C, data: &Dataset, group: GroupSpec) -> f64 {
        self.evaluate(h, data, group).abs()
    }
}

/// Full fairness snapshot of a model on a dataset, used in reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Signed statistical parity difference.
    pub statistical_parity: f64,
    /// Signed average odds difference.
    pub equalized_odds: f64,
    /// Signed predictive parity difference.
    pub predictive_parity: f64,
    /// Overall accuracy.
    pub accuracy: f64,
    /// The tallied confusion counts behind the metrics.
    pub confusion: GroupConfusion,
}

/// Evaluates all three metrics plus accuracy in one prediction pass.
pub fn fairness_report<C: Classifier + ?Sized>(
    h: &C,
    data: &Dataset,
    group: GroupSpec,
) -> FairnessReport {
    fume_obs::counter!("fairness.metric_evals", FairnessMetric::ALL.len());
    let preds = h.predict(data);
    let mask = data.privileged_mask(group);
    let confusion = GroupConfusion::tally(&preds, data.labels(), &mask);
    let correct = preds.iter().zip(data.labels()).filter(|(p, y)| p == y).count();
    FairnessReport {
        statistical_parity: FairnessMetric::StatisticalParity.from_confusion(&confusion),
        equalized_odds: FairnessMetric::EqualizedOdds.from_confusion(&confusion),
        predictive_parity: FairnessMetric::PredictiveParity.from_confusion(&confusion),
        accuracy: if data.is_empty() { 0.0 } else { correct as f64 / data.num_rows() as f64 },
        confusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::classifier::ConstantClassifier;
    use fume_tabular::{Attribute, Schema};
    use std::sync::Arc;

    fn toy() -> (Dataset, GroupSpec) {
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "sex",
                vec!["f".into(), "m".into()],
            )])
            .unwrap(),
        );
        // rows: 4 privileged (m), 4 protected (f)
        let data = Dataset::new(
            schema,
            vec![vec![1, 1, 1, 1, 0, 0, 0, 0]],
            vec![true, true, false, false, true, true, false, false],
        )
        .unwrap();
        (data, GroupSpec::new(0, 1))
    }

    /// A classifier that predicts positive for a fixed row set.
    struct FixedPreds(Vec<bool>);
    impl Classifier for FixedPreds {
        fn predict_proba(&self, _data: &Dataset) -> Vec<f64> {
            self.0.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect()
        }
    }

    #[test]
    fn statistical_parity_signed_difference() {
        let (data, group) = toy();
        // privileged: 3/4 predicted positive; protected: 1/4.
        let h = FixedPreds(vec![true, true, true, false, true, false, false, false]);
        let f = FairnessMetric::StatisticalParity.evaluate(&h, &data, group);
        assert!((f - (0.25 - 0.75)).abs() < 1e-12);
        assert!(f < 0.0, "bias against protected is negative");
        assert!((FairnessMetric::StatisticalParity.bias(&h, &data, group) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfectly_fair_classifier_scores_zero_on_all_metrics() {
        let (data, group) = toy();
        // Predict exactly the labels: TPR=1, FPR=0, PPV=1 in both groups.
        let h = FixedPreds(data.labels().to_vec());
        for m in FairnessMetric::ALL {
            assert_eq!(m.evaluate(&h, &data, group), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn equalized_odds_averages_tpr_and_fpr_gaps() {
        let (data, group) = toy();
        // privileged: TPR 1/2 (pred pos row0 only of rows0,1), FPR 1/2 (row2).
        // protected: TPR 1 (rows 4,5), FPR 0.
        let h = FixedPreds(vec![true, false, true, false, true, true, false, false]);
        let f = FairnessMetric::EqualizedOdds.evaluate(&h, &data, group);
        let expect = 0.5 * ((1.0 - 0.5) + (0.0 - 0.5));
        assert!((f - expect).abs() < 1e-12);
    }

    #[test]
    fn predictive_parity_uses_ppv() {
        let (data, group) = toy();
        // privileged predicted positive: rows 0 (y=1), 2 (y=0) → PPV 1/2.
        // protected predicted positive: row 4 (y=1) → PPV 1.
        let h = FixedPreds(vec![true, false, true, false, true, false, false, false]);
        let f = FairnessMetric::PredictiveParity.evaluate(&h, &data, group);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_classifier_satisfies_statistical_parity() {
        let (data, group) = toy();
        let h = ConstantClassifier { proba: 0.9 };
        assert_eq!(FairnessMetric::StatisticalParity.evaluate(&h, &data, group), 0.0);
    }

    #[test]
    fn report_is_consistent_with_individual_metrics() {
        let (data, group) = toy();
        let h = FixedPreds(vec![true, true, true, false, true, false, false, false]);
        let r = fairness_report(&h, &data, group);
        assert_eq!(
            r.statistical_parity,
            FairnessMetric::StatisticalParity.evaluate(&h, &data, group)
        );
        assert_eq!(
            r.equalized_odds,
            FairnessMetric::EqualizedOdds.evaluate(&h, &data, group)
        );
        assert_eq!(
            r.predictive_parity,
            FairnessMetric::PredictiveParity.evaluate(&h, &data, group)
        );
        // 6 of 8 predictions match the labels.
        assert!((r.accuracy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_metrics_are_finite_on_degenerate_groups() {
        let (data, group) = toy();
        // Predict nothing positive (PPV denominators empty in both
        // groups), everything positive (FPR/TNR side degenerate), and a
        // one-sided split (privileged Ŷ=1 set empty, protected not).
        for preds in [
            vec![false; 8],
            vec![true; 8],
            vec![false, false, false, false, true, true, true, true],
        ] {
            let h = FixedPreds(preds.clone());
            for m in FairnessMetric::EXTENDED {
                let f = m.evaluate(&h, &data, group);
                assert!(
                    f.is_finite() && (-1.0..=1.0).contains(&f),
                    "{} on {preds:?}: {f}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn empty_prediction_set_pins_ppv_difference_to_protected_rate() {
        let (data, group) = toy();
        // Privileged Ŷ=1 empty → its PPV is 0 by contract; protected
        // predicts row 4 (y=1) → PPV 1. The difference is exactly +1.
        let h = FixedPreds(vec![false, false, false, false, true, false, false, false]);
        assert_eq!(FairnessMetric::PredictiveParity.evaluate(&h, &data, group), 1.0);
        // Both sides empty → both PPVs 0 → difference exactly 0.
        let h = FixedPreds(vec![false; 8]);
        assert_eq!(FairnessMetric::PredictiveParity.evaluate(&h, &data, group), 0.0);
    }

    #[test]
    fn metrics_on_an_entirely_empty_dataset_are_zero() {
        let (data, group) = toy();
        let empty = data.select_rows(&[]).unwrap();
        let h = ConstantClassifier { proba: 0.9 };
        for m in FairnessMetric::EXTENDED {
            assert_eq!(m.evaluate(&h, &empty, group), 0.0, "{}", m.name());
            assert_eq!(m.bias(&h, &empty, group), 0.0, "{}", m.name());
        }
        let r = fairness_report(&h, &empty, group);
        assert_eq!(r.accuracy, 0.0);
        assert_eq!(r.confusion, GroupConfusion::default());
    }

    #[test]
    fn metric_names() {
        assert_eq!(FairnessMetric::StatisticalParity.name(), "statistical parity");
        assert_eq!(FairnessMetric::ALL.len(), 3);
        assert_eq!(FairnessMetric::EXTENDED.len(), 4);
        assert!(FairnessMetric::EXTENDED.contains(&FairnessMetric::EqualOpportunity));
    }

    #[test]
    fn equal_opportunity_ignores_false_positive_rates() {
        let (data, group) = toy();
        // Equal TPRs (both 1/2), very different FPRs (1 vs 0):
        // privileged: rows 0,1 positive → predict row 0 only; rows 2,3
        // negative → predict both (FPR 1).
        // protected: rows 4,5 positive → predict row 4 only; rows 6,7
        // negative → predict none (FPR 0).
        let h = FixedPreds(vec![true, false, true, true, true, false, false, false]);
        let eo = FairnessMetric::EqualOpportunity.evaluate(&h, &data, group);
        assert_eq!(eo, 0.0, "TPRs match");
        let eodds = FairnessMetric::EqualizedOdds.evaluate(&h, &data, group);
        assert!((eodds - (-0.5)).abs() < 1e-12, "FPR gap shows in equalized odds: {eodds}");
    }
}
