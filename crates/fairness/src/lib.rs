//! # fume-fairness
//!
//! Group-fairness metrics for the FUME workspace (EDBT 2025): the paper's
//! three parity notions ([`FairnessMetric`]), the per-group
//! [confusion statistics](confusion) behind them, and
//! [permutation feature importance](importance) used to analyze *why*
//! identified subsets are attributable to bias.
//!
//! ```
//! use fume_fairness::FairnessMetric;
//! use fume_tabular::classifier::ConstantClassifier;
//! use fume_tabular::datasets::german_credit;
//!
//! let (data, group) = german_credit().generate_full(1).unwrap();
//! // A constant classifier treats the groups identically.
//! let h = ConstantClassifier { proba: 0.8 };
//! assert_eq!(FairnessMetric::StatisticalParity.evaluate(&h, &data, group), 0.0);
//! ```

#![warn(missing_docs)]

pub mod confusion;
pub mod importance;
pub mod metrics;
pub mod postprocess;
pub mod preprocess;
pub mod threshold_sweep;

pub use confusion::{Confusion, GroupConfusion};
pub use importance::{permutation_importance, Importances};
pub use metrics::{fairness_report, FairnessMetric, FairnessReport};
pub use postprocess::{
    fit_group_thresholds, predict_with_thresholds, GroupThresholds, ThresholdFit,
};
pub use preprocess::{massage, Massaged};
pub use threshold_sweep::{fairest_threshold, threshold_sweep, SweepPoint};
