//! Per-group confusion statistics underlying every fairness metric.
//!
//! # The empty-denominator contract
//!
//! Every rate on [`Confusion`] is a ratio of counts, and each
//! denominator can legitimately be zero: an empty group
//! (`selection_rate`, `base_rate`, `accuracy`), a group with no
//! positive labels (`tpr`), none negative (`fpr`), or — predictive
//! parity's everyday case — no positive *predictions* (`ppv`). The
//! contract, pinned by tests here and at the metric layer, is that an
//! empty denominator rates **0.0**, never NaN or ±∞. Metrics built as
//! rate differences therefore stay finite and inside `[-1, 1]` on any
//! input, degenerate or not; downstream evaluators (the core
//! `NonFiniteAttribution` boundary) never see a NaN born here, and the
//! incremental delta path ([`Confusion::reclassify`]) cannot disagree
//! with a fresh tally about degenerate groups.

/// Confusion counts of one sensitive group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: u32,
    /// False positives.
    pub fp: u32,
    /// True negatives.
    pub tn: u32,
    /// False negatives.
    pub fn_: u32,
}

impl Confusion {
    /// Group size.
    pub fn total(&self) -> u32 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction predicted positive: `P(Ŷ=1)` within the group. Empty
    /// groups rate 0.
    pub fn selection_rate(&self) -> f64 {
        ratio(self.tp + self.fp, self.total())
    }

    /// True-positive rate `P(Ŷ=1 | Y=1)`.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False-positive rate `P(Ŷ=1 | Y=0)`.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Positive predictive value `P(Y=1 | Ŷ=1)`.
    pub fn ppv(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Base rate `P(Y=1)` within the group.
    pub fn base_rate(&self) -> f64 {
        ratio(self.tp + self.fn_, self.total())
    }

    /// Accuracy within the group.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Moves one row with label `y` from prediction `old_pred` to
    /// `new_pred`: decrements the confusion cell the row used to occupy
    /// and increments the one it occupies now. This is the delta an
    /// incremental evaluator applies per re-predicted row instead of
    /// re-tallying the whole dataset — counts are integers, so a tally
    /// patched by `reclassify` is *identical* (not merely close) to a
    /// fresh [`GroupConfusion::tally`] over the updated predictions.
    ///
    /// A no-op delta (`old_pred == new_pred`) is permitted and does
    /// nothing. The row must actually be counted in this confusion
    /// (debug builds panic on cell underflow).
    pub fn reclassify(&mut self, y: bool, old_pred: bool, new_pred: bool) {
        if old_pred == new_pred {
            return;
        }
        fn cell(c: &mut Confusion, pred: bool, y: bool) -> &mut u32 {
            match (pred, y) {
                (true, true) => &mut c.tp,
                (true, false) => &mut c.fp,
                (false, false) => &mut c.tn,
                (false, true) => &mut c.fn_,
            }
        }
        let old_cell = cell(self, old_pred, y);
        debug_assert!(*old_cell > 0, "reclassify underflow: row was never tallied here");
        *old_cell -= 1;
        *cell(self, new_pred, y) += 1;
    }
}

#[inline]
fn ratio(num: u32, den: u32) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Confusion counts split by group membership:
/// `privileged` (the paper's `S = 1`) vs `protected` (`S = 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupConfusion {
    /// Counts over privileged rows.
    pub privileged: Confusion,
    /// Counts over protected rows.
    pub protected: Confusion,
}

impl GroupConfusion {
    /// Tallies predictions against labels, split by `privileged_mask`.
    /// All three slices must have equal length.
    pub fn tally(preds: &[bool], labels: &[bool], privileged_mask: &[bool]) -> Self {
        assert_eq!(preds.len(), labels.len());
        assert_eq!(preds.len(), privileged_mask.len());
        let mut out = Self::default();
        for ((&p, &y), &is_priv) in preds.iter().zip(labels).zip(privileged_mask) {
            let c = if is_priv { &mut out.privileged } else { &mut out.protected };
            match (p, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        out
    }

    /// [`Confusion::reclassify`] routed to the right group: applies the
    /// `(row, old_pred, new_pred)` delta of a row with label `y` in the
    /// privileged (`is_priv`) or protected group.
    pub fn reclassify(&mut self, is_priv: bool, y: bool, old_pred: bool, new_pred: bool) {
        let c = if is_priv { &mut self.privileged } else { &mut self.protected };
        c.reclassify(y, old_pred, new_pred);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_splits_by_group() {
        let preds = [true, true, false, false, true, false];
        let labels = [true, false, false, true, true, false];
        let mask = [true, true, true, false, false, false];
        let g = GroupConfusion::tally(&preds, &labels, &mask);
        assert_eq!(g.privileged, Confusion { tp: 1, fp: 1, tn: 1, fn_: 0 });
        assert_eq!(g.protected, Confusion { tp: 1, fp: 0, tn: 1, fn_: 1 });
    }

    #[test]
    fn rates() {
        let c = Confusion { tp: 3, fp: 1, tn: 4, fn_: 2 };
        assert_eq!(c.total(), 10);
        assert!((c.selection_rate() - 0.4).abs() < 1e-12);
        assert!((c.tpr() - 0.6).abs() < 1e-12);
        assert!((c.fpr() - 0.2).abs() < 1e-12);
        assert!((c.ppv() - 0.75).abs() < 1e-12);
        assert!((c.base_rate() - 0.5).abs() < 1e-12);
        assert!((c.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_group_rates_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.selection_rate(), 0.0);
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.ppv(), 0.0);
        assert_eq!(c.base_rate(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn partial_empty_denominators_rate_zero_not_nan() {
        // Non-empty group, but every per-rate denominator empty in turn.
        // No positive predictions: PPV's denominator `tp + fp` is 0.
        let no_pos_pred = Confusion { tp: 0, fp: 0, tn: 3, fn_: 2 };
        assert_eq!(no_pos_pred.ppv(), 0.0, "empty Ŷ=1 set must not NaN");
        // No positive labels: TPR's denominator `tp + fn_` is 0.
        let no_pos_label = Confusion { tp: 0, fp: 2, tn: 3, fn_: 0 };
        assert_eq!(no_pos_label.tpr(), 0.0);
        // No negative labels: FPR's denominator `fp + tn` is 0.
        let no_neg_label = Confusion { tp: 2, fp: 0, tn: 0, fn_: 3 };
        assert_eq!(no_neg_label.fpr(), 0.0);
        for c in [no_pos_pred, no_pos_label, no_neg_label] {
            for rate in
                [c.selection_rate(), c.tpr(), c.fpr(), c.ppv(), c.base_rate(), c.accuracy()]
            {
                assert!(rate.is_finite() && (0.0..=1.0).contains(&rate), "{c:?}: {rate}");
            }
        }
    }

    #[test]
    fn reclassify_matches_a_fresh_tally() {
        let mut preds = vec![true, true, false, false, true, false];
        let labels = [true, false, false, true, true, false];
        let mask = [true, true, true, false, false, false];
        let mut g = GroupConfusion::tally(&preds, &labels, &mask);
        // Flip a few predictions one row at a time, patching the tally.
        for row in [0usize, 3, 5, 0] {
            let new_pred = !preds[row];
            g.reclassify(mask[row], labels[row], preds[row], new_pred);
            preds[row] = new_pred;
            assert_eq!(g, GroupConfusion::tally(&preds, &labels, &mask), "after row {row}");
        }
        // A no-op delta changes nothing.
        let before = g;
        g.reclassify(mask[1], labels[1], preds[1], preds[1]);
        assert_eq!(g, before);
    }

    #[test]
    fn reclassify_can_empty_and_refill_a_denominator() {
        // One privileged row predicted positive; reclassifying it away
        // empties the Ŷ=1 set (PPV denominator) and back.
        let mut c = Confusion { tp: 1, fp: 0, tn: 1, fn_: 0 };
        c.reclassify(true, true, false);
        assert_eq!(c, Confusion { tp: 0, fp: 0, tn: 1, fn_: 1 });
        assert_eq!(c.ppv(), 0.0, "emptied denominator rates zero");
        c.reclassify(true, false, true);
        assert_eq!(c, Confusion { tp: 1, fp: 0, tn: 1, fn_: 0 });
        assert_eq!(c.ppv(), 1.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "reclassify underflow")]
    fn reclassify_of_an_untallied_row_panics_in_debug() {
        let mut c = Confusion::default();
        c.reclassify(true, true, false);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        GroupConfusion::tally(&[true], &[true, false], &[true, false]);
    }
}
