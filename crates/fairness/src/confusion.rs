//! Per-group confusion statistics underlying every fairness metric.

/// Confusion counts of one sensitive group.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: u32,
    /// False positives.
    pub fp: u32,
    /// True negatives.
    pub tn: u32,
    /// False negatives.
    pub fn_: u32,
}

impl Confusion {
    /// Group size.
    pub fn total(&self) -> u32 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction predicted positive: `P(Ŷ=1)` within the group. Empty
    /// groups rate 0.
    pub fn selection_rate(&self) -> f64 {
        ratio(self.tp + self.fp, self.total())
    }

    /// True-positive rate `P(Ŷ=1 | Y=1)`.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False-positive rate `P(Ŷ=1 | Y=0)`.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Positive predictive value `P(Y=1 | Ŷ=1)`.
    pub fn ppv(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Base rate `P(Y=1)` within the group.
    pub fn base_rate(&self) -> f64 {
        ratio(self.tp + self.fn_, self.total())
    }

    /// Accuracy within the group.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }
}

#[inline]
fn ratio(num: u32, den: u32) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Confusion counts split by group membership:
/// `privileged` (the paper's `S = 1`) vs `protected` (`S = 0`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupConfusion {
    /// Counts over privileged rows.
    pub privileged: Confusion,
    /// Counts over protected rows.
    pub protected: Confusion,
}

impl GroupConfusion {
    /// Tallies predictions against labels, split by `privileged_mask`.
    /// All three slices must have equal length.
    pub fn tally(preds: &[bool], labels: &[bool], privileged_mask: &[bool]) -> Self {
        assert_eq!(preds.len(), labels.len());
        assert_eq!(preds.len(), privileged_mask.len());
        let mut out = Self::default();
        for ((&p, &y), &is_priv) in preds.iter().zip(labels).zip(privileged_mask) {
            let c = if is_priv { &mut out.privileged } else { &mut out.protected };
            match (p, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_splits_by_group() {
        let preds = [true, true, false, false, true, false];
        let labels = [true, false, false, true, true, false];
        let mask = [true, true, true, false, false, false];
        let g = GroupConfusion::tally(&preds, &labels, &mask);
        assert_eq!(g.privileged, Confusion { tp: 1, fp: 1, tn: 1, fn_: 0 });
        assert_eq!(g.protected, Confusion { tp: 1, fp: 0, tn: 1, fn_: 1 });
    }

    #[test]
    fn rates() {
        let c = Confusion { tp: 3, fp: 1, tn: 4, fn_: 2 };
        assert_eq!(c.total(), 10);
        assert!((c.selection_rate() - 0.4).abs() < 1e-12);
        assert!((c.tpr() - 0.6).abs() < 1e-12);
        assert!((c.fpr() - 0.2).abs() < 1e-12);
        assert!((c.ppv() - 0.75).abs() < 1e-12);
        assert!((c.base_rate() - 0.5).abs() < 1e-12);
        assert!((c.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_group_rates_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.selection_rate(), 0.0);
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.ppv(), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        GroupConfusion::tally(&[true], &[true, false], &[true, false]);
    }
}
