//! Pre-processing bias mitigation: **massaging** (Kamiran & Calders,
//! 2009 — the paper's related-work category "pre-processing", §7).
//!
//! Massaging equalizes the groups' base rates by flipping a minimal
//! number of carefully chosen labels: *promote* the protected-negative
//! instances a ranker scores highest, *demote* the privileged-positive
//! ones it scores lowest. A model retrained on the massaged data exhibits
//! less disparity. Like DropUnprivUnfavor it modifies training data
//! globally; FUME instead points at the specific subsets responsible.

use fume_tabular::{Classifier, Dataset, GroupSpec};

/// The outcome of massaging.
#[derive(Debug, Clone, PartialEq)]
pub struct Massaged {
    /// The training data with flipped labels.
    pub data: Dataset,
    /// Rows promoted (protected, label flipped false → true).
    pub promoted: Vec<u32>,
    /// Rows demoted (privileged, label flipped true → false).
    pub demoted: Vec<u32>,
}

/// Number of promotion/demotion pairs needed so both groups reach the
/// pooled base rate (the classic closed form).
fn flips_needed(data: &Dataset, group: GroupSpec) -> usize {
    let mask = data.privileged_mask(group);
    let (mut n_priv, mut pos_priv, mut n_prot, mut pos_prot) = (0f64, 0f64, 0f64, 0f64);
    for (row, &is_priv) in mask.iter().enumerate() {
        let y = data.label(row);
        if is_priv {
            n_priv += 1.0;
            pos_priv += f64::from(u8::from(y));
        } else {
            n_prot += 1.0;
            pos_prot += f64::from(u8::from(y));
        }
    }
    if fume_tabular::float::is_zero(n_priv) || fume_tabular::float::is_zero(n_prot) {
        return 0;
    }
    let disc = pos_priv / n_priv - pos_prot / n_prot;
    if disc <= 0.0 {
        return 0; // no disparity against the protected group
    }
    ((disc * n_priv * n_prot) / (n_priv + n_prot)).ceil() as usize
}

/// Massages `data`: flips `M` labels each way, where `M` equalizes the
/// base rates, choosing flip victims by the ranker's scores (most
/// positive-looking protected negatives first; least positive-looking
/// privileged positives first).
pub fn massage<C: Classifier + ?Sized>(
    data: &Dataset,
    group: GroupSpec,
    ranker: &C,
) -> Massaged {
    let m = flips_needed(data, group);
    let scores = ranker.predict_proba(data);

    let mut promotion_candidates: Vec<(f64, u32)> = (0..data.num_rows())
        .filter(|&r| !data.is_privileged(r, group) && !data.label(r))
        .map(|r| (scores[r], r as u32))
        .collect();
    promotion_candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut demotion_candidates: Vec<(f64, u32)> = (0..data.num_rows())
        .filter(|&r| data.is_privileged(r, group) && data.label(r))
        .map(|r| (scores[r], r as u32))
        .collect();
    demotion_candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let m = m
        .min(promotion_candidates.len())
        .min(demotion_candidates.len());
    let promoted: Vec<u32> =
        promotion_candidates[..m].iter().map(|&(_, r)| r).collect();
    let demoted: Vec<u32> =
        demotion_candidates[..m].iter().map(|&(_, r)| r).collect();

    let mut labels = data.labels().to_vec();
    for &r in &promoted {
        labels[r as usize] = true;
    }
    for &r in &demoted {
        labels[r as usize] = false;
    }
    let columns: Vec<Vec<u16>> =
        (0..data.num_attributes()).map(|a| data.column(a).to_vec()).collect();
    let massaged = Dataset::new(data.schema_handle(), columns, labels)
        // fume-lint: allow(F001) -- columns and labels are copied from a dataset already validated against this same schema, so construction cannot fail
        .expect("same shape");

    Massaged { data: massaged, promoted, demoted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::classifier::ConstantClassifier;
    use fume_tabular::stats::group_base_rates as group_rates;
    use fume_tabular::{Attribute, Schema};
    use std::sync::Arc;

    fn data() -> (Dataset, GroupSpec) {
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "sex",
                vec!["f".into(), "m".into()],
            )])
            .unwrap(),
        );
        let n = 200;
        let sex: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        // Males positive 70%, females 30% — strong label disparity.
        let labels: Vec<bool> = (0..n)
            .map(|i| if i % 2 == 1 { i % 10 < 7 } else { i % 10 >= 7 })
            .collect();
        (
            Dataset::new(schema, vec![sex], labels).unwrap(),
            GroupSpec::new(0, 1),
        )
    }

    #[test]
    fn massaging_equalizes_base_rates() {
        let (d, g) = data();
        let (before_priv, before_prot) = group_rates(&d, g);
        assert!(before_priv - before_prot > 0.3);
        let out = massage(&d, g, &ConstantClassifier { proba: 0.5 });
        let (after_priv, after_prot) = group_rates(&out.data, g);
        assert!(
            (after_priv - after_prot).abs() < 0.05,
            "{after_priv} vs {after_prot}"
        );
        assert_eq!(out.promoted.len(), out.demoted.len());
        assert!(!out.promoted.is_empty());
        // Overall base rate is preserved (equal promotions/demotions).
        assert!((out.data.base_rate() - d.base_rate()).abs() < 1e-12);
    }

    #[test]
    fn flips_target_the_right_rows() {
        let (d, g) = data();
        let out = massage(&d, g, &ConstantClassifier { proba: 0.5 });
        for &r in &out.promoted {
            assert!(!d.is_privileged(r as usize, g));
            assert!(!d.label(r as usize));
            assert!(out.data.label(r as usize));
        }
        for &r in &out.demoted {
            assert!(d.is_privileged(r as usize, g));
            assert!(d.label(r as usize));
            assert!(!out.data.label(r as usize));
        }
    }

    #[test]
    fn no_disparity_means_no_flips() {
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "sex",
                vec!["f".into(), "m".into()],
            )])
            .unwrap(),
        );
        let d = Dataset::new(
            schema,
            vec![vec![0, 1, 0, 1]],
            vec![true, true, false, false],
        )
        .unwrap();
        let g = GroupSpec::new(0, 1);
        let out = massage(&d, g, &ConstantClassifier { proba: 0.5 });
        assert!(out.promoted.is_empty() && out.demoted.is_empty());
        assert_eq!(out.data, d);
    }

    #[test]
    fn ranker_scores_steer_the_selection() {
        let (d, g) = data();
        // A ranker that scores row id proportionally: highest protected
        // negatives = largest row ids.
        struct RowScorer;
        impl Classifier for RowScorer {
            fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
                (0..data.num_rows())
                    .map(|r| r as f64 / data.num_rows() as f64)
                    .collect()
            }
        }
        let out = massage(&d, g, &RowScorer);
        // Promotions should be drawn from the top of the id range,
        // demotions from the bottom.
        let avg_promoted =
            out.promoted.iter().map(|&r| r as f64).sum::<f64>() / out.promoted.len() as f64;
        let avg_demoted =
            out.demoted.iter().map(|&r| r as f64).sum::<f64>() / out.demoted.len() as f64;
        assert!(avg_promoted > avg_demoted);
    }
}
