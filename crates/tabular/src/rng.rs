//! Self-contained seeded pseudo-randomness for the whole workspace.
//!
//! The workspace builds with an empty cargo registry, so this module
//! replaces the subset of `rand` 0.8 the stack used: a deterministic
//! generator ([`StdRng`], xoshiro256** seeded through SplitMix64), the
//! [`SeedableRng`]/[`Rng`] traits, uniform ranges via `gen_range`, and
//! Fisher–Yates [`SliceRandom::shuffle`]. The API is shaped like rand's
//! on purpose — call sites migrate by swapping the import path — but the
//! byte streams are *not* rand-compatible; anything persisted that
//! embeds generator state (see `fume-forest::persist`) derives it from
//! seeds, never from raw state dumps, so this is a behavioural reseed,
//! not a format break.
//!
//! Statistical scope: experiment sampling and DaRE's random-split
//! draws. Nothing here is cryptographic.

use std::ops::{Range, RangeInclusive};

/// Splits one `u64` seed into well-distributed stream material
/// (Steele, Lea & Flood's SplitMix64 — the canonical xoshiro seeder).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256** (Blackman & Vigna),
/// 256 bits of state, equidistributed in every u64 lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for lane in &mut s {
            *lane = splitmix64(&mut sm);
        }
        // All-zero state is the one fixed point; SplitMix64 cannot emit
        // four zeros from any seed, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl StdRng {
    #[inline]
    fn next_raw(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// Uniform sampling from the generator's full output ("standard"
/// distribution in rand's vocabulary).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the standard 53-bit mantissa trick.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can produce a uniform sample of their element type.
pub trait SampleRange<T> {
    /// Draws one value inside the range. Panics on an empty range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw draw onto `[0, span)` with a 128-bit widening multiply
/// (Lemire). The ≤2⁻⁶⁴·span bias is irrelevant at this code's spans.
#[inline]
fn widen_mul(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + widen_mul(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + widen_mul(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit: f64 = Standard::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// The generator interface call sites program against.
pub trait Rng {
    /// The raw stream: one uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw over a type's full "standard" distribution
    /// (`gen::<f64>()` → `[0, 1)`, `gen::<bool>()` → fair coin).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Random slice operations (rand's `seq::SliceRandom` shape).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// One uniformly chosen element, `None` on an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a, b, "state comparison works (DareTree derives rely on it)");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn unit_f64_is_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let a = rng.gen_range(3u16..9);
            assert!((3..9).contains(&a));
            let b = rng.gen_range(0usize..=5);
            assert!(b <= 5);
            let c = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&c));
        }
        // Degenerate inclusive range is fine.
        assert_eq!(rng.gen_range(7usize..=7), 7);
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        let mut rng = StdRng::seed_from_u64(6);
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements virtually never map to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);

        let mut v2 = orig.clone();
        v2.shuffle(&mut StdRng::seed_from_u64(6));
        assert_eq!(v, v2, "same seed, same permutation");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(9);
        let items = [1, 2, 3];
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            counts[*items.choose(&mut rng).unwrap() as usize - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
    }
}
