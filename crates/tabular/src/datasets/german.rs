//! Synthetic stand-in for the UCI **German Credit** dataset
//! (1 000 rows, 21 attributes, sensitive attribute *age*).
//!
//! Attribute names and domains follow the UCI documentation; sampling
//! weights are chosen so the cohorts the paper reports in Table 3 fall in
//! the 5–15 % support range, and label bias against the protected group
//! (age < 45) is planted inside those cohorts.

use crate::generator::{AttributeSpec, GeneratorSpec, PlantedBias};
use crate::schema::AttrKind;

use super::PaperDataset;

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

/// Builds the German Credit stand-in.
pub fn german_credit() -> PaperDataset {
    let attributes = vec![
        // 0: most predictive feature in the real data
        AttributeSpec {
            name: "Status of checking account".into(),
            values: s(&["< 0 DM", "0 <= ... < 200 DM", ">= 200 DM", "No checking account"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.27, 0.27, 0.06, 0.40],
            protected_distribution: Some(vec![0.34, 0.28, 0.04, 0.34]),
            label_weights: vec![-0.9, -0.3, 0.5, 1.0],
        },
        // 1
        AttributeSpec {
            name: "Duration".into(),
            values: s(&["<= 12 months", "13-24 months", "> 24 months"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.35, 0.40, 0.25],
            protected_distribution: Some(vec![0.28, 0.40, 0.32]),
            label_weights: vec![0.5, 0.0, -0.6],
        },
        // 2
        AttributeSpec {
            name: "Credit history".into(),
            values: s(&[
                "No credits taken",
                "All credits paid back duly",
                "Existing credits paid back duly",
                "Delay in paying off",
                "Critical account",
            ]),
            kind: AttrKind::Categorical,
            distribution: vec![0.04, 0.05, 0.53, 0.09, 0.29],
            protected_distribution: None,
            label_weights: vec![-0.4, -0.3, 0.2, -0.5, 0.4],
        },
        // 3
        AttributeSpec {
            name: "Purpose".into(),
            values: s(&["Car (new)", "Car (used)", "Furniture", "Radio/TV", "Education", "Business"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.24, 0.10, 0.19, 0.28, 0.09, 0.10],
            protected_distribution: None,
            label_weights: vec![0.0, 0.3, -0.1, 0.1, -0.2, 0.0],
        },
        // 4
        AttributeSpec {
            name: "Credit amount".into(),
            values: s(&["Low", "Medium", "High"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.45, 0.35, 0.20],
            protected_distribution: None,
            label_weights: vec![0.3, 0.0, -0.4],
        },
        // 5
        AttributeSpec {
            name: "Savings".into(),
            values: s(&[
                "< 100 DM",
                "100 <= ... < 500 DM",
                "500 <= ... < 1000 DM",
                ">= 1000 DM",
                "Unknown / none",
            ]),
            kind: AttrKind::Categorical,
            distribution: vec![0.42, 0.25, 0.06, 0.08, 0.19],
            protected_distribution: Some(vec![0.50, 0.24, 0.05, 0.05, 0.16]),
            label_weights: vec![-0.4, -0.1, 0.2, 0.6, 0.2],
        },
        // 6
        AttributeSpec {
            name: "Employment since".into(),
            values: s(&["Unemployed", "< 1 year", "1-4 years", "4-7 years", ">= 7 years"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.06, 0.17, 0.34, 0.17, 0.26],
            protected_distribution: Some(vec![0.10, 0.24, 0.36, 0.14, 0.16]),
            label_weights: vec![-0.5, -0.2, 0.0, 0.2, 0.3],
        },
        // 7
        AttributeSpec {
            name: "Installment rate".into(),
            values: s(&["Low", "Medium", "High"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.30, 0.40, 0.30],
            protected_distribution: None,
            label_weights: vec![0.2, 0.0, -0.2],
        },
        // 8
        AttributeSpec {
            name: "Status and sex".into(),
            values: s(&[
                "Male divorced/separated",
                "Female divorced/separated/married",
                "Male single",
                "Male married/widowed",
            ]),
            kind: AttrKind::Categorical,
            distribution: vec![0.05, 0.33, 0.52, 0.10],
            protected_distribution: None,
            label_weights: vec![-0.1, -0.1, 0.1, 0.0],
        },
        // 9
        AttributeSpec {
            name: "Debtors".into(),
            values: s(&["None", "Co-applicant", "Guarantor"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.50, 0.25, 0.25],
            protected_distribution: None,
            label_weights: vec![0.0, -0.2, 0.3],
        },
        // 10
        AttributeSpec {
            name: "Residence since".into(),
            values: s(&["< 2 years", "2-4 years", "> 4 years"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.30, 0.40, 0.30],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0, 0.0],
        },
        // 11
        AttributeSpec {
            name: "Property".into(),
            values: s(&["Real estate", "Building society savings", "Car or other", "Unknown / no property"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.28, 0.23, 0.27, 0.22],
            protected_distribution: Some(vec![0.22, 0.21, 0.28, 0.29]),
            label_weights: vec![0.3, 0.1, 0.0, -0.4],
        },
        // 12: sensitive attribute (protected = age < 45)
        AttributeSpec {
            name: "Age".into(),
            values: s(&["< 45", ">= 45"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.411, 0.589],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0],
        },
        // 13
        AttributeSpec {
            name: "Installment plans".into(),
            values: s(&["Bank", "Stores", "None"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.25, 0.05, 0.70],
            protected_distribution: None,
            label_weights: vec![-0.3, -0.2, 0.2],
        },
        // 14
        AttributeSpec {
            name: "Housing".into(),
            values: s(&["Rent", "Own", "For free"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.30, 0.60, 0.10],
            protected_distribution: Some(vec![0.42, 0.47, 0.11]),
            label_weights: vec![-0.2, 0.2, 0.0],
        },
        // 15
        AttributeSpec {
            name: "Existing credits".into(),
            values: s(&["1", ">= 2"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.63, 0.37],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0],
        },
        // 16
        AttributeSpec {
            name: "Job".into(),
            values: s(&[
                "Unemployed / unskilled non-resident",
                "Unskilled resident",
                "Skilled employee / official",
                "Management / self-employed",
            ]),
            kind: AttrKind::Categorical,
            distribution: vec![0.05, 0.20, 0.30, 0.45],
            protected_distribution: None,
            label_weights: vec![-0.3, -0.1, 0.1, 0.2],
        },
        // 17
        AttributeSpec {
            name: "Number of people liable".into(),
            values: s(&["Low", "High"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.80, 0.20],
            protected_distribution: None,
            label_weights: vec![0.1, -0.2],
        },
        // 18
        AttributeSpec {
            name: "Telephone".into(),
            values: s(&["None", "Registered"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.60, 0.40],
            protected_distribution: None,
            label_weights: vec![0.0, 0.1],
        },
        // 19
        AttributeSpec {
            name: "Foreign worker".into(),
            values: s(&["Yes", "No"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.96, 0.04],
            protected_distribution: None,
            label_weights: vec![-0.1, 0.3],
        },
        // 20
        AttributeSpec {
            name: "Gender".into(),
            values: s(&["Female", "Male"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.31, 0.69],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0],
        },
    ];

    // Cohorts of Table 3, biased against the protected (young) group.
    let planted = vec![
        // GS1: checking < 0 DM ∧ people liable = High     (~5.4 %)
        PlantedBias::against_protected(vec![(0, 0), (17, 1)], 2.6),
        // GS2: savings 100–500 DM ∧ job = skilled         (~7.5 %)
        PlantedBias::against_protected(vec![(5, 1), (16, 2)], 2.4),
        // GS3: installment plans = Bank ∧ debtors = None  (~12.5 %)
        PlantedBias::against_protected(vec![(13, 0), (9, 0)], 2.2),
        // GS4: no checking account ∧ property unknown     (~8.8 %)
        PlantedBias::against_protected(vec![(0, 3), (11, 3)], 2.0),
        // GS5: housing = Rent ∧ female div/sep/married    (~9.9 %)
        PlantedBias::against_protected(vec![(14, 0), (8, 1)], 1.8),
    ];

    PaperDataset {
        spec: GeneratorSpec {
            name: "German Credit".into(),
            attributes,
            sensitive_attr: 12,
            privileged_code: 1,
            protected_fraction: 0.4110,
            base_rate_privileged: 0.7419,
            base_rate_protected: 0.6399,
            planted,
            label_values: ["bad credit".into(), "good credit".into()],
        }
        // Sharpen the label signal so a forest's predicted probabilities
        // spread across the 0.5 threshold — the precondition for the
        // label-level group gap to surface as prediction disparity.
        .with_weight_scale(2.2),
        full_size: 1_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn planted_cohorts_fall_in_support_range() {
        let ds = german_credit();
        let (data, _) = generate(&ds.spec, 20_000, 3).unwrap();
        for (i, bias) in ds.spec.planted.iter().enumerate() {
            let matches = (0..data.num_rows())
                .filter(|&r| bias.literals.iter().all(|&(a, c)| data.code(r, a) == c))
                .count();
            let support = matches as f64 / data.num_rows() as f64;
            assert!(
                (0.04..=0.15).contains(&support),
                "cohort {i} support {support}"
            );
        }
    }

    #[test]
    fn sensitive_attribute_is_age() {
        let ds = german_credit();
        assert_eq!(ds.spec.attributes[ds.spec.sensitive_attr].name, "Age");
        assert_eq!(ds.spec.privileged_code, 1);
    }
}
