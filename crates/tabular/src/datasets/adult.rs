//! Synthetic stand-in for the **Adult Census Income** dataset
//! (45 222 rows after the usual NA-drop, 10 attributes, sensitive
//! attribute *sex*).

use crate::generator::{AttributeSpec, GeneratorSpec, PlantedBias};
use crate::schema::AttrKind;

use super::PaperDataset;

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

/// Builds the Adult stand-in.
pub fn adult() -> PaperDataset {
    let attributes = vec![
        // 0
        AttributeSpec {
            name: "Age".into(),
            values: s(&["Young", "Middle-aged", "Senior"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.30, 0.50, 0.20],
            protected_distribution: None,
            label_weights: vec![-0.8, 0.3, 0.2],
        },
        // 1
        AttributeSpec {
            name: "Workclass".into(),
            values: s(&[
                "Private",
                "Self employed no income",
                "Self employed incorporated",
                "Government",
                "Other",
            ]),
            kind: AttrKind::Categorical,
            distribution: vec![0.69, 0.12, 0.04, 0.13, 0.02],
            protected_distribution: None,
            label_weights: vec![0.0, -0.2, 0.5, 0.2, -0.3],
        },
        // 2
        AttributeSpec {
            name: "Education".into(),
            values: s(&["HS or less", "Some college", "Bachelors", "Masters", "Doctorate/Prof"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.45, 0.25, 0.19, 0.08, 0.03],
            protected_distribution: None,
            label_weights: vec![-0.7, -0.1, 0.6, 1.0, 1.4],
        },
        // 3
        AttributeSpec {
            name: "Marital status".into(),
            values: s(&["Married", "Never married", "Divorced/Separated/Widowed"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.47, 0.33, 0.20],
            protected_distribution: None,
            label_weights: vec![0.8, -0.7, -0.3],
        },
        // 4
        AttributeSpec {
            name: "Occupation".into(),
            values: s(&[
                "Clerical administration",
                "Sales",
                "Executive managerial",
                "Professional specialty",
                "Craft repair",
                "Other service",
            ]),
            kind: AttrKind::Categorical,
            distribution: vec![0.13, 0.11, 0.13, 0.13, 0.13, 0.37],
            // Women over-represented in clerical/service work (real-data pattern).
            protected_distribution: Some(vec![0.24, 0.11, 0.08, 0.13, 0.03, 0.41]),
            label_weights: vec![-0.1, 0.2, 0.7, 0.6, 0.1, -0.5],
        },
        // 5
        AttributeSpec {
            name: "Relationship".into(),
            values: s(&["Husband", "Wife", "Own child", "Unmarried", "Not in family"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.40, 0.05, 0.15, 0.11, 0.29],
            protected_distribution: Some(vec![0.00, 0.16, 0.15, 0.25, 0.44]),
            label_weights: vec![0.5, 0.4, -0.9, -0.4, -0.2],
        },
        // 6
        AttributeSpec {
            name: "Race".into(),
            values: s(&["White", "Black", "Other"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.86, 0.09, 0.05],
            protected_distribution: None,
            label_weights: vec![0.1, -0.2, 0.0],
        },
        // 7: sensitive
        AttributeSpec {
            name: "Sex".into(),
            values: s(&["Female", "Male"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.325, 0.675],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0],
        },
        // 8
        AttributeSpec {
            name: "Hours per week".into(),
            values: s(&["Part-time", "Full-time", "Overtime"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.17, 0.57, 0.26],
            protected_distribution: Some(vec![0.30, 0.56, 0.14]),
            label_weights: vec![-0.8, 0.1, 0.6],
        },
        // 9
        AttributeSpec {
            name: "Native country".into(),
            values: s(&["United States", "Other"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.91, 0.09],
            protected_distribution: None,
            label_weights: vec![0.1, -0.1],
        },
    ];

    // Cohorts of Table 4. AS1 boosts privileged men with Bachelors degrees;
    // the rest depress protected rows.
    let planted = vec![
        // AS1: Sex = Male ∧ Education = Bachelors (~11.7 % incl. the sex literal)
        PlantedBias::favoring_privileged(vec![(2, 2)], 1.4),
        // AS2: Occupation = Sales ∧ Age = Middle-aged (~6.5 %)
        PlantedBias::against_protected(vec![(4, 1), (0, 1)], 1.8),
        // AS3: Occupation = Clerical administration (~12.3 %)
        PlantedBias::against_protected(vec![(4, 0)], 1.4),
        // AS4: Age = Middle-aged ∧ Workclass = Self employed no income (~6 %)
        PlantedBias::against_protected(vec![(0, 1), (1, 1)], 1.6),
        // AS5: Relationship = Unmarried (~10.6 %)
        PlantedBias::against_protected(vec![(5, 3)], 1.2),
    ];

    PaperDataset {
        spec: GeneratorSpec {
            name: "Adult Census Income".into(),
            attributes,
            sensitive_attr: 7,
            privileged_code: 1,
            protected_fraction: 0.3250,
            base_rate_privileged: 0.3124,
            base_rate_protected: 0.1135,
            planted,
            label_values: ["<= 50k".into(), "> 50k".into()],
        }
        .with_weight_scale(2.0),
        full_size: 45_222,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn occupation_correlates_with_sex() {
        let ds = adult();
        let (data, group) = generate(&ds.spec, 20_000, 11).unwrap();
        let clerical_rate = |privileged: bool| {
            let (mut n, mut m) = (0usize, 0usize);
            for r in 0..data.num_rows() {
                if data.is_privileged(r, group) == privileged {
                    n += 1;
                    if data.code(r, 4) == 0 {
                        m += 1;
                    }
                }
            }
            m as f64 / n as f64
        };
        assert!(
            clerical_rate(false) > clerical_rate(true) + 0.05,
            "protected clerical {} vs privileged {}",
            clerical_rate(false),
            clerical_rate(true)
        );
    }

    #[test]
    fn married_earn_more() {
        let ds = adult();
        let (data, _) = generate(&ds.spec, 20_000, 12).unwrap();
        let rate = |code: u16| {
            let ids: Vec<u32> = (0..data.num_rows() as u32)
                .filter(|&r| data.code(r as usize, 3) == code)
                .collect();
            data.select_rows(&ids).unwrap().base_rate()
        };
        assert!(rate(0) > rate(1) + 0.1, "married {} vs never {}", rate(0), rate(1));
    }
}
