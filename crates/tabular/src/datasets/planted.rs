//! A tiny dataset with a *known* responsible cohort, used throughout the
//! workspace's tests: FUME should recover the planted subset.

use crate::generator::{AttributeSpec, GeneratorSpec, PlantedBias};
use crate::schema::AttrKind;

use super::PaperDataset;

/// Builds a 4-attribute toy whose fairness violation is caused (by
/// construction) by protected rows with `city = urban ∧ job = manual`:
/// those rows have their positive-label odds strongly depressed, while
/// the groups are otherwise exchangeable.
pub fn planted_toy() -> PaperDataset {
    let attributes = vec![
        AttributeSpec {
            name: "sex".into(),
            values: vec!["female".into(), "male".into()],
            kind: AttrKind::Categorical,
            distribution: vec![0.5, 0.5],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0],
        },
        AttributeSpec {
            name: "city".into(),
            values: vec!["urban".into(), "suburban".into(), "rural".into()],
            kind: AttrKind::Categorical,
            distribution: vec![0.4, 0.35, 0.25],
            protected_distribution: None,
            label_weights: vec![0.2, 0.0, -0.2],
        },
        AttributeSpec {
            name: "job".into(),
            values: vec!["manual".into(), "office".into(), "none".into()],
            kind: AttrKind::Categorical,
            distribution: vec![0.3, 0.5, 0.2],
            protected_distribution: None,
            label_weights: vec![0.0, 0.6, -0.6],
        },
        AttributeSpec {
            name: "savings".into(),
            values: vec!["low".into(), "high".into()],
            kind: AttrKind::Categorical,
            distribution: vec![0.6, 0.4],
            protected_distribution: None,
            label_weights: vec![-0.4, 0.4],
        },
    ];

    PaperDataset {
        spec: GeneratorSpec {
            name: "planted toy".into(),
            attributes,
            sensitive_attr: 0,
            privileged_code: 1,
            protected_fraction: 0.5,
            // Equal *global* base-rate targets: the disparity the model
            // learns comes almost entirely from the planted cohort.
            base_rate_privileged: 0.55,
            base_rate_protected: 0.45,
            planted: vec![PlantedBias::against_protected(vec![(1, 0), (2, 0)], 3.5)],
            label_values: ["denied".into(), "approved".into()],
        },
        full_size: 2_000,
    }
}

/// The planted cohort's literals, `(attribute index, code)`:
/// `city = urban ∧ job = manual`.
pub const PLANTED_TOY_COHORT: &[(usize, u16)] = &[(1, 0), (2, 0)];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::stats::group_base_rates;

    #[test]
    fn cohort_concentrates_the_disparity() {
        let ds = planted_toy();
        let (data, group) = generate(&ds.spec, 20_000, 13).unwrap();
        let in_cohort: Vec<u32> = (0..data.num_rows() as u32)
            .filter(|&r| {
                PLANTED_TOY_COHORT
                    .iter()
                    .all(|&(a, c)| data.code(r as usize, a) == c)
            })
            .collect();
        let out_cohort: Vec<u32> = (0..data.num_rows() as u32)
            .filter(|&r| !in_cohort.contains(&r))
            .collect();
        let (pi, pr) =
            group_base_rates(&data.select_rows(&in_cohort).unwrap(), group);
        let (qi, qr) =
            group_base_rates(&data.select_rows(&out_cohort).unwrap(), group);
        let gap_in = pi - pr;
        let gap_out = qi - qr;
        assert!(
            gap_in > gap_out + 0.2,
            "cohort gap {gap_in} should dwarf outside gap {gap_out}"
        );
    }
}
