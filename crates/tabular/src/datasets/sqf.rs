//! Synthetic stand-in for the NYPD **Stop-Question-Frisk** dataset
//! (72 546 rows, 16 attributes, sensitive attribute *race*; the positive
//! label means the stopped individual was frisked).

use crate::generator::{AttributeSpec, GeneratorSpec, PlantedBias};
use crate::schema::AttrKind;

use super::PaperDataset;

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

fn flag(name: &str, p_yes: f64, w_yes: f64) -> AttributeSpec {
    AttributeSpec::flag(name, p_yes, w_yes)
}

/// Builds the SQF stand-in.
pub fn sqf() -> PaperDataset {
    let attributes = vec![
        // 0: sensitive — race
        AttributeSpec {
            name: "Race".into(),
            values: s(&["Black", "White", "Hispanic", "Other"]),
            kind: AttrKind::Categorical,
            // Within the protected pool, most stops are of Black or
            // Hispanic individuals.
            distribution: vec![0.60, 1.0, 0.30, 0.10],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0, 0.0, 0.0],
        },
        // 1: sex is highly correlated with race in the stop data — the
        // paper's SS1 finding hinges on this.
        AttributeSpec {
            name: "Sex".into(),
            values: s(&["Male", "Female"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.955, 0.045],
            protected_distribution: Some(vec![0.91, 0.09]),
            label_weights: vec![0.3, -0.5],
        },
        // 2
        AttributeSpec {
            name: "Weight".into(),
            values: s(&["Light", "Medium", "Heavy"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.14, 0.61, 0.25],
            protected_distribution: None,
            label_weights: vec![-0.2, 0.0, 0.1],
        },
        // 3
        AttributeSpec {
            name: "Build".into(),
            values: s(&["Thin", "Medium", "Heavy"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.25, 0.55, 0.20],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0, 0.1],
        },
        // 4
        flag("Casing a victim", 0.13, 0.6),
        // 5
        flag("Fits a relevant description", 0.16, 0.5),
        // 6
        flag("Suspect acting as a lookout", 0.12, 0.5),
        // 7
        flag("Actions indicative of a drug transaction", 0.11, 0.7),
        // 8
        flag("Furtive movements", 0.45, 0.6),
        // 9
        flag("Suspicious bulge", 0.08, 0.9),
        // 10
        flag("Violent crime suspected", 0.18, 0.5),
        // 11
        flag("Evasive response", 0.25, 0.3),
        // 12
        AttributeSpec {
            name: "Time of day".into(),
            values: s(&["Morning", "Afternoon", "Evening", "Night"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.15, 0.25, 0.30, 0.30],
            protected_distribution: None,
            label_weights: vec![-0.2, -0.1, 0.1, 0.2],
        },
        // 13
        AttributeSpec {
            name: "Borough".into(),
            values: s(&["Manhattan", "Brooklyn", "Bronx", "Queens", "Staten Island"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.20, 0.33, 0.20, 0.21, 0.06],
            protected_distribution: None,
            label_weights: vec![0.0, 0.1, 0.1, -0.1, 0.0],
        },
        // 14
        flag("Inside location", 0.22, -0.2),
        // 15
        AttributeSpec {
            name: "Age group".into(),
            values: s(&["Under 21", "21-35", "Over 35"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.30, 0.45, 0.25],
            protected_distribution: None,
            label_weights: vec![0.3, 0.1, -0.3],
        },
    ];

    // Cohorts of Table 5 (note SS1 = Sex=Female is a *single literal* whose
    // support ≈ 6.5 %; the correlation with race lets its removal break the
    // model's dependence on both).
    let planted = vec![
        // SS1/SS5 driver: frisk bias against protected light-weight and
        // female stops.
        PlantedBias::against_protected(vec![(1, 1)], 2.2),
        // SS2: Weight = Light ∧ Casing a victim = False
        PlantedBias::against_protected(vec![(2, 0), (4, 0)], 1.6),
        // SS3: Build = Heavy ∧ Fits a relevant description = False
        PlantedBias::against_protected(vec![(3, 2), (5, 0)], 1.5),
        // SS4: Lookout = False ∧ Drug transaction = True
        PlantedBias::against_protected(vec![(6, 0), (7, 1)], 1.7),
    ];

    PaperDataset {
        spec: GeneratorSpec {
            name: "SQF".into(),
            attributes,
            sensitive_attr: 0,
            // "White" is the privileged group.
            privileged_code: 1,
            protected_fraction: 0.3594,
            base_rate_privileged: 0.3832,
            base_rate_protected: 0.3016,
            planted,
            label_values: ["not frisked".into(), "frisked".into()],
        }
        .with_weight_scale(2.0),
        full_size: 72_546,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn female_fraction_matches_paper_support() {
        let ds = sqf();
        let (data, _) = generate(&ds.spec, 30_000, 21).unwrap();
        let female =
            (0..data.num_rows()).filter(|&r| data.code(r, 1) == 1).count() as f64
                / data.num_rows() as f64;
        // Paper reports SS1 (Sex = Female) support 6.51 %.
        assert!((0.04..=0.09).contains(&female), "female fraction {female}");
    }

    #[test]
    fn sex_correlates_with_race() {
        let ds = sqf();
        let (data, group) = generate(&ds.spec, 30_000, 22).unwrap();
        let female_rate = |privileged: bool| {
            let (mut n, mut m) = (0usize, 0usize);
            for r in 0..data.num_rows() {
                if data.is_privileged(r, group) == privileged {
                    n += 1;
                    m += usize::from(data.code(r, 1) == 1);
                }
            }
            m as f64 / n as f64
        };
        assert!(female_rate(false) > female_rate(true) * 1.5);
    }
}
