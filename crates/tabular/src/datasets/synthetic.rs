//! Parameterized synthetic datasets for the scalability experiments
//! (paper Figure 5: runtime vs #instances/#attributes/#distinct values).

use crate::rng::{Rng, SeedableRng, StdRng};

use crate::generator::{AttributeSpec, GeneratorSpec, PlantedBias};
use crate::schema::AttrKind;

use super::PaperDataset;

/// Shape of a synthetic dataset.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of attributes, including the sensitive one (the paper's `p`).
    pub num_attributes: usize,
    /// Distinct values per non-sensitive attribute (the paper's `d`).
    pub values_per_attribute: usize,
    /// Seed controlling the randomly drawn distributions and label weights.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self { num_attributes: 10, values_per_attribute: 2, seed: 0 }
    }
}

/// Builds a synthetic [`PaperDataset`] with `cfg.num_attributes` attributes
/// of `cfg.values_per_attribute` distinct values each. Attribute 0 is a
/// binary sensitive attribute; one planted cohort carries label bias
/// against the protected group so FUME always has something to find.
pub fn synthetic(cfg: SyntheticConfig) -> PaperDataset {
    assert!(cfg.num_attributes >= 2, "need at least sensitive + one attribute");
    assert!(cfg.values_per_attribute >= 2, "need at least binary attributes");
    // fume-lint: allow(F003) -- seed provenance: derived from the caller's SyntheticConfig seed, so generation is reproducible per config
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed_5eed);
    let d = cfg.values_per_attribute;

    let mut attributes = vec![AttributeSpec {
        name: "group".into(),
        values: vec!["protected".into(), "privileged".into()],
        kind: AttrKind::Categorical,
        distribution: vec![0.4, 0.6],
        protected_distribution: None,
        label_weights: vec![0.0, 0.0],
    }];
    for j in 1..cfg.num_attributes {
        let values = (0..d).map(|v| format!("v{v}")).collect();
        let distribution = (0..d).map(|_| 0.5 + rng.gen::<f64>()).collect();
        let label_weights = (0..d).map(|_| rng.gen_range(-0.5..0.5)).collect();
        attributes.push(AttributeSpec {
            name: format!("attr{j}"),
            values,
            kind: AttrKind::Categorical,
            distribution,
            protected_distribution: None,
            label_weights,
        });
    }

    // Plant bias in a one- or two-literal cohort over the first attributes.
    let planted = if cfg.num_attributes > 2 && d >= 2 {
        vec![
            PlantedBias::against_protected(vec![(1, 0)], 1.5),
            PlantedBias::against_protected(vec![(1, 1), (2, 0)], 1.8),
        ]
    } else {
        vec![PlantedBias::against_protected(vec![(1, 0)], 1.5)]
    };

    PaperDataset {
        spec: GeneratorSpec {
            name: format!("synthetic(p={}, d={})", cfg.num_attributes, d),
            attributes,
            sensitive_attr: 0,
            privileged_code: 1,
            protected_fraction: 0.4,
            base_rate_privileged: 0.6,
            base_rate_protected: 0.45,
            planted,
            label_values: ["negative".into(), "positive".into()],
        },
        full_size: 30_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn respects_shape_parameters() {
        let ds = synthetic(SyntheticConfig {
            num_attributes: 7,
            values_per_attribute: 4,
            seed: 3,
        });
        assert_eq!(ds.spec.attributes.len(), 7);
        for a in &ds.spec.attributes[1..] {
            assert_eq!(a.values.len(), 4);
        }
        let (data, group) = generate(&ds.spec, 1_000, 5).unwrap();
        assert_eq!(data.num_attributes(), 7);
        assert_eq!(group.attr, 0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = synthetic(SyntheticConfig { seed: 1, ..Default::default() });
        let b = synthetic(SyntheticConfig { seed: 2, ..Default::default() });
        let (da, _) = generate(&a.spec, 500, 9).unwrap();
        let (db, _) = generate(&b.spec, 500, 9).unwrap();
        assert_ne!(da, db);
    }

    #[test]
    #[should_panic(expected = "at least binary")]
    fn rejects_unary_attributes() {
        synthetic(SyntheticConfig {
            num_attributes: 3,
            values_per_attribute: 1,
            seed: 0,
        });
    }
}
