//! Synthetic stand-in for the **Medical Expenditure Panel Survey**
//! (MEPS, 2015 Panel 19; 11 081 rows, 42 attributes, sensitive attribute
//! *race*; the positive label means high utilization of medical care).
//!
//! The real extract (as preprocessed by AIF360's `MEPSDataset19`) carries
//! dozens of diagnosis/limitation flags; we model the ones the paper's
//! Table 7 mentions explicitly and fill the remainder with weakly
//! predictive clinical flags so the attribute count matches.

use crate::generator::{AttributeSpec, GeneratorSpec, PlantedBias};
use crate::schema::AttrKind;

use super::PaperDataset;

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

/// Builds the MEPS stand-in.
pub fn meps() -> PaperDataset {
    let mut attributes = vec![
        // 0: sensitive — race (privileged = White per AIF360's encoding)
        AttributeSpec {
            name: "Race".into(),
            values: s(&["Non-White", "White"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.6407, 0.3593],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0],
        },
        // 1
        AttributeSpec {
            name: "Age".into(),
            values: s(&["Under 18", "18-44", "45-64", "65 plus"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.26, 0.36, 0.25, 0.13],
            protected_distribution: None,
            label_weights: vec![-0.5, -0.3, 0.3, 0.6],
        },
        // 2
        AttributeSpec {
            name: "Sex".into(),
            values: s(&["Male", "Female"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.48, 0.52],
            protected_distribution: None,
            label_weights: vec![-0.1, 0.1],
        },
        // 3
        AttributeSpec {
            name: "Region".into(),
            values: s(&["Northeast", "Midwest", "South", "West"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.16, 0.20, 0.39, 0.25],
            protected_distribution: None,
            label_weights: vec![0.1, 0.1, -0.1, 0.0],
        },
        // 4
        AttributeSpec {
            name: "Marital status".into(),
            values: s(&["Married", "Never married", "Other"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.40, 0.43, 0.17],
            protected_distribution: None,
            label_weights: vec![0.1, -0.2, 0.1],
        },
        // 5
        AttributeSpec {
            name: "Education".into(),
            values: s(&["No degree", "High school", "College or higher"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.35, 0.40, 0.25],
            protected_distribution: None,
            label_weights: vec![-0.2, 0.0, 0.3],
        },
        // 6
        AttributeSpec {
            name: "Employment Status".into(),
            values: s(&["Employed", "Unemployed", "Not in labor force"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.55, 0.12, 0.33],
            protected_distribution: None,
            label_weights: vec![-0.2, -0.1, 0.3],
        },
        // 7
        AttributeSpec::flag("Health insurance coverage", 0.88, 0.6),
        // 8
        AttributeSpec {
            name: "Income".into(),
            values: s(&["Poor", "Middle", "High"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.28, 0.42, 0.30],
            protected_distribution: None,
            label_weights: vec![-0.1, 0.0, 0.2],
        },
        // 9
        AttributeSpec {
            name: "Perceived health status".into(),
            values: s(&["Excellent", "Good", "Fair/Poor"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.33, 0.47, 0.20],
            protected_distribution: None,
            label_weights: vec![-0.6, 0.0, 0.8],
        },
        // 10: cancer — the dominant Table 7 pattern (support ≈ 6.2 %)
        AttributeSpec::flag("Cancer diagnosis", 0.062, 2.0),
        // 11
        AttributeSpec::flag("Emphysema diagnosis", 0.016, 0.8),
        // 12
        AttributeSpec::flag("Chronic bronchitis", 0.031, 0.8),
        // 13
        AttributeSpec::flag("High blood pressure", 0.26, 0.5),
        // 14
        AttributeSpec::flag("Heart disease", 0.075, 0.8),
        // 15
        AttributeSpec::flag("Stroke", 0.028, 0.8),
        // 16
        AttributeSpec::flag("Asthma", 0.10, 0.5),
        // 17
        AttributeSpec::flag("Diabetes", 0.086, 0.7),
        // 18
        AttributeSpec::flag("Arthritis", 0.20, 0.5),
        // 19
        AttributeSpec::flag("Joint pain", 0.28, 0.4),
        // 20
        AttributeSpec::flag("ADHD diagnosis", 0.04, 0.3),
        // 21
        AttributeSpec::flag("Cognitive limitations", 0.045, 0.6),
        // 22: ACTLIM — the paper highlights its importance gain
        AttributeSpec::flag("Any limitation (work/household/school)", 0.12, 0.9),
        // 23
        AttributeSpec::flag("Social limitations", 0.06, 0.6),
        // 24
        AttributeSpec::flag("Physical limitations", 0.14, 0.7),
        // 25
        AttributeSpec::flag("Vision problems", 0.08, 0.3),
        // 26
        AttributeSpec::flag("Hearing problems", 0.06, 0.3),
        // 27
        AttributeSpec::flag("Pregnant", 0.03, 0.5),
        // 28
        AttributeSpec::flag("Walking limitation", 0.11, 0.6),
        // 29
        AttributeSpec::flag("Activities of daily living help", 0.035, 0.8),
    ];
    // Fill to 42 attributes with weakly informative clinical flags, as the
    // real extract carries many sparsely populated indicator columns.
    for i in attributes.len()..42 {
        let p = 0.05 + 0.02 * ((i * 7) % 10) as f64;
        let w = 0.05 * ((i % 5) as f64 - 2.0);
        attributes.push(AttributeSpec::flag(format!("Clinical flag {i}"), p, w));
    }

    // Cohorts of Table 7: high expenditure "invariably related to the
    // protected group" inside cancer-positive cohorts.
    // The three cancer cohorts overlap almost entirely (their "No"
    // literals cover ~95 % of rows), so their deltas stack on a typical
    // protected cancer row; keep each modest so the flag's +2.0 weight
    // still leaves cancer positively predictive overall.
    let planted = vec![
        // ME1: Chronic bronchitis = No ∧ Cancer = True
        PlantedBias::against_protected(vec![(12, 0), (10, 1)], 1.0),
        // ME2: Insurance = True ∧ Employment = Unemployed
        PlantedBias::against_protected(vec![(7, 1), (6, 1)], 1.8),
        // ME3/ME4/ME5 share the cancer pattern.
        PlantedBias::against_protected(vec![(11, 0), (10, 1)], 0.9),
        PlantedBias::against_protected(vec![(21, 0), (10, 1)], 0.8),
    ];

    PaperDataset {
        spec: GeneratorSpec {
            name: "MEPS".into(),
            attributes,
            sensitive_attr: 0,
            privileged_code: 1,
            protected_fraction: 0.6407,
            base_rate_privileged: 0.2549,
            base_rate_protected: 0.1236,
            planted,
            label_values: ["low utilization".into(), "high utilization".into()],
        }
        .with_weight_scale(2.0),
        full_size: 11_081,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn has_42_attributes_with_unique_names() {
        let ds = meps();
        assert_eq!(ds.spec.attributes.len(), 42);
        let mut names: Vec<&str> =
            ds.spec.attributes.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 42);
    }

    #[test]
    fn cancer_support_matches_table7() {
        let ds = meps();
        let (data, _) = generate(&ds.spec, 20_000, 41).unwrap();
        let support = (0..data.num_rows())
            .filter(|&r| data.code(r, 10) == 1)
            .count() as f64
            / data.num_rows() as f64;
        // ME5 (Cancer diagnosis = True) has support 6.17 % in the paper.
        assert!((0.045..=0.08).contains(&support), "cancer support {support}");
    }

    #[test]
    fn cancer_predicts_high_utilization() {
        let ds = meps();
        let (data, _) = generate(&ds.spec, 20_000, 42).unwrap();
        let rate = |code: u16| {
            let ids: Vec<u32> = (0..data.num_rows() as u32)
                .filter(|&r| data.code(r as usize, 10) == code)
                .collect();
            data.select_rows(&ids).unwrap().base_rate()
        };
        assert!(rate(1) > rate(0) + 0.1, "cancer {} vs none {}", rate(1), rate(0));
    }
}
