//! Synthetic stand-in for the **ACS Income** dataset (folktables-style
//! extract of the California 2015 ACS PUMS; 139 833 rows, 10 attributes,
//! sensitive attribute *sex*).

use crate::generator::{AttributeSpec, GeneratorSpec, PlantedBias};
use crate::schema::AttrKind;

use super::PaperDataset;

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

/// Builds the ACS Income stand-in.
pub fn acs_income() -> PaperDataset {
    let attributes = vec![
        // 0
        AttributeSpec {
            name: "Age".into(),
            values: s(&["Young", "Middle-aged", "Senior"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.34, 0.50, 0.16],
            protected_distribution: None,
            label_weights: vec![-0.7, 0.4, 0.1],
        },
        // 1
        AttributeSpec {
            name: "WorkClass".into(),
            values: s(&[
                "Private",
                "Self-employed",
                "Local government",
                "State government",
                "Federal government",
            ]),
            kind: AttrKind::Categorical,
            distribution: vec![0.70, 0.12, 0.09, 0.06, 0.03],
            protected_distribution: None,
            label_weights: vec![0.0, 0.1, 0.2, 0.2, 0.4],
        },
        // 2
        AttributeSpec {
            name: "School".into(),
            values: s(&[
                "No high school diploma",
                "High school diploma",
                ">= 1 college credit but no degree",
                "Bachelors degree",
                "Advanced degree",
            ]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.14, 0.21, 0.31, 0.22, 0.12],
            protected_distribution: None,
            label_weights: vec![-1.0, -0.4, -0.1, 0.7, 1.1],
        },
        // 3
        AttributeSpec {
            name: "Marital status".into(),
            values: s(&["Married", "Never married", "Other"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.50, 0.33, 0.17],
            protected_distribution: None,
            label_weights: vec![0.4, -0.4, -0.1],
        },
        // 4
        AttributeSpec {
            name: "Occupation".into(),
            values: s(&["Management", "Professional", "Sales", "Service", "Production"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.15, 0.22, 0.22, 0.24, 0.17],
            protected_distribution: Some(vec![0.12, 0.25, 0.25, 0.29, 0.09]),
            label_weights: vec![0.8, 0.6, 0.0, -0.6, -0.1],
        },
        // 5
        AttributeSpec {
            name: "Place of birth".into(),
            values: s(&["United States", "Other"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.70, 0.30],
            protected_distribution: None,
            label_weights: vec![0.1, -0.1],
        },
        // 6
        AttributeSpec {
            name: "Relationship".into(),
            values: s(&["Householder", "Spouse", "Child", "Other"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.42, 0.25, 0.13, 0.20],
            protected_distribution: None,
            label_weights: vec![0.3, 0.2, -0.6, -0.1],
        },
        // 7
        AttributeSpec {
            name: "Hours worked per week".into(),
            values: s(&["Part-time", "Full-time", "Overtime"]),
            kind: AttrKind::Ordinal,
            distribution: vec![0.22, 0.57, 0.21],
            protected_distribution: Some(vec![0.31, 0.56, 0.13]),
            label_weights: vec![-0.9, 0.1, 0.7],
        },
        // 8: sensitive
        AttributeSpec {
            name: "Sex".into(),
            values: s(&["Female", "Male"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.4855, 0.5145],
            protected_distribution: None,
            label_weights: vec![0.0, 0.0],
        },
        // 9
        AttributeSpec {
            name: "Race".into(),
            values: s(&["White", "Black", "Asian", "Other"]),
            kind: AttrKind::Categorical,
            distribution: vec![0.60, 0.06, 0.15, 0.19],
            protected_distribution: None,
            label_weights: vec![0.1, -0.2, 0.2, -0.1],
        },
    ];

    // Cohorts of Table 6. ACS is large, so in the 5–15 % range the paper
    // observes only modest (12–27 %) parity reductions: plant weaker,
    // distributed bias.
    let planted = vec![
        // AC1: Hours = Overtime ∧ WorkClass = Private (~14.7 %)
        PlantedBias::favoring_privileged(vec![(7, 2), (1, 0)], 0.45),
        // AC2: Age = Senior (~10.4 % with the paper's marginals)
        PlantedBias::against_protected(vec![(0, 2)], 0.40),
        // AC3: Age = Middle-aged ∧ School = college credit, no degree (~9.6 %)
        PlantedBias::against_protected(vec![(0, 1), (2, 2)], 0.40),
        // AC4: Hours = Part-time (~14.3 %)
        PlantedBias::against_protected(vec![(7, 0)], 0.35),
        // AC5: WorkClass = Local government (~8.6 %)
        PlantedBias::against_protected(vec![(1, 2)], 0.35),
    ];

    PaperDataset {
        spec: GeneratorSpec {
            name: "ACS Income".into(),
            attributes,
            sensitive_attr: 8,
            privileged_code: 1,
            protected_fraction: 0.4855,
            base_rate_privileged: 0.4353,
            base_rate_protected: 0.3106,
            planted,
            label_values: ["<= 50k".into(), "> 50k".into()],
        }
        .with_weight_scale(2.0),
        full_size: 139_833,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn education_is_strongly_predictive() {
        let ds = acs_income();
        let (data, _) = generate(&ds.spec, 20_000, 31).unwrap();
        let rate = |code: u16| {
            let ids: Vec<u32> = (0..data.num_rows() as u32)
                .filter(|&r| data.code(r as usize, 2) == code)
                .collect();
            data.select_rows(&ids).unwrap().base_rate()
        };
        assert!(rate(4) > rate(0) + 0.25, "advanced {} vs none {}", rate(4), rate(0));
    }

    #[test]
    fn overtime_private_cohort_support() {
        let ds = acs_income();
        let (data, _) = generate(&ds.spec, 20_000, 32).unwrap();
        let m = (0..data.num_rows())
            .filter(|&r| data.code(r, 7) == 2 && data.code(r, 1) == 0)
            .count() as f64
            / data.num_rows() as f64;
        assert!((0.08..=0.20).contains(&m), "support {m}");
    }
}
