//! Synthetic stand-ins for the paper's five evaluation datasets, plus
//! parameterized synthetic data for the scalability experiments.
//!
//! Each module fixes a `GeneratorSpec`
//! that reproduces the published schema, size, protected-group fraction
//! and per-group base rates of the corresponding real dataset (the
//! paper's Table 2), and plants label bias in the predicate cohorts the
//! paper reports as attributable (Tables 3–7). See `DESIGN.md` §2 for the
//! substitution rationale.

mod acs_income;
mod adult;
mod german;
mod meps;
mod planted;
mod sqf;
mod synthetic;

pub use acs_income::acs_income;
pub use adult::adult;
pub use german::german_credit;
pub use meps::meps;
pub use planted::{planted_toy, PLANTED_TOY_COHORT};
pub use sqf::sqf;
pub use synthetic::{synthetic, SyntheticConfig};

use crate::dataset::{Dataset, GroupSpec};
use crate::error::Result;
use crate::generator::{generate, GeneratorSpec};

/// A paper dataset: its generator spec plus the published row count.
#[derive(Debug, Clone)]
pub struct PaperDataset {
    /// The generative description.
    pub spec: GeneratorSpec,
    /// The paper's row count (Table 2).
    pub full_size: usize,
}

impl PaperDataset {
    /// Generates the dataset at its full published size.
    pub fn generate_full(&self, seed: u64) -> Result<(Dataset, GroupSpec)> {
        generate(&self.spec, self.full_size, seed)
    }

    /// Generates the dataset scaled by `scale` (e.g. `0.1` for a 10% sample),
    /// keeping at least 200 rows so group statistics stay meaningful.
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> Result<(Dataset, GroupSpec)> {
        let n = ((self.full_size as f64 * scale).round() as usize).max(200);
        generate(&self.spec, n, seed)
    }

    /// The dataset's name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }
}

/// All five paper datasets in Table 2 / Table 8 order
/// (German, Adult, MEPS, SQF, ACS Income).
pub fn all_paper_datasets() -> Vec<PaperDataset> {
    vec![german_credit(), adult(), meps(), sqf(), acs_income()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;

    /// Table 2 targets: (name, n, p, protected %, priv rate, prot rate).
    const TABLE2: &[(&str, usize, usize, f64, f64, f64)] = &[
        ("German Credit", 1_000, 21, 0.4110, 0.7419, 0.6399),
        ("Adult Census Income", 45_222, 10, 0.3250, 0.3124, 0.1135),
        ("MEPS", 11_081, 42, 0.6407, 0.2549, 0.1236),
        ("SQF", 72_546, 16, 0.3594, 0.3832, 0.3016),
        ("ACS Income", 139_833, 10, 0.4855, 0.4353, 0.3106),
    ];

    #[test]
    fn paper_datasets_match_table2_shape() {
        for (ds, &(name, n, p, prot, r_priv, r_prot)) in
            all_paper_datasets().iter().zip(TABLE2)
        {
            assert_eq!(ds.name(), name);
            assert_eq!(ds.full_size, n);
            assert_eq!(ds.spec.attributes.len(), p, "{name} attribute count");
            // Generate a sample large enough for stable statistics.
            let (data, group) = ds.generate_scaled(10_000.0 / n as f64, 7).unwrap();
            let s = summarize(&data, group);
            assert!(
                (s.protected_fraction - prot).abs() < 0.03,
                "{name} protected fraction {} vs {prot}",
                s.protected_fraction
            );
            assert!(
                (s.privileged_base_rate - r_priv).abs() < 0.04,
                "{name} priv rate {} vs {r_priv}",
                s.privileged_base_rate
            );
            assert!(
                (s.protected_base_rate - r_prot).abs() < 0.04,
                "{name} prot rate {} vs {r_prot}",
                s.protected_base_rate
            );
        }
    }

    #[test]
    fn scaled_generation_enforces_minimum() {
        let ds = german_credit();
        let (data, _) = ds.generate_scaled(0.0001, 0).unwrap();
        assert_eq!(data.num_rows(), 200);
    }

    #[test]
    fn sensitive_attribute_is_binary_coded_in_all_specs() {
        for ds in all_paper_datasets() {
            let sens = &ds.spec.attributes[ds.spec.sensitive_attr];
            assert!(
                (ds.spec.privileged_code as usize) < sens.values.len(),
                "{}: privileged code in domain",
                ds.name()
            );
        }
    }
}
