//! Dataset schema: attribute names, kinds and category/bin labels.
//!
//! FUME operates on *fully discretized* data: after preprocessing, every
//! attribute value is a small integer code (`u16`). For a categorical
//! attribute the code indexes its category names; for a binned numeric
//! attribute it indexes interval labels produced by a
//! [`Discretizer`](crate::discretize::Discretizer). The schema keeps the
//! human-readable side of this encoding so that predicates such as
//! `(Age = Middle-aged) ∧ (Housing = Rent)` can be rendered for a data
//! scientist.

use crate::error::{Result, TabularError};

/// How an attribute's codes should be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// An unordered categorical attribute (e.g. `Housing`).
    Categorical,
    /// An ordered attribute whose codes are bins of an underlying numeric
    /// value (e.g. `Age` discretized into `Young < Middle-aged < Senior`).
    /// Range literals (`<`, `≤`, `>`, `≥`) are meaningful only for these.
    Ordinal,
}

/// A single attribute: its name, kind and the labels of its coded values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    kind: AttrKind,
    /// `values[c]` is the display label of code `c`.
    values: Vec<String>,
}

impl Attribute {
    /// Creates a categorical attribute with the given category labels.
    pub fn categorical(name: impl Into<String>, values: Vec<String>) -> Self {
        Self { name: name.into(), kind: AttrKind::Categorical, values }
    }

    /// Creates an ordinal (binned numeric) attribute with the given bin labels,
    /// ordered from smallest to largest.
    pub fn ordinal(name: impl Into<String>, values: Vec<String>) -> Self {
        Self { name: name.into(), kind: AttrKind::Ordinal, values }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's kind.
    pub fn kind(&self) -> AttrKind {
        self.kind
    }

    /// Number of distinct codes in the attribute's domain.
    pub fn cardinality(&self) -> u16 {
        self.values.len() as u16
    }

    /// The display label for `code`, if within the domain.
    pub fn value_label(&self, code: u16) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// All value labels, indexed by code.
    pub fn value_labels(&self) -> &[String] {
        &self.values
    }

    /// Returns the code for a display label, if present.
    pub fn code_of(&self, label: &str) -> Option<u16> {
        self.values.iter().position(|v| v == label).map(|i| i as u16)
    }
}

/// The schema of a [`Dataset`](crate::dataset::Dataset): an ordered list of
/// attributes plus the name of the binary label column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    label_name: String,
    /// Display labels for the negative/positive outcome, e.g.
    /// `["bad credit", "good credit"]`.
    label_values: [String; 2],
}

impl Schema {
    /// Builds a schema, checking attribute-name uniqueness.
    pub fn new(
        attributes: Vec<Attribute>,
        label_name: impl Into<String>,
        label_values: [String; 2],
    ) -> Result<Self> {
        for i in 0..attributes.len() {
            for j in (i + 1)..attributes.len() {
                if attributes[i].name == attributes[j].name {
                    return Err(TabularError::DuplicateAttribute(attributes[i].name.clone()));
                }
            }
        }
        Ok(Self { attributes, label_name: label_name.into(), label_values })
    }

    /// Builds a schema with default `label`/`0`/`1` naming.
    pub fn with_default_label(attributes: Vec<Attribute>) -> Result<Self> {
        Self::new(attributes, "label", ["negative".into(), "positive".into()])
    }

    /// Number of attributes (the paper's `p`).
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// The attributes, in column order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute at `index`.
    pub fn attribute(&self, index: usize) -> Result<&Attribute> {
        self.attributes.get(index).ok_or(TabularError::AttributeIndexOutOfBounds {
            index,
            len: self.attributes.len(),
        })
    }

    /// Finds an attribute index by name.
    pub fn attribute_index(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| TabularError::UnknownAttribute(name.to_string()))
    }

    /// The label column's name.
    pub fn label_name(&self) -> &str {
        &self.label_name
    }

    /// Display labels of the negative (index 0) and positive (index 1) outcome.
    pub fn label_values(&self) -> &[String; 2] {
        &self.label_values
    }

    /// Sum of attribute cardinalities — the number of level-1 lattice nodes
    /// (`d × p` in the paper's notation, for `d` values per attribute).
    pub fn total_cardinality(&self) -> usize {
        self.attributes.iter().map(|a| a.cardinality() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_schema() -> Schema {
        Schema::with_default_label(vec![
            Attribute::categorical("housing", vec!["own".into(), "rent".into()]),
            Attribute::ordinal("age", vec!["young".into(), "mid".into(), "senior".into()]),
        ])
        .unwrap()
    }

    #[test]
    fn attribute_lookup_by_name_and_index() {
        let s = toy_schema();
        assert_eq!(s.attribute_index("age").unwrap(), 1);
        assert_eq!(s.attribute(0).unwrap().name(), "housing");
        assert!(matches!(
            s.attribute_index("nope"),
            Err(TabularError::UnknownAttribute(_))
        ));
        assert!(matches!(
            s.attribute(5),
            Err(TabularError::AttributeIndexOutOfBounds { index: 5, len: 2 })
        ));
    }

    #[test]
    fn cardinality_and_labels() {
        let s = toy_schema();
        let age = s.attribute(1).unwrap();
        assert_eq!(age.cardinality(), 3);
        assert_eq!(age.value_label(2), Some("senior"));
        assert_eq!(age.value_label(3), None);
        assert_eq!(age.code_of("mid"), Some(1));
        assert_eq!(age.code_of("nope"), None);
        assert_eq!(s.total_cardinality(), 5);
    }

    #[test]
    fn duplicate_attribute_names_rejected() {
        let err = Schema::with_default_label(vec![
            Attribute::categorical("a", vec!["x".into()]),
            Attribute::categorical("a", vec!["y".into()]),
        ])
        .unwrap_err();
        assert!(matches!(err, TabularError::DuplicateAttribute(_)));
    }

    #[test]
    fn attr_kinds_distinguished() {
        let s = toy_schema();
        assert_eq!(s.attribute(0).unwrap().kind(), AttrKind::Categorical);
        assert_eq!(s.attribute(1).unwrap().kind(), AttrKind::Ordinal);
    }
}
