//! The workspace's sanctioned scoped-worker module.
//!
//! All thread creation in FUME library code funnels through these
//! helpers (lint rule **F006** bans `std::thread::{spawn, scope}`
//! anywhere else). Centralising the fan-out shape buys three guarantees:
//!
//! * **Structured concurrency** — only scoped threads, so no detached
//!   worker outlives the data it borrows;
//! * **Determinism** — results are written into pre-allocated,
//!   order-preserving slots; the output never depends on which worker
//!   finishes first;
//! * **Panic containment** — a worker panic propagates out of the scope
//!   on join rather than poisoning shared state silently.
//!
//! The helpers chunk work contiguously (`ceil(len / jobs)` per worker):
//! with deterministic per-item seeds that also keeps any given item on a
//! stable worker for a fixed `(len, jobs)`.

/// The machine's available parallelism, with a serial fallback when the
/// runtime cannot tell (the query itself is not a determinism hazard —
/// callers must only use it to *size* worker pools, never to seed work).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Clamps a requested job count to the actual work items, defaulting to
/// [`available_parallelism`] when unset.
pub fn resolve_jobs(n_jobs: Option<usize>, work_items: usize) -> usize {
    n_jobs.unwrap_or_else(available_parallelism).clamp(1, work_items.max(1))
}

/// Maps `f` over `items` using at most `jobs` scoped threads, preserving
/// input order. `jobs <= 1` (or a single item) runs inline with no
/// thread machinery at all.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    jobs: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(jobs);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    collect_slots(out)
}

/// Maps `f` over `items` mutably using at most `jobs` scoped threads,
/// preserving input order.
pub fn parallel_map_mut<T: Send, R: Send>(
    items: &mut [T],
    jobs: usize,
    f: impl Fn(&mut T) -> R + Sync,
) -> Vec<R> {
    if jobs <= 1 || items.len() <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = items.len().div_ceil(jobs);
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks_mut(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    collect_slots(out)
}

/// Zips `items` with owned `args` and maps `f` over the pairs mutably
/// using at most `jobs` scoped threads, preserving order. Used by
/// journal rollback, where each tree consumes its own undo log by value.
pub fn parallel_zip_map<T: Send, A: Send, R: Send>(
    items: &mut [T],
    args: Vec<A>,
    jobs: usize,
    f: impl Fn(&mut T, A) -> R + Sync,
) -> Vec<R> {
    debug_assert_eq!(items.len(), args.len());
    if jobs <= 1 || items.len() <= 1 {
        return items.iter_mut().zip(args).map(|(t, a)| f(t, a)).collect();
    }
    let chunk = items.len().div_ceil(jobs);
    let mut args: Vec<Option<A>> = args.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((slot_chunk, item_chunk), arg_chunk) in
            out.chunks_mut(chunk).zip(items.chunks_mut(chunk)).zip(args.chunks_mut(chunk))
        {
            let f = &f;
            scope.spawn(move || {
                for ((slot, item), arg) in
                    slot_chunk.iter_mut().zip(item_chunk).zip(arg_chunk)
                {
                    if let Some(arg) = arg.take() {
                        *slot = Some(f(item, arg));
                    }
                }
            });
        }
    });
    collect_slots(out)
}

/// Runs `main` while `n` long-lived workers execute `worker(i)` on
/// scoped threads. Unlike [`parallel_map`] there is no work list: the
/// workers are event loops (queue consumers, socket acceptors) that
/// coordinate with `main` through whatever shared state the caller
/// closes over. The scope joins every worker before returning, so
/// `main` must arrange for the workers to observe shutdown (otherwise
/// the join blocks forever — that is the caller's contract, the same
/// structured-concurrency guarantee the mapping helpers give).
/// `n == 0` runs `main` inline with no threads.
pub fn scoped_workers<T: Send>(
    n: usize,
    worker: impl Fn(usize) + Sync,
    main: impl FnOnce() -> T + Send,
) -> T {
    if n == 0 {
        return main();
    }
    std::thread::scope(|scope| {
        for i in 0..n {
            let worker = &worker;
            scope.spawn(move || worker(i));
        }
        main()
    })
}

/// Unwraps the slot vector every helper fills. Chunking covers every
/// index exactly once, so an empty slot is unreachable; the expect is
/// the single audited join point for the whole worker module.
fn collect_slots<R>(out: Vec<Option<R>>) -> Vec<R> {
    out.into_iter()
        // fume-lint: allow(F001) -- slot-partition invariant: zip over chunks_mut covers every index exactly once, and a worker panic propagates from the scope before this line runs
        .map(|o| o.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let serial = parallel_map(&items, 1, |&x| x * 2);
        let parallel = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[10], 20);
    }

    #[test]
    fn parallel_map_mut_mutates_in_place() {
        let mut items: Vec<usize> = (0..50).collect();
        let out = parallel_map_mut(&mut items, 3, |x| {
            *x += 1;
            *x
        });
        assert_eq!(items[0], 1);
        assert_eq!(out, items);
    }

    #[test]
    fn parallel_zip_map_consumes_args_in_order() {
        let mut items: Vec<u32> = vec![0; 20];
        let args: Vec<u32> = (0..20).collect();
        let out = parallel_zip_map(&mut items, args, 4, |slot, a| {
            *slot = a * 10;
            *slot
        });
        assert_eq!(out, (0..20).map(|a| a * 10).collect::<Vec<u32>>());
    }

    #[test]
    fn degenerate_jobs_run_inline() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 0, |&x| x), vec![1, 2, 3]);
        assert_eq!(parallel_map(&[42], 8, |&x| x), vec![42]);
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn scoped_workers_join_before_return() {
        use fume_obs::sync::{Counter, TrackedCondvar, TrackedMutex};
        let done = Counter::new(0);
        let gate = (
            TrackedMutex::new("tabular.workers.test_gate", false),
            TrackedCondvar::new(),
        );
        let out = scoped_workers(
            3,
            |_i| {
                let (lock, cv) = &gate;
                let mut open = lock.lock();
                while !*open {
                    open = cv.wait(open);
                }
                done.add(1);
            },
            || {
                let (lock, cv) = &gate;
                *lock.lock() = true;
                cv.notify_all();
                42
            },
        );
        assert_eq!(out, 42);
        assert_eq!(done.get(), 3, "scope joins all workers");
    }

    #[test]
    fn scoped_workers_zero_runs_inline() {
        assert_eq!(scoped_workers(0, |_| unreachable!(), || 7), 7);
    }

    #[test]
    fn resolve_jobs_clamps() {
        assert_eq!(resolve_jobs(Some(8), 3), 3);
        assert_eq!(resolve_jobs(Some(0), 3), 1);
        assert_eq!(resolve_jobs(Some(2), 100), 2);
        assert!(resolve_jobs(None, 100) >= 1);
    }
}
