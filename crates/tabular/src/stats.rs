//! Dataset summary statistics (the paper's Table 2 quantities).

use crate::dataset::{Dataset, GroupSpec};

/// Per-group base-rate summary of a dataset, mirroring the columns of the
/// paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Number of rows.
    pub num_instances: usize,
    /// Number of attributes.
    pub num_features: usize,
    /// Name of the sensitive attribute.
    pub sensitive_attribute: String,
    /// Fraction of rows in the protected group (`|Protected| / |Dataset|`).
    pub protected_fraction: f64,
    /// P(Y=1 | privileged) on the data's labels.
    pub privileged_base_rate: f64,
    /// P(Y=1 | protected) on the data's labels.
    pub protected_base_rate: f64,
}

/// Computes counts `(n, n_pos)` over rows selected by `filter`.
fn rate_where(data: &Dataset, filter: impl Fn(usize) -> bool) -> (usize, usize) {
    let mut n = 0;
    let mut pos = 0;
    for row in 0..data.num_rows() {
        if filter(row) {
            n += 1;
            if data.label(row) {
                pos += 1;
            }
        }
    }
    (n, pos)
}

/// Base rate (positive-label fraction) of the privileged and protected
/// groups, as `(privileged, protected)`. Empty groups yield `0.0`.
pub fn group_base_rates(data: &Dataset, group: GroupSpec) -> (f64, f64) {
    let (n_priv, pos_priv) = rate_where(data, |r| data.is_privileged(r, group));
    let (n_prot, pos_prot) = rate_where(data, |r| !data.is_privileged(r, group));
    let div = |p: usize, n: usize| if n == 0 { 0.0 } else { p as f64 / n as f64 };
    (div(pos_priv, n_priv), div(pos_prot, n_prot))
}

/// Summarizes `data` for the sensitive attribute in `group`.
pub fn summarize(data: &Dataset, group: GroupSpec) -> DatasetSummary {
    let (priv_rate, prot_rate) = group_base_rates(data, group);
    let n_prot = (0..data.num_rows()).filter(|&r| !data.is_privileged(r, group)).count();
    DatasetSummary {
        num_instances: data.num_rows(),
        num_features: data.num_attributes(),
        sensitive_attribute: data
            .schema()
            .attribute(group.attr)
            .map(|a| a.name().to_string())
            .unwrap_or_default(),
        protected_fraction: if data.is_empty() {
            0.0
        } else {
            n_prot as f64 / data.num_rows() as f64
        },
        privileged_base_rate: priv_rate,
        protected_base_rate: prot_rate,
    }
}

/// Per-code value counts of an attribute column.
pub fn value_counts(data: &Dataset, attr: usize) -> Vec<usize> {
    let card = data
        .schema()
        .attribute(attr)
        .map(|a| a.cardinality() as usize)
        .unwrap_or(0);
    let mut counts = vec![0usize; card];
    for &c in data.column(attr) {
        counts[c as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use std::sync::Arc;

    fn toy() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "sex",
                vec!["female".into(), "male".into()],
            )])
            .unwrap(),
        );
        // males (priv): rows 0,1,2 labels T,T,F → 2/3; females: rows 3,4 labels F,F → 0
        Dataset::new(
            schema,
            vec![vec![1, 1, 1, 0, 0]],
            vec![true, true, false, false, false],
        )
        .unwrap()
    }

    #[test]
    fn group_base_rates_computed() {
        let d = toy();
        let (p, q) = group_base_rates(&d, GroupSpec::new(0, 1));
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q, 0.0);
    }

    #[test]
    fn summary_fields() {
        let d = toy();
        let s = summarize(&d, GroupSpec::new(0, 1));
        assert_eq!(s.num_instances, 5);
        assert_eq!(s.num_features, 1);
        assert_eq!(s.sensitive_attribute, "sex");
        assert!((s.protected_fraction - 0.4).abs() < 1e-12);
        assert!((s.privileged_base_rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.protected_base_rate, 0.0);
    }

    #[test]
    fn empty_group_rates_are_zero() {
        let d = toy();
        // Privileged code 0 with an all-male selection → protected empty.
        let males = d.select_rows(&[0, 1, 2]).unwrap();
        let (_p, q) = group_base_rates(&males, GroupSpec::new(0, 1));
        assert_eq!(q, 0.0);
    }

    #[test]
    fn value_counts_sum_to_rows() {
        let d = toy();
        let vc = value_counts(&d, 0);
        assert_eq!(vc, vec![2, 3]);
    }
}
