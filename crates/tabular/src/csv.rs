//! Minimal CSV reader/writer for coded datasets.
//!
//! Supports the common case needed by downstream users: a header row, a
//! designated label column with configurable positive value, automatic
//! type inference (numeric vs categorical), and quoting of fields that
//! contain separators. Numeric columns come back as
//! [`RawColumn::Numeric`] so they can be discretized; categorical columns
//! are coded in first-appearance order.

use std::fmt::Write as _;
use std::path::Path;

use crate::dataset::Dataset;
use crate::discretize::{RawAttribute, RawColumn, RawDataset};
use crate::error::{Result, TabularError};

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Name of the label column.
    pub label_column: String,
    /// Label values equal to this string (case-sensitive) become `true`.
    pub positive_label: String,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self { separator: ',', label_column: "label".into(), positive_label: "1".into() }
    }
}

/// Splits one CSV line honoring double-quote quoting (`"a,b"` is one field,
/// `""` inside quotes is an escaped quote).
fn split_line(line: &str, sep: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    field.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                field.push(c);
            }
        } else if c == '"' {
            in_quotes = true;
        } else if c == sep {
            fields.push(std::mem::take(&mut field));
        } else {
            field.push(c);
        }
    }
    fields.push(field);
    fields
}

/// Quotes a field if needed for writing.
fn quote_field(s: &str, sep: char) -> String {
    if s.contains(sep) || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parses CSV text into a [`RawDataset`].
pub fn parse_csv(text: &str, opts: &CsvOptions) -> Result<RawDataset> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines
        .next()
        .ok_or(TabularError::CsvParse { line: 1, message: "missing header".into() })?;
    let names = split_line(header, opts.separator);
    let label_idx = names.iter().position(|n| *n == opts.label_column).ok_or_else(|| {
        TabularError::CsvParse {
            line: 1,
            message: format!("label column `{}` not found in header", opts.label_column),
        }
    })?;

    let mut raw_fields: Vec<Vec<String>> = vec![Vec::new(); names.len()];
    for (lineno, line) in lines {
        let fields = split_line(line, opts.separator);
        if fields.len() != names.len() {
            return Err(TabularError::CsvParse {
                line: lineno + 1,
                message: format!("expected {} fields, found {}", names.len(), fields.len()),
            });
        }
        for (j, f) in fields.into_iter().enumerate() {
            raw_fields[j].push(f);
        }
    }

    let labels: Vec<bool> =
        raw_fields[label_idx].iter().map(|v| *v == opts.positive_label).collect();

    let mut attributes = Vec::new();
    for (j, name) in names.iter().enumerate() {
        if j == label_idx {
            continue;
        }
        let fields = &raw_fields[j];
        let numeric: Option<Vec<f64>> =
            fields.iter().map(|f| f.trim().parse::<f64>().ok()).collect();
        let column = match numeric {
            Some(values) => RawColumn::Numeric(values),
            None => {
                let mut labels_seen: Vec<String> = Vec::new();
                let mut codes = Vec::with_capacity(fields.len());
                for f in fields {
                    let code = match labels_seen.iter().position(|l| l == f) {
                        Some(i) => i as u16,
                        None => {
                            labels_seen.push(f.clone());
                            (labels_seen.len() - 1) as u16
                        }
                    };
                    codes.push(code);
                }
                RawColumn::Categorical { codes, labels: labels_seen }
            }
        };
        attributes.push(RawAttribute { name: name.clone(), column });
    }
    RawDataset::new(attributes, labels)
}

/// Reads a CSV file into a [`RawDataset`].
pub fn read_csv(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<RawDataset> {
    let text = std::fs::read_to_string(path)?;
    parse_csv(&text, opts)
}

/// Renders a coded [`Dataset`] as CSV text with human-readable value labels.
pub fn to_csv(data: &Dataset, opts: &CsvOptions) -> String {
    let sep = opts.separator;
    let schema = data.schema();
    let mut out = String::new();
    let header: Vec<String> = schema
        .attributes()
        .iter()
        .map(|a| quote_field(a.name(), sep))
        .chain(std::iter::once(quote_field(schema.label_name(), sep)))
        .collect();
    let _ = writeln!(out, "{}", header.join(&sep.to_string()));
    for row in 0..data.num_rows() {
        let mut fields: Vec<String> = (0..data.num_attributes())
            .map(|a| {
                // fume-lint: allow(F001) -- index provenance: `a` iterates 0..num_attributes() of the same schema, so the lookup cannot miss
                let attr = schema.attributes().get(a).expect("attr in range");
                quote_field(attr.value_label(data.code(row, a)).unwrap_or("?"), sep)
            })
            .collect();
        fields.push(quote_field(
            &schema.label_values()[usize::from(data.label(row))],
            sep,
        ));
        let _ = writeln!(out, "{}", fields.join(&sep.to_string()));
    }
    out
}

/// Writes a coded [`Dataset`] to a CSV file.
pub fn write_csv(data: &Dataset, path: impl AsRef<Path>, opts: &CsvOptions) -> Result<()> {
    std::fs::write(path, to_csv(data, opts))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::{discretize, Discretizer};

    const SAMPLE: &str = "age,housing,label\n25,rent,1\n60,own,0\n35,\"rent,shared\",1\n";

    #[test]
    fn parses_mixed_columns() {
        let raw = parse_csv(SAMPLE, &CsvOptions::default()).unwrap();
        assert_eq!(raw.num_rows(), 3);
        assert_eq!(raw.attributes().len(), 2);
        assert_eq!(raw.labels(), &[true, false, true]);
        match &raw.attributes()[0].column {
            RawColumn::Numeric(v) => assert_eq!(v, &[25.0, 60.0, 35.0]),
            _ => panic!("age should infer numeric"),
        }
        match &raw.attributes()[1].column {
            RawColumn::Categorical { codes, labels } => {
                assert_eq!(codes, &[0, 1, 2]);
                assert_eq!(labels[2], "rent,shared");
            }
            _ => panic!("housing should infer categorical"),
        }
    }

    #[test]
    fn quoted_fields_roundtrip() {
        assert_eq!(
            split_line("a,\"b,c\",\"d\"\"e\"", ','),
            vec!["a", "b,c", "d\"e"]
        );
        assert_eq!(quote_field("plain", ','), "plain");
        assert_eq!(quote_field("a,b", ','), "\"a,b\"");
        assert_eq!(quote_field("q\"q", ','), "\"q\"\"q\"");
    }

    #[test]
    fn missing_label_column_errors() {
        let opts = CsvOptions { label_column: "outcome".into(), ..Default::default() };
        let err = parse_csv(SAMPLE, &opts).unwrap_err();
        assert!(matches!(err, TabularError::CsvParse { line: 1, .. }));
    }

    #[test]
    fn ragged_row_errors_with_line_number() {
        let bad = "a,b,label\n1,2,1\n1,1\n";
        let err = parse_csv(bad, &CsvOptions::default()).unwrap_err();
        match err {
            TabularError::CsvParse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_input_errors() {
        assert!(parse_csv("", &CsvOptions::default()).is_err());
    }

    #[test]
    fn windows_line_endings_are_tolerated() {
        let crlf = "age,label\r\n25,1\r\n60,0\r\n";
        let raw = parse_csv(crlf, &CsvOptions::default()).unwrap();
        assert_eq!(raw.num_rows(), 2);
        match &raw.attributes()[0].column {
            RawColumn::Numeric(v) => assert_eq!(v, &[25.0, 60.0]),
            _ => panic!("age should still infer numeric despite \\r"),
        }
    }

    #[test]
    fn alternative_separator_and_positive_label() {
        let text = "age;ok\n25;yes\n60;no\n";
        let opts = CsvOptions {
            separator: ';',
            label_column: "ok".into(),
            positive_label: "yes".into(),
        };
        let raw = parse_csv(text, &opts).unwrap();
        assert_eq!(raw.labels(), &[true, false]);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "a,label\n1,1\n\n2,0\n   \n";
        let raw = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(raw.num_rows(), 2);
    }

    #[test]
    fn dataset_to_csv_and_back() {
        let raw = parse_csv(SAMPLE, &CsvOptions::default()).unwrap();
        let data = discretize(&raw, Discretizer::EqualWidth(2)).unwrap();
        let text = to_csv(&data, &CsvOptions::default());
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "age,housing,label");
        // age 25 → first bin "< 42.5"; positive label renders as "positive"
        let first = lines.next().unwrap();
        assert!(first.contains("rent") && first.ends_with("positive"), "{first}");
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("fume_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        std::fs::write(&path, SAMPLE).unwrap();
        let raw = read_csv(&path, &CsvOptions::default()).unwrap();
        assert_eq!(raw.num_rows(), 3);
        let data = discretize(&raw, Discretizer::EqualWidth(2)).unwrap();
        let out = dir.join("out.csv");
        write_csv(&data, &out, &CsvOptions::default()).unwrap();
        assert!(std::fs::read_to_string(&out).unwrap().starts_with("age,housing,label"));
    }
}
