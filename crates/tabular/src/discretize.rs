//! Raw (pre-discretization) data and binning strategies.
//!
//! The paper preprocesses every dataset so that "the numerical columns in
//! each dataset have been discretized to explore subsets". This module
//! provides that preprocessing step: a [`RawDataset`] mixes numeric and
//! categorical columns, and a [`Discretizer`] turns it into a fully coded
//! [`Dataset`] whose schema carries human-readable bin labels such as
//! `[18.0, 34.5)`.

use std::sync::Arc;

use crate::dataset::Dataset;
use crate::error::{Result, TabularError};
use crate::schema::{Attribute, Schema};

/// A raw column: either numeric values or already-coded categories.
#[derive(Debug, Clone, PartialEq)]
pub enum RawColumn {
    /// Continuous or integer-valued data to be binned.
    Numeric(Vec<f64>),
    /// Categorical codes plus their display labels.
    Categorical {
        /// Per-row category codes.
        codes: Vec<u16>,
        /// `labels[c]` names code `c`.
        labels: Vec<String>,
    },
}

impl RawColumn {
    fn len(&self) -> usize {
        match self {
            Self::Numeric(v) => v.len(),
            Self::Categorical { codes, .. } => codes.len(),
        }
    }
}

/// A named raw column.
#[derive(Debug, Clone, PartialEq)]
pub struct RawAttribute {
    /// Column name.
    pub name: String,
    /// Column contents.
    pub column: RawColumn,
}

/// A dataset before discretization: numeric and categorical columns plus
/// binary labels.
#[derive(Debug, Clone, PartialEq)]
pub struct RawDataset {
    attributes: Vec<RawAttribute>,
    labels: Vec<bool>,
}

impl RawDataset {
    /// Builds a raw dataset, validating column lengths and name uniqueness.
    pub fn new(attributes: Vec<RawAttribute>, labels: Vec<bool>) -> Result<Self> {
        let n = labels.len();
        for a in &attributes {
            if a.column.len() != n {
                return Err(TabularError::ColumnLengthMismatch {
                    column: a.name.clone(),
                    got: a.column.len(),
                    expected: n,
                });
            }
        }
        for i in 0..attributes.len() {
            for j in (i + 1)..attributes.len() {
                if attributes[i].name == attributes[j].name {
                    return Err(TabularError::DuplicateAttribute(attributes[i].name.clone()));
                }
            }
        }
        Ok(Self { attributes, labels })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.labels.len()
    }

    /// The raw attributes.
    pub fn attributes(&self) -> &[RawAttribute] {
        &self.attributes
    }

    /// The labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }
}

/// A numeric binning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discretizer {
    /// `k` equal-width bins spanning `[min, max]`.
    EqualWidth(usize),
    /// `k` (approximately) equal-frequency bins using sample quantiles.
    /// Duplicate cut points (heavy ties) are merged, so the realized number
    /// of bins may be smaller than `k`.
    Quantile(usize),
}

impl Discretizer {
    /// Computes the interior cut points for `values`. A value `v` falls in
    /// bin `i` where `i` = number of cuts `<= v`.
    pub fn cut_points(&self, values: &[f64]) -> Result<Vec<f64>> {
        let k = match self {
            Self::EqualWidth(k) | Self::Quantile(k) => *k,
        };
        if k < 2 {
            return Err(TabularError::InvalidBinCount(k));
        }
        if values.is_empty() {
            return Err(TabularError::EmptyDataset);
        }
        let mut cuts = match self {
            Self::EqualWidth(_) => {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in values {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi <= lo {
                    // Constant column: a single bin, no cuts.
                    return Ok(Vec::new());
                }
                let w = (hi - lo) / k as f64;
                (1..k).map(|i| lo + w * i as f64).collect::<Vec<_>>()
            }
            Self::Quantile(_) => {
                let mut sorted = values.to_vec();
                sorted.sort_by(f64::total_cmp);
                let n = sorted.len();
                (1..k)
                    .map(|i| {
                        // Nearest-rank quantile.
                        let rank = (i * n) / k;
                        sorted[rank.min(n - 1)]
                    })
                    .collect::<Vec<_>>()
            }
        };
        cuts.dedup_by(|a, b| a == b);
        Ok(cuts)
    }

    /// Assigns each value to its bin given `cuts` from [`Self::cut_points`].
    pub fn assign(values: &[f64], cuts: &[f64]) -> Vec<u16> {
        values
            .iter()
            .map(|&v| cuts.iter().take_while(|&&c| c <= v).count() as u16)
            .collect()
    }

    /// Renders the display label of bin `i` out of `cuts.len() + 1` bins.
    pub fn bin_label(cuts: &[f64], i: usize) -> String {
        let fmt = |x: f64| {
            if (x - x.round()).abs() < 1e-9 {
                format!("{}", x.round() as i64)
            } else {
                format!("{x:.2}")
            }
        };
        match (i == 0, i == cuts.len()) {
            (true, true) => "all".to_string(),
            (true, false) => format!("< {}", fmt(cuts[0])),
            (false, true) => format!(">= {}", fmt(cuts[cuts.len() - 1])),
            (false, false) => format!("[{}, {})", fmt(cuts[i - 1]), fmt(cuts[i])),
        }
    }
}

/// Discretizes a [`RawDataset`] into a coded [`Dataset`]: numeric columns are
/// binned with `disc` and become [ordinal](crate::schema::AttrKind::Ordinal)
/// attributes; categorical columns pass through.
pub fn discretize(raw: &RawDataset, disc: Discretizer) -> Result<Dataset> {
    let mut attrs = Vec::with_capacity(raw.attributes().len());
    let mut columns = Vec::with_capacity(raw.attributes().len());
    for a in raw.attributes() {
        match &a.column {
            RawColumn::Categorical { codes, labels } => {
                attrs.push(Attribute::categorical(a.name.clone(), labels.clone()));
                columns.push(codes.clone());
            }
            RawColumn::Numeric(values) => {
                let cuts = disc.cut_points(values)?;
                let labels: Vec<String> =
                    (0..=cuts.len()).map(|i| Discretizer::bin_label(&cuts, i)).collect();
                attrs.push(Attribute::ordinal(a.name.clone(), labels));
                columns.push(Discretizer::assign(values, &cuts));
            }
        }
    }
    let schema = Arc::new(Schema::with_default_label(attrs)?);
    Dataset::new(schema, columns, raw.labels().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_cuts() {
        let d = Discretizer::EqualWidth(4);
        let cuts = d.cut_points(&[0.0, 1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(cuts, vec![1.0, 2.0, 3.0]);
        assert_eq!(Discretizer::assign(&[0.0, 1.0, 2.5, 4.0], &cuts), vec![0, 1, 2, 3]);
    }

    #[test]
    fn quantile_cuts_balance_mass() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = Discretizer::Quantile(4);
        let cuts = d.cut_points(&vals).unwrap();
        let codes = Discretizer::assign(&vals, &cuts);
        for bin in 0..4u16 {
            let c = codes.iter().filter(|&&b| b == bin).count();
            assert!((20..=30).contains(&c), "bin {bin} has {c}");
        }
    }

    #[test]
    fn quantile_merges_tied_cuts() {
        // 90% of mass at value 5 → several quantiles coincide.
        let mut vals = vec![5.0; 90];
        vals.extend((0..10).map(|i| i as f64));
        let cuts = Discretizer::Quantile(4).cut_points(&vals).unwrap();
        let mut sorted = cuts.clone();
        sorted.dedup();
        assert_eq!(cuts, sorted, "cuts must be deduplicated");
    }

    #[test]
    fn constant_column_single_bin() {
        let cuts = Discretizer::EqualWidth(5).cut_points(&[7.0, 7.0, 7.0]).unwrap();
        assert!(cuts.is_empty());
        assert_eq!(Discretizer::assign(&[7.0, 7.0], &cuts), vec![0, 0]);
        assert_eq!(Discretizer::bin_label(&cuts, 0), "all");
    }

    #[test]
    fn invalid_bin_count_rejected() {
        assert!(matches!(
            Discretizer::EqualWidth(1).cut_points(&[1.0]),
            Err(TabularError::InvalidBinCount(1))
        ));
        assert!(matches!(
            Discretizer::Quantile(3).cut_points(&[]),
            Err(TabularError::EmptyDataset)
        ));
    }

    #[test]
    fn bin_labels_render_ranges() {
        let cuts = vec![10.0, 20.0];
        assert_eq!(Discretizer::bin_label(&cuts, 0), "< 10");
        assert_eq!(Discretizer::bin_label(&cuts, 1), "[10, 20)");
        assert_eq!(Discretizer::bin_label(&cuts, 2), ">= 20");
    }

    #[test]
    fn discretize_mixed_dataset() {
        let raw = RawDataset::new(
            vec![
                RawAttribute {
                    name: "age".into(),
                    column: RawColumn::Numeric(vec![18.0, 30.0, 45.0, 70.0]),
                },
                RawAttribute {
                    name: "housing".into(),
                    column: RawColumn::Categorical {
                        codes: vec![0, 1, 0, 1],
                        labels: vec!["own".into(), "rent".into()],
                    },
                },
            ],
            vec![true, false, true, false],
        )
        .unwrap();
        let d = discretize(&raw, Discretizer::EqualWidth(2)).unwrap();
        assert_eq!(d.num_rows(), 4);
        assert_eq!(d.num_attributes(), 2);
        // age split at 44: rows 0,1 left, rows 2,3 right
        assert_eq!(d.column(0), &[0, 0, 1, 1]);
        assert_eq!(d.column(1), &[0, 1, 0, 1]);
        assert_eq!(d.schema().attribute(0).unwrap().cardinality(), 2);
    }

    #[test]
    fn raw_dataset_validation() {
        let err = RawDataset::new(
            vec![RawAttribute { name: "x".into(), column: RawColumn::Numeric(vec![1.0]) }],
            vec![true, false],
        )
        .unwrap_err();
        assert!(matches!(err, TabularError::ColumnLengthMismatch { .. }));

        let err = RawDataset::new(
            vec![
                RawAttribute { name: "x".into(), column: RawColumn::Numeric(vec![1.0]) },
                RawAttribute { name: "x".into(), column: RawColumn::Numeric(vec![2.0]) },
            ],
            vec![true],
        )
        .unwrap_err();
        assert!(matches!(err, TabularError::DuplicateAttribute(_)));
    }
}
