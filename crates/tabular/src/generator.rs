//! Configurable synthetic data generator with controllable group bias.
//!
//! The paper evaluates FUME on five real datasets (German Credit, Adult,
//! SQF, ACS Income, MEPS). Those raw files are not redistributable /
//! available offline, so this crate *simulates* them: each dataset is
//! described by a [`GeneratorSpec`] that fixes its published schema,
//! size, protected-group fraction and per-group base rates (the paper's
//! Table 2), and plants label bias inside coherent predicate cohorts so
//! that attributable subsets exist by construction. The generator controls
//! exactly the quantities FUME consumes, so every experiment exercises the
//! same code paths as the paper's pipeline.
//!
//! ## Generative model
//!
//! For each row:
//! 1. the sensitive attribute is drawn privileged with probability
//!    `1 − protected_fraction`;
//! 2. every other attribute code is drawn from its categorical
//!    distribution (optionally a different one for protected rows, to
//!    induce correlations with the sensitive attribute, e.g. sex ↔ race
//!    in SQF);
//! 3. a logit accumulates per-code label weights plus any matching
//!    [`PlantedBias`] deltas;
//! 4. a per-group intercept — calibrated by bisection so each group hits
//!    its target base rate — shifts the logit, and the label is sampled
//!    from the resulting Bernoulli.

use std::sync::Arc;

use crate::rng::{Rng, SeedableRng, StdRng};

use crate::dataset::{Dataset, GroupSpec};
use crate::error::Result;
use crate::schema::{AttrKind, Attribute, Schema};

/// One attribute of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct AttributeSpec {
    /// Attribute name.
    pub name: String,
    /// Display labels of the codes.
    pub values: Vec<String>,
    /// Ordinal (binned numeric) or categorical.
    pub kind: AttrKind,
    /// Unnormalized sampling weights per code.
    pub distribution: Vec<f64>,
    /// Optional distinct sampling weights for protected rows.
    pub protected_distribution: Option<Vec<f64>>,
    /// Additive logit contribution of each code toward the positive label.
    pub label_weights: Vec<f64>,
}

impl AttributeSpec {
    /// A uniform categorical attribute with no label effect.
    pub fn uniform(name: impl Into<String>, values: Vec<String>) -> Self {
        let k = values.len();
        Self {
            name: name.into(),
            values,
            kind: AttrKind::Categorical,
            distribution: vec![1.0; k],
            protected_distribution: None,
            label_weights: vec![0.0; k],
        }
    }

    /// A binary yes/no flag: `P(yes) = p_yes`, with logit weight `w_yes`
    /// when the flag is set (code 1 = "Yes").
    pub fn flag(name: impl Into<String>, p_yes: f64, w_yes: f64) -> Self {
        Self {
            name: name.into(),
            values: vec!["No".into(), "Yes".into()],
            kind: AttrKind::Categorical,
            distribution: vec![1.0 - p_yes, p_yes],
            protected_distribution: None,
            label_weights: vec![0.0, w_yes],
        }
    }

    /// Sets explicit sampling weights.
    pub fn with_distribution(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.values.len());
        self.distribution = weights;
        self
    }

    /// Sets distinct sampling weights for protected rows.
    pub fn with_protected_distribution(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.values.len());
        self.protected_distribution = Some(weights);
        self
    }

    /// Sets per-code label (logit) weights.
    pub fn with_label_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.values.len());
        self.label_weights = weights;
        self
    }

    /// Marks the attribute ordinal.
    pub fn ordinal(mut self) -> Self {
        self.kind = AttrKind::Ordinal;
        self
    }
}

/// Which rows of a cohort a [`PlantedBias`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BiasTarget {
    /// Every matching row.
    All,
    /// Only matching rows in the protected group.
    Protected,
    /// Only matching rows in the privileged group.
    Privileged,
}

/// Label bias planted in a coherent cohort: every row matching all
/// `(attribute, code)` literals (and the [`BiasTarget`] group filter)
/// receives `logit_delta` on its label logit. Negative deltas on protected
/// cohorts — or positive deltas on privileged ones — create exactly the
/// kind of subset-concentrated discrimination FUME is designed to surface.
#[derive(Debug, Clone)]
pub struct PlantedBias {
    /// Conjunction of `(attribute index, code)` literals defining the cohort.
    pub literals: Vec<(usize, u16)>,
    /// Which group within the cohort is affected.
    pub target: BiasTarget,
    /// Additive logit shift for matching rows.
    pub logit_delta: f64,
}

impl GeneratorSpec {
    /// Multiplies every attribute's label weights and every planted bias
    /// delta by `factor`. Larger factors make the label less noisy (the
    /// Bayes-optimal accuracy rises) and let a downstream model's
    /// predicted probabilities spread across the 0.5 decision threshold —
    /// which is what turns label-level group gaps into *prediction*-level
    /// disparity.
    pub fn with_weight_scale(mut self, factor: f64) -> Self {
        for a in &mut self.attributes {
            for w in &mut a.label_weights {
                *w *= factor;
            }
        }
        for b in &mut self.planted {
            b.logit_delta *= factor;
        }
        self
    }
}

impl PlantedBias {
    /// Depresses the positive-label odds of protected rows in the cohort.
    pub fn against_protected(literals: Vec<(usize, u16)>, strength: f64) -> Self {
        Self { literals, target: BiasTarget::Protected, logit_delta: -strength.abs() }
    }

    /// Boosts the positive-label odds of privileged rows in the cohort.
    pub fn favoring_privileged(literals: Vec<(usize, u16)>, strength: f64) -> Self {
        Self { literals, target: BiasTarget::Privileged, logit_delta: strength.abs() }
    }
}

/// Complete description of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct GeneratorSpec {
    /// Dataset name (for reports).
    pub name: String,
    /// All attributes, including the sensitive one.
    pub attributes: Vec<AttributeSpec>,
    /// Index of the sensitive attribute.
    pub sensitive_attr: usize,
    /// Code of the privileged group within the sensitive attribute.
    pub privileged_code: u16,
    /// Target fraction of protected rows.
    pub protected_fraction: f64,
    /// Target P(Y=1 | privileged).
    pub base_rate_privileged: f64,
    /// Target P(Y=1 | protected).
    pub base_rate_protected: f64,
    /// Cohort-level label bias injections.
    pub planted: Vec<PlantedBias>,
    /// Display labels for the negative/positive outcome.
    pub label_values: [String; 2],
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Draws a code from unnormalized `weights`.
fn sample_code(weights: &[f64], rng: &mut StdRng) -> u16 {
    let total: f64 = weights.iter().sum();
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i as u16;
        }
    }
    (weights.len() - 1) as u16
}

/// Finds intercept `b` such that `mean(sigmoid(logit + b)) ≈ target`,
/// by bisection (the mean is strictly increasing in `b`).
fn calibrate_intercept(logits: &[f64], target: f64) -> f64 {
    if logits.is_empty() {
        return 0.0;
    }
    let mean = |b: f64| logits.iter().map(|&l| sigmoid(l + b)).sum::<f64>() / logits.len() as f64;
    let (mut lo, mut hi) = (-30.0, 30.0);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mean(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Generates `n` rows from `spec` with deterministic randomness from `seed`.
/// Returns the coded dataset plus the matching [`GroupSpec`].
pub fn generate(spec: &GeneratorSpec, n: usize, seed: u64) -> Result<(Dataset, GroupSpec)> {
    // fume-lint: allow(F003) -- seed provenance: the caller passes an explicit seed, so sampling is reproducible per (spec, n, seed)
    let mut rng = StdRng::seed_from_u64(seed);
    let p = spec.attributes.len();
    let group = GroupSpec::new(spec.sensitive_attr, spec.privileged_code);

    // --- sample the sensitive column ---
    let sens_spec = &spec.attributes[spec.sensitive_attr];
    let mut protected_weights = sens_spec.distribution.clone();
    protected_weights[spec.privileged_code as usize] = 0.0;
    let mut columns: Vec<Vec<u16>> = vec![Vec::with_capacity(n); p];
    let mut is_protected = Vec::with_capacity(n);
    for _ in 0..n {
        let prot = rng.gen::<f64>() < spec.protected_fraction;
        let code = if prot {
            sample_code(&protected_weights, &mut rng)
        } else {
            spec.privileged_code
        };
        is_protected.push(prot);
        columns[spec.sensitive_attr].push(code);
    }

    // --- sample the remaining columns ---
    for (j, a) in spec.attributes.iter().enumerate() {
        if j == spec.sensitive_attr {
            continue;
        }
        for &prot in is_protected.iter().take(n) {
            let weights = match (&a.protected_distribution, prot) {
                (Some(w), true) => w.as_slice(),
                _ => a.distribution.as_slice(),
            };
            columns[j].push(sample_code(weights, &mut rng));
        }
    }

    // --- accumulate logits ---
    let mut logits = vec![0.0f64; n];
    for (j, a) in spec.attributes.iter().enumerate() {
        for row in 0..n {
            logits[row] += a.label_weights[columns[j][row] as usize];
        }
    }
    for bias in &spec.planted {
        'rows: for row in 0..n {
            match bias.target {
                BiasTarget::All => {}
                BiasTarget::Protected if !is_protected[row] => continue,
                BiasTarget::Privileged if is_protected[row] => continue,
                _ => {}
            }
            for &(attr, code) in &bias.literals {
                if columns[attr][row] != code {
                    continue 'rows;
                }
            }
            logits[row] += bias.logit_delta;
        }
    }

    // --- calibrate per-group intercepts and sample labels ---
    let prot_logits: Vec<f64> =
        (0..n).filter(|&r| is_protected[r]).map(|r| logits[r]).collect();
    let priv_logits: Vec<f64> =
        (0..n).filter(|&r| !is_protected[r]).map(|r| logits[r]).collect();
    let b_prot = calibrate_intercept(&prot_logits, spec.base_rate_protected);
    let b_priv = calibrate_intercept(&priv_logits, spec.base_rate_privileged);
    let labels: Vec<bool> = (0..n)
        .map(|row| {
            let b = if is_protected[row] { b_prot } else { b_priv };
            rng.gen::<f64>() < sigmoid(logits[row] + b)
        })
        .collect();

    let attrs: Vec<Attribute> = spec
        .attributes
        .iter()
        .map(|a| match a.kind {
            AttrKind::Categorical => Attribute::categorical(a.name.clone(), a.values.clone()),
            AttrKind::Ordinal => Attribute::ordinal(a.name.clone(), a.values.clone()),
        })
        .collect();
    let schema = Arc::new(Schema::new(
        attrs,
        "label",
        spec.label_values.clone(),
    )?);
    Ok((Dataset::new(schema, columns, labels)?, group))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{group_base_rates, summarize};

    fn toy_spec() -> GeneratorSpec {
        GeneratorSpec {
            name: "toy".into(),
            attributes: vec![
                AttributeSpec::uniform("sex", vec!["female".into(), "male".into()]),
                AttributeSpec::flag("employed", 0.6, 1.5),
                AttributeSpec::uniform(
                    "region",
                    vec!["north".into(), "south".into(), "east".into()],
                ),
            ],
            sensitive_attr: 0,
            privileged_code: 1,
            protected_fraction: 0.4,
            base_rate_privileged: 0.7,
            base_rate_protected: 0.5,
            planted: vec![],
            label_values: ["denied".into(), "approved".into()],
        }
    }

    #[test]
    fn hits_protected_fraction_and_base_rates() {
        let (data, group) = generate(&toy_spec(), 20_000, 1).unwrap();
        let s = summarize(&data, group);
        assert!((s.protected_fraction - 0.4).abs() < 0.02, "{}", s.protected_fraction);
        assert!((s.privileged_base_rate - 0.7).abs() < 0.02, "{}", s.privileged_base_rate);
        assert!((s.protected_base_rate - 0.5).abs() < 0.02, "{}", s.protected_base_rate);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = toy_spec();
        let (a, _) = generate(&spec, 500, 9).unwrap();
        let (b, _) = generate(&spec, 500, 9).unwrap();
        assert_eq!(a, b);
        let (c, _) = generate(&spec, 500, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn planted_bias_depresses_cohort_base_rate() {
        let mut spec = toy_spec();
        // Protected rows in region=south get a strong negative label shift.
        spec.planted.push(PlantedBias::against_protected(vec![(2, 1)], 3.0));
        let (data, group) = generate(&spec, 20_000, 2).unwrap();
        // Within region=south, the protected base rate should be visibly
        // below the global protected target.
        let south: Vec<u32> = (0..data.num_rows() as u32)
            .filter(|&r| data.code(r as usize, 2) == 1)
            .collect();
        let south_data = data.select_rows(&south).unwrap();
        let (_, prot_rate) = group_base_rates(&south_data, group);
        assert!(prot_rate < 0.40, "cohort rate {prot_rate} should be depressed");
        // Outside the cohort the protected rate stays near/above target
        // (calibration balances the cohort's depression).
        let north: Vec<u32> = (0..data.num_rows() as u32)
            .filter(|&r| data.code(r as usize, 2) != 1)
            .collect();
        let (_, prot_out) =
            group_base_rates(&data.select_rows(&north).unwrap(), group);
        assert!(prot_out > prot_rate + 0.1);
    }

    #[test]
    fn label_weights_make_features_predictive() {
        let (data, _) = generate(&toy_spec(), 20_000, 3).unwrap();
        // employed=Yes rows should be positive more often than employed=No.
        let rate = |code: u16| {
            let ids: Vec<u32> = (0..data.num_rows() as u32)
                .filter(|&r| data.code(r as usize, 1) == code)
                .collect();
            data.select_rows(&ids).unwrap().base_rate()
        };
        assert!(rate(1) > rate(0) + 0.15, "{} vs {}", rate(1), rate(0));
    }

    #[test]
    fn privileged_favoring_bias_widens_the_cohort_gap() {
        let mut spec = toy_spec();
        spec.planted.push(PlantedBias::favoring_privileged(vec![(2, 0)], 2.5));
        let (data, group) = generate(&spec, 20_000, 8).unwrap();
        let north: Vec<u32> = (0..data.num_rows() as u32)
            .filter(|&r| data.code(r as usize, 2) == 0)
            .collect();
        let (priv_in, prot_in) =
            crate::stats::group_base_rates(&data.select_rows(&north).unwrap(), group);
        assert!(
            priv_in - prot_in > 0.25,
            "cohort gap {priv_in} - {prot_in} should be inflated"
        );
    }

    #[test]
    fn all_target_bias_shifts_both_groups() {
        let mut spec = toy_spec();
        spec.planted.push(PlantedBias {
            literals: vec![(2, 2)],
            target: BiasTarget::All,
            logit_delta: -4.0,
        });
        let (data, group) = generate(&spec, 20_000, 9).unwrap();
        let east: Vec<u32> = (0..data.num_rows() as u32)
            .filter(|&r| data.code(r as usize, 2) == 2)
            .collect();
        let cohort = data.select_rows(&east).unwrap();
        let (priv_in, prot_in) = crate::stats::group_base_rates(&cohort, group);
        // Both groups are depressed within the cohort, roughly equally.
        assert!(priv_in < 0.55 && prot_in < 0.45, "{priv_in} {prot_in}");
        assert!((priv_in - prot_in).abs() < 0.2);
    }

    #[test]
    fn weight_scale_amplifies_label_signal() {
        let spec = toy_spec();
        let scaled = toy_spec().with_weight_scale(3.0);
        let rate_gap = |sp: &GeneratorSpec, seed: u64| {
            let (data, _) = generate(sp, 20_000, seed).unwrap();
            let rate = |code: u16| {
                let ids: Vec<u32> = (0..data.num_rows() as u32)
                    .filter(|&r| data.code(r as usize, 1) == code)
                    .collect();
                data.select_rows(&ids).unwrap().base_rate()
            };
            rate(1) - rate(0)
        };
        let plain = rate_gap(&spec, 10);
        let sharp = rate_gap(&scaled, 10);
        assert!(sharp > plain + 0.05, "scaled gap {sharp} vs plain {plain}");
    }

    #[test]
    fn calibration_handles_extreme_targets() {
        let b = calibrate_intercept(&[0.0, 0.0], 0.999);
        assert!(sigmoid(b) > 0.99);
        let b = calibrate_intercept(&[0.0, 0.0], 0.001);
        assert!(sigmoid(b) < 0.01);
        assert_eq!(calibrate_intercept(&[], 0.5), 0.0);
    }

    #[test]
    fn sample_code_respects_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_code(&[1.0, 0.0, 3.0], &mut rng) as usize] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "{ratio}");
    }
}
