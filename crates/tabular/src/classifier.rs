//! The minimal classifier abstraction shared by the whole workspace.
//!
//! The fairness crate computes metrics over predictions, and FUME's core
//! algorithm treats the model behind a removal method as a black box; both
//! need only this trait. `fume-forest` implements it for DaRE forests.

use crate::dataset::Dataset;

/// A binary classifier over coded datasets.
pub trait Classifier {
    /// Predicted probability of the positive class for each row of `data`.
    fn predict_proba(&self, data: &Dataset) -> Vec<f64>;

    /// Hard predictions, thresholded through the shared
    /// [`float::positive_class`](crate::float::positive_class) decision
    /// (strictly above 0.5; exact ties are negative), so every consumer
    /// of hard predictions — full passes and incremental per-row
    /// re-prediction alike — agrees on tied probabilities.
    fn predict(&self, data: &Dataset) -> Vec<bool> {
        self.predict_proba(data)
            .into_iter()
            .map(crate::float::positive_class)
            .collect()
    }

    /// Fraction of rows whose hard prediction matches the label.
    fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let preds = self.predict(data);
        let correct = preds
            .iter()
            .zip(data.labels())
            .filter(|(p, y)| *p == *y)
            .count();
        correct as f64 / data.num_rows() as f64
    }
}

/// A trivial classifier that always answers a constant probability.
/// Useful as a baseline and in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantClassifier {
    /// The probability returned for every row.
    pub proba: f64,
}

impl Classifier for ConstantClassifier {
    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        vec![self.proba; data.num_rows()]
    }
}

/// A classifier that predicts the majority label of its training data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MajorityClassifier {
    /// The positive-class rate observed at fit time.
    pub positive_rate: f64,
}

impl MajorityClassifier {
    /// Fits the majority baseline to `data`.
    pub fn fit(data: &Dataset) -> Self {
        Self { positive_rate: data.base_rate() }
    }
}

impl Classifier for MajorityClassifier {
    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        vec![self.positive_rate; data.num_rows()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use std::sync::Arc;

    fn toy() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "x",
                vec!["a".into(), "b".into()],
            )])
            .unwrap(),
        );
        Dataset::new(schema, vec![vec![0, 1, 0, 1]], vec![true, true, true, false]).unwrap()
    }

    #[test]
    fn constant_classifier_thresholds() {
        let d = toy();
        let c = ConstantClassifier { proba: 0.9 };
        assert_eq!(c.predict(&d), vec![true; 4]);
        assert!((c.accuracy(&d) - 0.75).abs() < 1e-12);
        let c = ConstantClassifier { proba: 0.1 };
        assert!((c.accuracy(&d) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tied_probability_predicts_negative() {
        // A per-tree vote average can land exactly on the threshold (e.g.
        // an empty leaf's 0.5, or half the trees voting 1.0); the shared
        // decision must put the tie on the negative side everywhere.
        let d = toy();
        let c = ConstantClassifier { proba: 0.5 };
        assert_eq!(c.predict(&d), vec![false; 4], "exact ties are negative");
        assert_eq!(c.accuracy(&d), 0.25, "only the one negative label matches");
    }

    #[test]
    fn majority_classifier_fits_base_rate() {
        let d = toy();
        let m = MajorityClassifier::fit(&d);
        assert!((m.positive_rate - 0.75).abs() < 1e-12);
        assert_eq!(m.predict(&d), vec![true; 4]);
    }

    #[test]
    fn accuracy_of_empty_dataset_is_zero() {
        let d = toy().select_rows(&[]).unwrap();
        assert_eq!(ConstantClassifier { proba: 0.7 }.accuracy(&d), 0.0);
    }
}
