//! Intersectional sensitive groups.
//!
//! Group fairness in the paper is binary (privileged vs protected on one
//! attribute). Real audits often need *intersections* — e.g. race × sex
//! (Buolamwini & Gebru's "Gender Shades" finding). Rather than widening
//! `GroupSpec` everywhere, this module derives a new categorical
//! attribute whose codes enumerate the cross-product of existing ones;
//! any code of the derived attribute can then serve as the privileged
//! group in a standard [`GroupSpec`](crate::dataset::GroupSpec).

use std::sync::Arc;

use crate::dataset::Dataset;
use crate::error::{Result, TabularError};
use crate::schema::{Attribute, Schema};

/// Appends a derived attribute named `name` crossing the given attributes
/// (in order). The new attribute's labels join the constituent value
/// labels with " & " (e.g. `Black & Female`), and its code enumerates the
/// cross-product row-major. Returns the extended dataset plus the index
/// of the new attribute.
pub fn derive_intersection(
    data: &Dataset,
    attrs: &[usize],
    name: &str,
) -> Result<(Dataset, usize)> {
    if attrs.is_empty() {
        return Err(TabularError::UnknownAttribute("<empty intersection>".into()));
    }
    let schema = data.schema();
    let mut cards = Vec::with_capacity(attrs.len());
    for &a in attrs {
        cards.push(schema.attribute(a)?.cardinality() as usize);
    }
    let total: usize = cards.iter().product();
    if total > u16::MAX as usize {
        return Err(TabularError::InvalidBinCount(total));
    }

    // Cross-product labels, row-major in the order of `attrs`.
    let mut labels = vec![String::new()];
    for &a in attrs {
        let attr = schema.attribute(a)?;
        let mut next = Vec::with_capacity(labels.len() * attr.cardinality() as usize);
        for prefix in &labels {
            for v in attr.value_labels() {
                next.push(if prefix.is_empty() {
                    v.clone()
                } else {
                    format!("{prefix} & {v}")
                });
            }
        }
        labels = next;
    }

    // Derived code per row.
    let mut codes = Vec::with_capacity(data.num_rows());
    for row in 0..data.num_rows() {
        let mut code = 0usize;
        for (&a, &card) in attrs.iter().zip(&cards) {
            code = code * card + data.code(row, a) as usize;
        }
        codes.push(code as u16);
    }

    let mut attributes: Vec<Attribute> = schema.attributes().to_vec();
    attributes.push(Attribute::categorical(name, labels));
    let new_schema = Arc::new(Schema::new(
        attributes,
        schema.label_name().to_string(),
        schema.label_values().clone(),
    )?);
    let mut columns: Vec<Vec<u16>> =
        (0..data.num_attributes()).map(|a| data.column(a).to_vec()).collect();
    columns.push(codes);
    let extended = Dataset::new(new_schema, columns, data.labels().to_vec())?;
    let new_index = extended.num_attributes() - 1;
    Ok((extended, new_index))
}

/// Finds the derived code of a specific combination of per-attribute
/// codes, mirroring [`derive_intersection`]'s enumeration.
pub fn intersection_code(
    data: &Dataset,
    attrs: &[usize],
    values: &[u16],
) -> Result<u16> {
    if attrs.len() != values.len() || attrs.is_empty() {
        return Err(TabularError::UnknownAttribute("<arity mismatch>".into()));
    }
    let schema = data.schema();
    let mut code = 0usize;
    for (&a, &v) in attrs.iter().zip(values) {
        let attr = schema.attribute(a)?;
        if v >= attr.cardinality() {
            return Err(TabularError::CodeOutOfDomain {
                attribute: attr.name().to_string(),
                code: v,
                cardinality: attr.cardinality(),
            });
        }
        code = code * attr.cardinality() as usize + v as usize;
    }
    Ok(code as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupSpec;

    fn toy() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("race", vec!["black".into(), "white".into()]),
                Attribute::categorical("sex", vec!["f".into(), "m".into()]),
            ])
            .unwrap(),
        );
        Dataset::new(
            schema,
            vec![vec![0, 0, 1, 1], vec![0, 1, 0, 1]],
            vec![false, true, true, true],
        )
        .unwrap()
    }

    #[test]
    fn derives_cross_product_attribute() {
        let d = toy();
        let (ext, idx) = derive_intersection(&d, &[0, 1], "race_sex").unwrap();
        assert_eq!(idx, 2);
        let attr = ext.schema().attribute(idx).unwrap();
        assert_eq!(attr.cardinality(), 4);
        assert_eq!(attr.value_label(0), Some("black & f"));
        assert_eq!(attr.value_label(3), Some("white & m"));
        // Row 0 is (black, f) → code 0; row 3 is (white, m) → code 3.
        assert_eq!(ext.column(2), &[0, 1, 2, 3]);
        // Original columns untouched.
        assert_eq!(ext.column(0), d.column(0));
        assert_eq!(ext.labels(), d.labels());
    }

    #[test]
    fn intersection_code_matches_derivation() {
        let d = toy();
        let (ext, idx) = derive_intersection(&d, &[0, 1], "race_sex").unwrap();
        for row in 0..d.num_rows() {
            let expect = ext.code(row, idx);
            let got = intersection_code(
                &d,
                &[0, 1],
                &[d.code(row, 0), d.code(row, 1)],
            )
            .unwrap();
            assert_eq!(expect, got, "row {row}");
        }
    }

    #[test]
    fn derived_attribute_works_as_sensitive_group() {
        let d = toy();
        let (ext, idx) = derive_intersection(&d, &[0, 1], "race_sex").unwrap();
        // Privileged = white & m.
        let code = intersection_code(&d, &[0, 1], &[1, 1]).unwrap();
        let group = GroupSpec::new(idx, code);
        assert_eq!(ext.privileged_mask(group), vec![false, false, false, true]);
    }

    #[test]
    fn errors() {
        let d = toy();
        assert!(derive_intersection(&d, &[], "x").is_err());
        assert!(derive_intersection(&d, &[7], "x").is_err());
        assert!(intersection_code(&d, &[0], &[9]).is_err());
        assert!(intersection_code(&d, &[0, 1], &[0]).is_err());
        // Name collision with an existing attribute is rejected.
        assert!(derive_intersection(&d, &[0, 1], "race").is_err());
    }
}
