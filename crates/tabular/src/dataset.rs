//! The central columnar, fully-discretized dataset type.

use std::sync::Arc;

use crate::error::{Result, TabularError};
use crate::schema::Schema;

/// Identifies the sensitive attribute and which of its codes is the
/// *privileged* group (the paper's `S = 1`); every other code is treated as
/// the *protected* group (`S = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSpec {
    /// Index of the sensitive attribute in the schema.
    pub attr: usize,
    /// Code of the privileged group.
    pub privileged_code: u16,
}

impl GroupSpec {
    /// Creates a group spec.
    pub fn new(attr: usize, privileged_code: u16) -> Self {
        Self { attr, privileged_code }
    }
}

/// A fully discretized binary-labeled dataset stored column-major.
///
/// Every attribute value is a `u16` code whose meaning is given by the
/// shared [`Schema`]. Labels are `bool` with `true` the favorable
/// (positive) outcome. The schema is reference-counted so train/test
/// splits and subset copies share it cheaply.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    schema: Arc<Schema>,
    /// `columns[attr][row]` — column-major for cache-friendly per-attribute
    /// scans (threshold statistics, discretization, predicate evaluation).
    columns: Vec<Vec<u16>>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Builds a dataset from column-major codes and labels, validating
    /// lengths and code domains.
    pub fn new(schema: Arc<Schema>, columns: Vec<Vec<u16>>, labels: Vec<bool>) -> Result<Self> {
        if columns.len() != schema.num_attributes() {
            return Err(TabularError::ColumnLengthMismatch {
                column: "<column count>".into(),
                got: columns.len(),
                expected: schema.num_attributes(),
            });
        }
        let n = labels.len();
        for (i, col) in columns.iter().enumerate() {
            let attr = schema.attribute(i)?;
            if col.len() != n {
                return Err(TabularError::ColumnLengthMismatch {
                    column: attr.name().to_string(),
                    got: col.len(),
                    expected: n,
                });
            }
            let card = attr.cardinality();
            if let Some(&bad) = col.iter().find(|&&c| c >= card) {
                return Err(TabularError::CodeOutOfDomain {
                    attribute: attr.name().to_string(),
                    code: bad,
                    cardinality: card,
                });
            }
        }
        Ok(Self { schema, columns, labels })
    }

    /// Builds a dataset from row-major records.
    pub fn from_rows(schema: Arc<Schema>, rows: &[Vec<u16>], labels: Vec<bool>) -> Result<Self> {
        let p = schema.num_attributes();
        let mut columns = vec![Vec::with_capacity(rows.len()); p];
        for (r, row) in rows.iter().enumerate() {
            if row.len() != p {
                return Err(TabularError::ColumnLengthMismatch {
                    column: format!("<row {r}>"),
                    got: row.len(),
                    expected: p,
                });
            }
            for (j, &code) in row.iter().enumerate() {
                columns[j].push(code);
            }
        }
        Self::new(schema, columns, labels)
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A clone of the schema handle (cheap).
    pub fn schema_handle(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of rows (the paper's `n`).
    pub fn num_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of attributes (the paper's `p`).
    pub fn num_attributes(&self) -> usize {
        self.columns.len()
    }

    /// The paper's *dataset dimension*, `n × p` (Table 8).
    pub fn dimension(&self) -> usize {
        self.num_rows() * self.num_attributes()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The code of `attr` at `row`. Panics if out of bounds (hot path:
    /// callers iterate validated ranges).
    #[inline]
    pub fn code(&self, row: usize, attr: usize) -> u16 {
        self.columns[attr][row]
    }

    /// The full code column of `attr`.
    pub fn column(&self, attr: usize) -> &[u16] {
        &self.columns[attr]
    }

    /// The label of `row`.
    #[inline]
    pub fn label(&self, row: usize) -> bool {
        self.labels[row]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Whether `row` belongs to the privileged group under `group`.
    #[inline]
    pub fn is_privileged(&self, row: usize, group: GroupSpec) -> bool {
        self.columns[group.attr][row] == group.privileged_code
    }

    /// A `Vec<bool>` group-membership mask (`true` = privileged).
    pub fn privileged_mask(&self, group: GroupSpec) -> Vec<bool> {
        self.columns[group.attr]
            .iter()
            .map(|&c| c == group.privileged_code)
            .collect()
    }

    /// Copies the given rows (by index, in the given order) into a new dataset.
    pub fn select_rows(&self, rows: &[u32]) -> Result<Self> {
        for &r in rows {
            if r as usize >= self.num_rows() {
                return Err(TabularError::RowOutOfBounds { row: r as usize, len: self.num_rows() });
            }
        }
        let columns = self
            .columns
            .iter()
            .map(|col| rows.iter().map(|&r| col[r as usize]).collect())
            .collect();
        let labels = rows.iter().map(|&r| self.labels[r as usize]).collect();
        Ok(Self { schema: Arc::clone(&self.schema), columns, labels })
    }

    /// Copies all rows *except* the given ones into a new dataset, preserving
    /// order. `removed` need not be sorted; duplicates are tolerated.
    pub fn without_rows(&self, removed: &[u32]) -> Result<Self> {
        let n = self.num_rows();
        let mut keep = vec![true; n];
        for &r in removed {
            if r as usize >= n {
                return Err(TabularError::RowOutOfBounds { row: r as usize, len: n });
            }
            keep[r as usize] = false;
        }
        let surviving: Vec<u32> =
            (0..n as u32).filter(|&r| keep[r as usize]).collect();
        self.select_rows(&surviving)
    }

    /// The row indices `0..n` as `u32`, the id universe used by the forest
    /// and the lattice.
    pub fn all_row_ids(&self) -> Vec<u32> {
        (0..self.num_rows() as u32).collect()
    }

    /// Fraction of rows with the positive label (the *base rate*).
    pub fn base_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&y| y).count() as f64 / self.labels.len() as f64
    }

    /// Appends the rows of `other` (same schema required).
    pub fn concat(&self, other: &Dataset) -> Result<Self> {
        if self.schema != other.schema {
            return Err(TabularError::SchemaMismatch);
        }
        let columns = self
            .columns
            .iter()
            .zip(&other.columns)
            .map(|(a, b)| {
                let mut c = a.clone();
                c.extend_from_slice(b);
                c
            })
            .collect();
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Ok(Self { schema: Arc::clone(&self.schema), columns, labels })
    }

    /// Replaces the column of `attr` (used by permutation importance);
    /// validates length and domain.
    pub fn with_column(&self, attr: usize, column: Vec<u16>) -> Result<Self> {
        let a = self.schema.attribute(attr)?;
        if column.len() != self.num_rows() {
            return Err(TabularError::ColumnLengthMismatch {
                column: a.name().to_string(),
                got: column.len(),
                expected: self.num_rows(),
            });
        }
        let card = a.cardinality();
        if let Some(&bad) = column.iter().find(|&&c| c >= card) {
            return Err(TabularError::CodeOutOfDomain {
                attribute: a.name().to_string(),
                code: bad,
                cardinality: card,
            });
        }
        let mut columns = self.columns.clone();
        columns[attr] = column;
        Ok(Self { schema: Arc::clone(&self.schema), columns, labels: self.labels.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    pub(crate) fn toy() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("color", vec!["red".into(), "blue".into()]),
                Attribute::ordinal("size", vec!["s".into(), "m".into(), "l".into()]),
            ])
            .unwrap(),
        );
        Dataset::new(
            schema,
            vec![vec![0, 1, 1, 0, 1], vec![0, 1, 2, 2, 1]],
            vec![true, false, true, false, true],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths_and_domains() {
        let schema = toy().schema_handle();
        // wrong column count
        assert!(Dataset::new(Arc::clone(&schema), vec![vec![0]], vec![true]).is_err());
        // ragged column
        assert!(Dataset::new(
            Arc::clone(&schema),
            vec![vec![0, 1], vec![0]],
            vec![true, false]
        )
        .is_err());
        // out-of-domain code
        let err = Dataset::new(
            Arc::clone(&schema),
            vec![vec![0, 7], vec![0, 1]],
            vec![true, false],
        )
        .unwrap_err();
        assert!(matches!(err, TabularError::CodeOutOfDomain { code: 7, .. }));
    }

    #[test]
    fn row_major_construction_matches_columnar() {
        let d = toy();
        let rows: Vec<Vec<u16>> = (0..d.num_rows())
            .map(|r| (0..d.num_attributes()).map(|a| d.code(r, a)).collect())
            .collect();
        let d2 = Dataset::from_rows(d.schema_handle(), &rows, d.labels().to_vec()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.num_rows(), 5);
        assert_eq!(d.num_attributes(), 2);
        assert_eq!(d.dimension(), 10);
        assert_eq!(d.code(2, 1), 2);
        assert_eq!(d.column(0), &[0, 1, 1, 0, 1]);
        assert!(d.label(0));
        assert!((d.base_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn group_membership() {
        let d = toy();
        let g = GroupSpec::new(0, 1); // blue is privileged
        assert!(!d.is_privileged(0, g));
        assert!(d.is_privileged(1, g));
        assert_eq!(d.privileged_mask(g), vec![false, true, true, false, true]);
    }

    #[test]
    fn select_and_without_rows() {
        let d = toy();
        let sel = d.select_rows(&[4, 0]).unwrap();
        assert_eq!(sel.num_rows(), 2);
        assert_eq!(sel.code(0, 0), 1); // row 4's color
        assert_eq!(sel.code(1, 0), 0); // row 0's color
        assert!(sel.label(0) && sel.label(1));

        let rest = d.without_rows(&[1, 3, 3]).unwrap();
        assert_eq!(rest.num_rows(), 3);
        assert_eq!(rest.labels(), &[true, true, true]);

        assert!(d.select_rows(&[9]).is_err());
        assert!(d.without_rows(&[9]).is_err());
    }

    #[test]
    fn without_all_rows_yields_empty() {
        let d = toy();
        let empty = d.without_rows(&d.all_row_ids()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.base_rate(), 0.0);
    }

    #[test]
    fn concat_roundtrip() {
        let d = toy();
        let a = d.select_rows(&[0, 1]).unwrap();
        let b = d.select_rows(&[2, 3, 4]).unwrap();
        assert_eq!(a.concat(&b).unwrap(), d);
    }

    #[test]
    fn concat_schema_mismatch_rejected() {
        let d = toy();
        let other_schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "x",
                vec!["a".into()],
            )])
            .unwrap(),
        );
        let other = Dataset::new(other_schema, vec![vec![0]], vec![true]).unwrap();
        assert!(matches!(d.concat(&other), Err(TabularError::SchemaMismatch)));
    }

    #[test]
    fn with_column_validates() {
        let d = toy();
        let d2 = d.with_column(0, vec![1, 1, 1, 1, 1]).unwrap();
        assert_eq!(d2.column(0), &[1, 1, 1, 1, 1]);
        assert_eq!(d2.column(1), d.column(1));
        assert!(d.with_column(0, vec![0, 0]).is_err());
        assert!(d.with_column(0, vec![3, 0, 0, 0, 0]).is_err());
        assert!(d.with_column(7, vec![0; 5]).is_err());
    }
}
