//! # fume-tabular
//!
//! The tabular-data substrate of the FUME workspace (*Explaining Fairness
//! Violations using Machine Unlearning*, EDBT 2025).
//!
//! Provides:
//! * a fully discretized, columnar [`Dataset`] with a
//!   human-readable [`Schema`];
//! * numeric [discretization](discretize) (equal-width / quantile binning);
//! * deterministic [train/test splitting](split);
//! * a minimal [`Classifier`] trait shared by the
//!   whole workspace;
//! * [summary statistics](stats) matching the paper's Table 2;
//! * a [CSV reader/writer](csv);
//! * a bias-controllable [synthetic data generator](generator) and
//!   [stand-ins](datasets) for the paper's five evaluation datasets;
//! * the sanctioned modules `fume-lint`'s determinism rules funnel into:
//!   scoped [workers], audited narrowing [cast]s, seeded [rng] streams,
//!   and epsilon [float] comparison.
//!
//! ```
//! use fume_tabular::datasets::german_credit;
//! use fume_tabular::split::train_test_split;
//!
//! let (data, group) = german_credit().generate_full(42).unwrap();
//! let (train, test) = train_test_split(&data, 0.2, 42).unwrap();
//! assert_eq!(train.num_rows() + test.num_rows(), 1_000);
//! assert_eq!(data.schema().attribute(group.attr).unwrap().name(), "Age");
//! ```

#![warn(missing_docs)]

pub mod cast;
pub mod classifier;
pub mod csv;
pub mod dataset;
pub mod datasets;
pub mod discretize;
pub mod error;
pub mod float;
pub mod generator;
pub mod intersect;
pub mod rng;
pub mod schema;
pub mod split;
pub mod stats;
pub mod workers;

pub use classifier::Classifier;
pub use dataset::{Dataset, GroupSpec};
pub use error::{Result, TabularError};
pub use schema::{AttrKind, Attribute, Schema};
