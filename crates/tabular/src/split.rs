//! Deterministic train/test splitting.

use crate::rng::{SeedableRng, SliceRandom, StdRng};

use crate::dataset::Dataset;
use crate::error::{Result, TabularError};

/// Splits `data` into `(train, test)` with `test_fraction` of rows in the
/// test set, shuffled with `seed`. At least one row is kept on each side,
/// so the dataset must have two or more rows.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(TabularError::InvalidFraction(test_fraction));
    }
    let n = data.num_rows();
    if n < 2 {
        // One row cannot populate both sides.
        return Err(TabularError::EmptyDataset);
    }
    let mut ids = data.all_row_ids();
    // fume-lint: allow(F003) -- seed provenance: the caller passes an explicit seed, so the shuffle is reproducible per invocation
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    let mut n_test = ((n as f64) * test_fraction).round() as usize;
    n_test = n_test.clamp(1, n - 1);
    let (test_ids, train_ids) = ids.split_at(n_test);
    let mut train_ids = train_ids.to_vec();
    let mut test_ids = test_ids.to_vec();
    // Stable ascending order keeps downstream row-id semantics intuitive.
    train_ids.sort_unstable();
    test_ids.sort_unstable();
    Ok((data.select_rows(&train_ids)?, data.select_rows(&test_ids)?))
}

/// Splits `data` preserving the positive-label proportion in both sides
/// (stratified on the label).
pub fn stratified_split(
    data: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(TabularError::InvalidFraction(test_fraction));
    }
    if data.is_empty() {
        return Err(TabularError::EmptyDataset);
    }
    // fume-lint: allow(F003) -- seed provenance: the caller passes an explicit seed, so the stratified shuffle is reproducible per invocation
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train_ids = Vec::new();
    let mut test_ids = Vec::new();
    for target in [false, true] {
        let mut ids: Vec<u32> = (0..data.num_rows() as u32)
            .filter(|&r| data.label(r as usize) == target)
            .collect();
        ids.shuffle(&mut rng);
        let n_test = ((ids.len() as f64) * test_fraction).round() as usize;
        test_ids.extend_from_slice(&ids[..n_test]);
        train_ids.extend_from_slice(&ids[n_test..]);
    }
    train_ids.sort_unstable();
    test_ids.sort_unstable();
    Ok((data.select_rows(&train_ids)?, data.select_rows(&test_ids)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};
    use std::sync::Arc;

    fn data(n: usize) -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "x",
                vec!["a".into(), "b".into()],
            )])
            .unwrap(),
        );
        let col: Vec<u16> = (0..n).map(|i| (i % 2) as u16).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        Dataset::new(schema, vec![col], labels).unwrap()
    }

    #[test]
    fn split_sizes_and_disjointness() {
        let d = data(100);
        let (train, test) = train_test_split(&d, 0.25, 7).unwrap();
        assert_eq!(train.num_rows(), 75);
        assert_eq!(test.num_rows(), 25);
        // Every original row appears exactly once across the two sides.
        let total = train.num_rows() + test.num_rows();
        assert_eq!(total, d.num_rows());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = data(50);
        let (a1, b1) = train_test_split(&d, 0.3, 42).unwrap();
        let (a2, b2) = train_test_split(&d, 0.3, 42).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (a3, _) = train_test_split(&d, 0.3, 43).unwrap();
        assert_ne!(a1, a3, "different seeds should shuffle differently");
    }

    #[test]
    fn invalid_fraction_rejected() {
        let d = data(10);
        assert!(train_test_split(&d, 0.0, 0).is_err());
        assert!(train_test_split(&d, 1.0, 0).is_err());
        assert!(stratified_split(&d, -0.5, 0).is_err());
    }

    #[test]
    fn tiny_datasets_keep_both_sides_nonempty() {
        let d = data(2);
        let (train, test) = train_test_split(&d, 0.01, 0).unwrap();
        assert_eq!(train.num_rows(), 1);
        assert_eq!(test.num_rows(), 1);
        let (train, test) = train_test_split(&d, 0.99, 0).unwrap();
        assert_eq!(train.num_rows(), 1);
        assert_eq!(test.num_rows(), 1);
    }

    #[test]
    fn stratified_preserves_base_rate() {
        let d = data(300); // base rate 1/3
        let (train, test) = stratified_split(&d, 0.2, 5).unwrap();
        assert!((train.base_rate() - 1.0 / 3.0).abs() < 0.02, "{}", train.base_rate());
        assert!((test.base_rate() - 1.0 / 3.0).abs() < 0.02, "{}", test.base_rate());
    }

    #[test]
    fn empty_dataset_rejected() {
        let d = data(5).select_rows(&[]).unwrap();
        assert!(train_test_split(&d, 0.5, 0).is_err());
        assert!(stratified_split(&d, 0.5, 0).is_err());
    }
}
