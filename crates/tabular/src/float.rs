//! Approved float comparison helpers (lint rule **F005**).
//!
//! Exact `==`/`!=` on floats is almost always a latent bug around
//! accumulated error; where FUME genuinely needs equality semantics
//! (counts that happen to live in `f64`, bit-stable regression checks)
//! it should say so explicitly through these helpers instead of an
//! anonymous comparison.

/// Default tolerance for [`approx_eq`]: generous enough for sums of
/// millions of per-row contributions, tight enough to distinguish any
/// two distinct rates over realistic test-set sizes.
pub const EPSILON: f64 = 1e-9;

/// Whether `a` and `b` agree within `eps` (absolute difference).
#[inline]
pub fn approx_eq_eps(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

/// Whether `a` and `b` agree within [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_eps(a, b, EPSILON)
}

/// Whether `x` is zero within [`EPSILON`] — the idiomatic guard before
/// dividing by a count or rate that may be exactly zero.
#[inline]
pub fn is_zero(x: f64) -> bool {
    x.abs() <= EPSILON
}

/// Exact bitwise equality, spelled out. For the rare site that *means*
/// bit-identical (e.g. pooled-vs-clone ρ regression checks), this keeps
/// the intent greppable and F005-clean.
#[inline]
pub fn bit_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// The one shared positive-class decision: a probability counts as a
/// positive prediction iff it is **strictly** above 0.5 — a tie at
/// exactly 0.5 (an empty leaf, a perfectly split ensemble vote) is
/// negative. The comparison is deliberately exact, not epsilon-padded:
/// the threshold is a convention, not a measurement, and every consumer
/// (full `predict` passes, incremental per-row re-prediction, serving)
/// must land on the same side of the same bit pattern or their confusion
/// tallies diverge. Route every hard-prediction threshold through here.
#[inline]
pub fn positive_class(p: f64) -> bool {
    p > 0.5
}

/// Whether `a` is *definitively* less than `b`: strictly below even after
/// granting an [`EPSILON`] of accumulated error. The tolerant counterpart
/// of `a < b` for threshold gates — values within `EPSILON` of the bound
/// count as *at* the bound, not below it.
#[inline]
pub fn approx_lt(a: f64, b: f64) -> bool {
    a < b - EPSILON
}

/// Whether `a` is *definitively* greater than `b` (see [`approx_lt`]).
#[inline]
pub fn approx_gt(a: f64, b: f64) -> bool {
    a > b + EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_rounding() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(!approx_eq(0.1, 0.2));
        assert!(approx_eq_eps(1.0, 1.05, 0.1));
    }

    #[test]
    fn is_zero_accepts_signed_zero_and_tiny_error() {
        assert!(is_zero(0.0));
        assert!(is_zero(-0.0));
        assert!(is_zero(1e-12));
        assert!(!is_zero(1e-3));
    }

    #[test]
    fn approx_ordering_tolerates_boundary_error() {
        // 0.1 + 0.2 overshoots 0.3 by ~5.6e-17; an exact `<` would call
        // 0.3 "below" that bound, the tolerant comparison does not.
        let bound = 0.1_f64 + 0.2;
        assert!(0.3 < bound, "premise: exact comparison flakes");
        assert!(!approx_lt(0.3, bound));
        assert!(!approx_gt(bound, 0.3));
        // Genuine gaps still order.
        assert!(approx_lt(0.29, 0.3));
        assert!(approx_gt(0.31, 0.3));
        // Exactly-at-the-bound is neither above nor below.
        assert!(!approx_lt(0.5, 0.5));
        assert!(!approx_gt(0.5, 0.5));
    }

    #[test]
    fn positive_class_ties_are_negative() {
        assert!(!positive_class(0.5), "an exact tie is a negative prediction");
        assert!(positive_class(0.5 + f64::EPSILON));
        assert!(!positive_class(0.5 - f64::EPSILON / 4.0));
        assert!(positive_class(1.0));
        assert!(!positive_class(0.0));
        assert!(!positive_class(f64::NAN), "NaN never predicts positive");
    }

    #[test]
    fn bit_eq_is_exact() {
        assert!(bit_eq(0.5, 0.5));
        assert!(!bit_eq(0.0, -0.0), "signed zeros differ bitwise");
        let nan = f64::NAN;
        assert!(bit_eq(nan, nan), "same NaN payload compares equal");
    }
}
