//! Audited narrowing casts for index arithmetic.
//!
//! The forest and lattice address rows as `u32` and attributes/codes as
//! `u16` while iterating with `usize` — a bare `as` cast at each site
//! would truncate silently if a dataset ever outgrew those universes,
//! corrupting cached statistics instead of failing. Lint rule **F004**
//! bans `as` narrowing in `fume-forest`/`fume-lattice`; these helpers
//! are the sanctioned replacement: the checked conversion lives in one
//! place, and the (unreachable-by-validation) failure aborts loudly at
//! the exact cast instead of poisoning ρ scores downstream.
//!
//! The bounds are real invariants, established at the edges: dataset
//! loading rejects row counts above `u32::MAX` and schemas above
//! `u16::MAX` attributes/codes, so interior arithmetic stays in range.

/// A row count or row id as `u32`.
///
/// # Panics
/// If `n` exceeds `u32::MAX` — impossible for values derived from a
/// loaded [`Dataset`](crate::Dataset), whose row universe is `u32`.
#[inline]
#[track_caller]
pub fn row_u32(n: usize) -> u32 {
    // fume-lint: allow(F001) -- the audited truncation point F004 funnels into: row universes are bounded to u32 at dataset construction
    n.try_into().expect("row count exceeds the u32 row universe")
}

/// An attribute index or discretized code as `u16`.
///
/// # Panics
/// If `n` exceeds `u16::MAX` — impossible for values derived from a
/// loaded schema, whose attribute/code universe is `u16`.
#[inline]
#[track_caller]
pub fn code_u16(n: usize) -> u16 {
    // fume-lint: allow(F001) -- the audited truncation point F004 funnels into: schema attribute/code universes are bounded to u16 at construction
    n.try_into().expect("index exceeds the u16 attribute/code universe")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_round_trip() {
        assert_eq!(row_u32(0), 0);
        assert_eq!(row_u32(u32::MAX as usize), u32::MAX);
        assert_eq!(code_u16(65_535), u16::MAX);
    }

    #[test]
    #[should_panic(expected = "u32 row universe")]
    fn oversized_row_count_aborts() {
        row_u32(u32::MAX as usize + 1);
    }

    #[test]
    #[should_panic(expected = "u16 attribute/code universe")]
    fn oversized_code_aborts() {
        code_u16(u16::MAX as usize + 1);
    }
}
