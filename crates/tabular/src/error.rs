//! Error type for the tabular substrate.

use std::fmt;

/// Errors produced while constructing, transforming or loading datasets.
#[derive(Debug, Clone, PartialEq)]
pub enum TabularError {
    /// A column has a different length than the rest of the dataset.
    ColumnLengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Length of the offending column.
        got: usize,
        /// Expected number of rows.
        expected: usize,
    },
    /// An attribute name was referenced but does not exist in the schema.
    UnknownAttribute(String),
    /// An attribute index is out of bounds.
    AttributeIndexOutOfBounds {
        /// The requested index.
        index: usize,
        /// Number of attributes in the schema.
        len: usize,
    },
    /// A categorical code is outside the attribute's domain.
    CodeOutOfDomain {
        /// Attribute name.
        attribute: String,
        /// The offending code.
        code: u16,
        /// Cardinality of the attribute.
        cardinality: u16,
    },
    /// A row index is out of bounds.
    RowOutOfBounds {
        /// The requested row.
        row: usize,
        /// Number of rows in the dataset.
        len: usize,
    },
    /// The dataset has no rows.
    EmptyDataset,
    /// Discretization was requested with an invalid number of bins.
    InvalidBinCount(usize),
    /// A split fraction was outside `(0, 1)`.
    InvalidFraction(f64),
    /// A CSV parse failure with row/column context.
    CsvParse {
        /// 1-based line number in the file.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// An I/O error, stringified (so the error type stays `Clone`).
    Io(String),
    /// The two datasets were expected to share a schema but do not.
    SchemaMismatch,
    /// A duplicate attribute name was supplied.
    DuplicateAttribute(String),
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ColumnLengthMismatch { column, got, expected } => write!(
                f,
                "column `{column}` has {got} values but the dataset has {expected} rows"
            ),
            Self::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Self::AttributeIndexOutOfBounds { index, len } => {
                write!(f, "attribute index {index} out of bounds (schema has {len})")
            }
            Self::CodeOutOfDomain { attribute, code, cardinality } => write!(
                f,
                "code {code} out of domain for attribute `{attribute}` (cardinality {cardinality})"
            ),
            Self::RowOutOfBounds { row, len } => {
                write!(f, "row {row} out of bounds (dataset has {len} rows)")
            }
            Self::EmptyDataset => write!(f, "dataset has no rows"),
            Self::InvalidBinCount(n) => write!(f, "invalid bin count {n}; need at least 2"),
            Self::InvalidFraction(x) => write!(f, "fraction {x} must lie strictly in (0, 1)"),
            Self::CsvParse { line, message } => write!(f, "CSV parse error at line {line}: {message}"),
            Self::Io(msg) => write!(f, "I/O error: {msg}"),
            Self::SchemaMismatch => write!(f, "datasets do not share a schema"),
            Self::DuplicateAttribute(name) => write!(f, "duplicate attribute name `{name}`"),
        }
    }
}

impl std::error::Error for TabularError {}

impl From<std::io::Error> for TabularError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TabularError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_context() {
        let e = TabularError::ColumnLengthMismatch {
            column: "age".into(),
            got: 3,
            expected: 5,
        };
        let s = e.to_string();
        assert!(s.contains("age") && s.contains('3') && s.contains('5'));

        let e = TabularError::CodeOutOfDomain {
            attribute: "sex".into(),
            code: 9,
            cardinality: 2,
        };
        assert!(e.to_string().contains("sex"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: TabularError = io.into();
        assert!(matches!(e, TabularError::Io(_)));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TabularError::EmptyDataset);
    }
}
