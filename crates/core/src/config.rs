//! FUME configuration.

use std::path::PathBuf;

use fume_fairness::FairnessMetric;
use fume_forest::DareConfig;
use fume_lattice::{LatticeError, LiteralGen, RuleToggles, SearchParams, SupportRange};

/// Everything that parameterizes a FUME run.
#[derive(Debug, Clone, PartialEq)]
pub struct FumeConfig {
    /// The fairness notion whose violation is being explained.
    pub metric: FairnessMetric,
    /// Rule 2's support range.
    pub support: SupportRange,
    /// Rule 3's interpretability cap (max literals per subset).
    pub max_literals: usize,
    /// How many subsets to report (the paper uses `k = 5`).
    pub top_k: usize,
    /// Hyperparameters of the DaRE forest.
    pub forest: DareConfig,
    /// Pruning-rule ablation switches.
    pub toggles: RuleToggles,
    /// Attributes excluded from explanations.
    pub exclude_attrs: Vec<u16>,
    /// Level-1 literal generation (equality only, or with `≤`/`≥` range
    /// literals on ordinal attributes).
    pub literal_gen: LiteralGen,
    /// Worker threads for parallel subset evaluation
    /// (`None` = all available cores).
    pub n_jobs: Option<usize>,
    /// Directory to checkpoint the run into (forest + search state at
    /// every lattice-level boundary), enabling [`Fume::resume`]
    /// (crate::Fume::resume) after a crash. `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for FumeConfig {
    /// The paper's defaults: statistical parity, 5–15 % support,
    /// 2-literal subsets, top-5.
    fn default() -> Self {
        Self {
            metric: FairnessMetric::StatisticalParity,
            support: SupportRange::medium(),
            max_literals: 2,
            top_k: 5,
            forest: DareConfig::default(),
            toggles: RuleToggles::default(),
            exclude_attrs: Vec::new(),
            literal_gen: LiteralGen::EqOnly,
            n_jobs: None,
            checkpoint_dir: None,
        }
    }
}

impl FumeConfig {
    /// Builder-style setter for the fairness metric.
    pub fn with_metric(mut self, metric: FairnessMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Builder-style setter for the support range.
    pub fn with_support(mut self, support: SupportRange) -> Self {
        self.support = support;
        self
    }

    /// Builder-style setter for the literal cap.
    pub fn with_max_literals(mut self, eta: usize) -> Self {
        self.max_literals = eta;
        self
    }

    /// Builder-style setter for `k`.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Builder-style setter for the forest hyperparameters.
    pub fn with_forest(mut self, forest: DareConfig) -> Self {
        self.forest = forest;
        self
    }

    /// Builder-style setter for the worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.n_jobs = Some(jobs);
        self
    }

    /// Builder-style setter for the literal-generation strategy.
    /// Selecting [`LiteralGen::WithRanges`] also enables redundancy
    /// pruning — overlapping range literals otherwise flood the ranking
    /// with subsumed conjunctions like `age >= 2 ∧ age >= 4`.
    pub fn with_literal_gen(mut self, gen: LiteralGen) -> Self {
        self.literal_gen = gen;
        if gen == LiteralGen::WithRanges {
            self.toggles.prune_redundant = true;
        }
        self
    }

    /// Builder-style setter for the checkpoint directory.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The lattice search parameters implied by this configuration.
    pub fn search_params(&self) -> Result<SearchParams, LatticeError> {
        let mut p = SearchParams::new(self.support, self.max_literals)?;
        p.toggles = self.toggles;
        p.exclude_attrs = self.exclude_attrs.clone();
        p.literal_gen = self.literal_gen;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FumeConfig::default();
        assert_eq!(c.metric, FairnessMetric::StatisticalParity);
        assert_eq!(c.top_k, 5);
        assert_eq!(c.max_literals, 2);
        assert!((c.support.min - 0.05).abs() < 1e-12);
        assert!((c.support.max - 0.15).abs() < 1e-12);
    }

    #[test]
    fn builder_and_search_params() {
        let c = FumeConfig::default()
            .with_metric(FairnessMetric::PredictiveParity)
            .with_max_literals(3)
            .with_top_k(7)
            .with_jobs(2);
        assert_eq!(c.top_k, 7);
        let p = c.search_params().unwrap();
        assert_eq!(p.max_literals, 3);

        let bad = FumeConfig::default().with_max_literals(0);
        assert!(bad.search_params().is_err());
    }
}
