//! The unified request type every FUME run funnels through.
//!
//! Historically the public surface scattered a run across three
//! overlapping entrypoints (`explain`, `explain_model`, `explain_with`),
//! which meant the CLI, the library examples, and any long-lived serving
//! process each wired the same inputs differently. An
//! [`ExplainRequest`] bundles everything one run needs — the data split,
//! the protected group, an optional prebuilt model, an optional removal
//! override, and an optional cross-request eval memo — and
//! [`Fume::run`](crate::Fume::run) is the single code path that executes
//! it. The old entrypoints survive as thin deprecated wrappers.

use fume_forest::DareForest;
use fume_tabular::{Classifier, Dataset, GroupSpec};

use crate::attribution::EvalMemo;
use crate::removal::RemovalDyn;

/// The deployed model a request explains, when the caller already has
/// one (otherwise [`Fume::run`](crate::Fume::run) trains a DaRE forest
/// from its configuration).
#[derive(Clone, Copy)]
pub enum ModelSpec<'a> {
    /// A trained DaRE forest — the fast path: compatible with every
    /// removal override, including exact unlearning.
    Forest(&'a DareForest),
    /// Any classifier. Exact DaRE unlearning cannot be applied to an
    /// opaque model, so this requires a retraining or shared removal
    /// override (the paper's §5.1 extensibility route).
    Classifier(&'a dyn Classifier),
}

impl<'a> ModelSpec<'a> {
    /// The model as a plain classifier (what the violation check and the
    /// attribution loop consume).
    pub fn as_classifier(&self) -> &'a dyn Classifier {
        match self {
            Self::Forest(f) => *f,
            Self::Classifier(c) => *c,
        }
    }
}

impl std::fmt::Debug for ModelSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Forest(_) => f.write_str("ModelSpec::Forest"),
            Self::Classifier(_) => f.write_str("ModelSpec::Classifier"),
        }
    }
}

/// How a request answers "what would the model be without subset T" —
/// the removal method `R(A(D), D, T)` of paper §3.
#[derive(Clone, Copy, Default)]
pub enum RemovalSpec<'a> {
    /// Exact DaRE unlearning through the pooled scratch-forest path
    /// ([`DareRemoval`](crate::DareRemoval)) — FUME's default.
    #[default]
    Dare,
    /// DaRE unlearning cloning the deployed forest per eval
    /// ([`DareCloneRemoval`](crate::DareCloneRemoval)); the benchmark
    /// baseline, bit-identical to [`RemovalSpec::Dare`].
    DareClone,
    /// Retrain from scratch on the complement
    /// ([`RetrainRemoval`](crate::RetrainRemoval)) — the ground truth.
    Retrain,
    /// A caller-owned removal method shared across requests — e.g.
    /// `fume-serve`'s long-lived warm pool, or a custom
    /// [`RemovalMethod`](crate::RemovalMethod) impl reached through the
    /// [`RemovalDyn`] bridge. Requires a prebuilt model in the request.
    Shared(&'a dyn RemovalDyn),
}

impl std::fmt::Debug for RemovalSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Dare => f.write_str("RemovalSpec::Dare"),
            Self::DareClone => f.write_str("RemovalSpec::DareClone"),
            Self::Retrain => f.write_str("RemovalSpec::Retrain"),
            Self::Shared(r) => write!(f, "RemovalSpec::Shared({})", r.name_dyn()),
        }
    }
}

/// Everything one FUME run needs, in one place: pass it to
/// [`Fume::run`](crate::Fume::run).
///
/// ```
/// use fume_core::{ExplainRequest, Fume};
/// use fume_forest::DareConfig;
/// use fume_lattice::SupportRange;
/// use fume_tabular::datasets::planted_toy;
/// use fume_tabular::split::train_test_split;
///
/// let (data, group) = planted_toy().generate_scaled(0.5, 3).unwrap();
/// let (train, test) = train_test_split(&data, 0.3, 3).unwrap();
/// let fume = Fume::builder()
///     .forest(DareConfig::small(3))
///     .support(SupportRange::new(0.02, 0.25).unwrap())
///     .build();
/// let report = fume.run(&ExplainRequest::new(&train, &test, group)).unwrap();
/// assert!(!report.top_k.is_empty());
/// ```
#[derive(Clone)]
pub struct ExplainRequest<'a> {
    /// The training data the deployed model was (or will be) fitted on.
    pub train: &'a Dataset,
    /// The held-out data the violation is measured on.
    pub test: &'a Dataset,
    /// The protected group whose treatment is explained.
    pub group: GroupSpec,
    /// The deployed model, if already built; `None` trains a DaRE forest
    /// from the [`FumeConfig`](crate::FumeConfig).
    pub model: Option<ModelSpec<'a>>,
    /// The removal override; defaults to exact DaRE unlearning.
    pub removal: RemovalSpec<'a>,
    /// An optional memo of previously computed `ρ` values, consulted
    /// before every unlearn-eval (see
    /// [`EvalMemo`]). The caller owns scoping: a memo shared
    /// across requests must only be attached to requests whose data,
    /// metric, and model identity match its keys.
    pub memo: Option<&'a dyn EvalMemo>,
}

impl std::fmt::Debug for ExplainRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExplainRequest")
            .field("train_rows", &self.train.num_rows())
            .field("test_rows", &self.test.num_rows())
            .field("group", &self.group)
            .field("model", &self.model)
            .field("removal", &self.removal)
            .field("memo", &self.memo.is_some())
            .finish()
    }
}

impl<'a> ExplainRequest<'a> {
    /// A request with FUME's defaults: train a forest, explain with
    /// exact DaRE unlearning, no memo.
    pub fn new(train: &'a Dataset, test: &'a Dataset, group: GroupSpec) -> Self {
        Self { train, test, group, model: None, removal: RemovalSpec::Dare, memo: None }
    }

    /// Explains an already-trained DaRE forest instead of training one.
    /// The forest must have been fitted on exactly the rows of `train`.
    #[must_use]
    pub fn with_model(mut self, forest: &'a DareForest) -> Self {
        self.model = Some(ModelSpec::Forest(forest));
        self
    }

    /// Explains an arbitrary deployed classifier; requires a
    /// [`RemovalSpec::Retrain`] or [`RemovalSpec::Shared`] override,
    /// since exact DaRE unlearning needs a DaRE forest.
    #[must_use]
    pub fn with_classifier(mut self, model: &'a dyn Classifier) -> Self {
        self.model = Some(ModelSpec::Classifier(model));
        self
    }

    /// Overrides the removal method.
    #[must_use]
    pub fn with_removal(mut self, removal: RemovalSpec<'a>) -> Self {
        self.removal = removal;
        self
    }

    /// Attaches an eval memo (see [`ExplainRequest::memo`]).
    #[must_use]
    pub fn with_memo(mut self, memo: &'a dyn EvalMemo) -> Self {
        self.memo = Some(memo);
        self
    }
}
