//! # fume-core
//!
//! **FUME** — *Explaining Fairness Violations using Machine Unlearning*
//! (Surve & Pradhan, EDBT 2025) — identifies the top-k predicate-based
//! training-data subsets attributable to a group-fairness violation of a
//! random-forest classifier.
//!
//! The expensive primitive — *what would the model's fairness be had it
//! been trained without subset T?* — is answered by **exact machine
//! unlearning** on a [DaRE forest](fume_forest::DareForest)
//! ([`DareRemoval`]) instead of retraining, and the
//! exponential predicate space is navigated by the apriori-style
//! [lattice search](fume_lattice) with the paper's five pruning rules.
//!
//! Entry point: build a [`Fume`](algorithm::Fume) (fluently via
//! [`Fume::builder`](algorithm::Fume::builder), or [`Fume::new`] with an
//! explicit [`FumeConfig`]) and execute an [`ExplainRequest`] with
//! [`Fume::run`](algorithm::Fume::run). Most users want
//! `use fume_core::prelude::*;`.

#![warn(missing_docs)]

pub mod algorithm;
pub mod attribution;
pub mod baseline;
pub mod builder;
pub mod checkpoint;
pub mod config;
pub mod instance_attribution;
pub mod path_mining;
pub mod removal;
pub mod report;
pub mod report_json;
pub mod request;
pub mod slice_finder;

pub use algorithm::{apply_removal, ExplainedSubset, Fume, FumeError, FumeReport};
pub use attribution::{parity_reduction, phi, AttributionEstimator, EvalMemo};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use baseline::{drop_unpriv_unfavor, BaselineResult};
pub use builder::FumeBuilder;
pub use config::FumeConfig;
pub use instance_attribution::{overlap_with_subset, rank_instances, InstanceAttribution};
pub use path_mining::{mine_unfair_paths, MinedPattern};
pub use removal::{
    BiasEval, DareCloneRemoval, DareRemoval, GbdtRetrainRemoval, RemovalDyn, RemovalMethod,
    RetrainRemoval, SharedAdapter,
};
pub use request::{ExplainRequest, ModelSpec, RemovalSpec};
pub use slice_finder::{find_slices, Slice};

/// One-stop imports for a typical FUME run: the engine, its
/// configuration surface, removal methods, and the upstream types
/// (forest config, fairness metric, lattice bounds, dataset/group
/// handles) they are parameterized by.
///
/// ```
/// use fume_core::prelude::*;
/// let fume = Fume::builder().forest(DareConfig::small(1)).build();
/// assert_eq!(fume.config().top_k, 5);
/// ```
pub mod prelude {
    pub use crate::algorithm::{Fume, FumeError, FumeReport};
    pub use crate::attribution::{AttributionEstimator, EvalMemo};
    pub use crate::builder::FumeBuilder;
    pub use crate::config::FumeConfig;
    pub use crate::removal::{
        BiasEval, DareCloneRemoval, DareRemoval, GbdtRetrainRemoval, RemovalDyn,
        RemovalMethod, RetrainRemoval,
    };
    pub use crate::request::{ExplainRequest, ModelSpec, RemovalSpec};
    pub use fume_fairness::FairnessMetric;
    pub use fume_forest::{DareConfig, DareForest, MaxFeatures};
    pub use fume_lattice::{LiteralGen, SupportRange};
    pub use fume_tabular::{Classifier, Dataset, GroupSpec};
}
