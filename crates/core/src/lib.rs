//! # fume-core
//!
//! **FUME** — *Explaining Fairness Violations using Machine Unlearning*
//! (Surve & Pradhan, EDBT 2025) — identifies the top-k predicate-based
//! training-data subsets attributable to a group-fairness violation of a
//! random-forest classifier.
//!
//! The expensive primitive — *what would the model's fairness be had it
//! been trained without subset T?* — is answered by **exact machine
//! unlearning** on a [DaRE forest](fume_forest::DareForest)
//! ([`DareRemoval`]) instead of retraining, and the
//! exponential predicate space is navigated by the apriori-style
//! [lattice search](fume_lattice) with the paper's five pruning rules.
//!
//! Entry point: [`Fume::explain`](algorithm::Fume::explain).

#![warn(missing_docs)]

pub mod algorithm;
pub mod attribution;
pub mod baseline;
pub mod config;
pub mod instance_attribution;
pub mod path_mining;
pub mod removal;
pub mod report;
pub mod slice_finder;

pub use algorithm::{apply_removal, ExplainedSubset, Fume, FumeError, FumeReport};
pub use attribution::{parity_reduction, phi, AttributionEstimator};
pub use baseline::{drop_unpriv_unfavor, BaselineResult};
pub use config::FumeConfig;
pub use instance_attribution::{overlap_with_subset, rank_instances, InstanceAttribution};
pub use path_mining::{mine_unfair_paths, MinedPattern};
pub use removal::{DareRemoval, GbdtRetrainRemoval, RemovalMethod, RetrainRemoval};
pub use slice_finder::{find_slices, Slice};
