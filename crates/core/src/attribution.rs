//! Subset attribution toward bias (paper Definitions 2.2/2.3 and Eq. 2),
//! with parallel batch evaluation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use fume_fairness::FairnessMetric;
use fume_lattice::{BatchEvaluator, EvalItem};
use fume_tabular::{Dataset, GroupSpec};

use crate::removal::RemovalMethod;

/// The paper's subset attribution
/// `φ_T = (|F(h_T)| − |F(h)|) / |F(h)|` (Definition 2.3): negative when
/// removing the subset reduces bias.
#[inline]
pub fn phi(original_bias: f64, bias_without: f64) -> f64 {
    debug_assert!(original_bias > 0.0, "caller checks for an actual violation");
    (bias_without - original_bias) / original_bias
}

/// Parity reduction `ρ_T = −φ_T`: the fraction of the violation removed
/// (what Tables 3–7 report as "Parity Reduction" percentages).
#[inline]
pub fn parity_reduction(original_bias: f64, bias_without: f64) -> f64 {
    -phi(original_bias, bias_without)
}

/// Estimates subset attributions through a [`RemovalMethod`]: FUME's
/// Equation 2 with `R` = DaRE unlearning, or the ground truth with `R` =
/// retraining.
pub struct AttributionEstimator<'a, R: RemovalMethod> {
    removal: R,
    metric: FairnessMetric,
    test: &'a Dataset,
    group: GroupSpec,
    original_bias: f64,
    n_jobs: usize,
    /// Wall-clock nanoseconds spent inside [`BatchEvaluator::evaluate`].
    eval_nanos: AtomicU64,
}

impl<'a, R: RemovalMethod> AttributionEstimator<'a, R> {
    /// Builds an estimator around the deployed model's observed bias.
    /// `original_bias` must be positive (there must *be* a violation).
    pub fn new(
        removal: R,
        metric: FairnessMetric,
        test: &'a Dataset,
        group: GroupSpec,
        original_bias: f64,
        n_jobs: Option<usize>,
    ) -> Self {
        assert!(original_bias > 0.0, "no fairness violation to attribute");
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self {
            removal,
            metric,
            test,
            group,
            original_bias,
            n_jobs: n_jobs.unwrap_or(avail).max(1),
            eval_nanos: AtomicU64::new(0),
        }
    }

    /// `ρ` for a single subset.
    pub fn rho(&self, subset: &[u32]) -> f64 {
        let model = self.removal.remove(subset);
        let new_bias = self.metric.bias(&model, self.test, self.group);
        parity_reduction(self.original_bias, new_bias)
    }

    /// `φ` for a single subset.
    pub fn phi(&self, subset: &[u32]) -> f64 {
        -self.rho(subset)
    }

    /// The observed bias of the deployed model.
    pub fn original_bias(&self) -> f64 {
        self.original_bias
    }

    /// Cumulative wall-clock time spent inside batch evaluations so far.
    pub fn eval_time(&self) -> Duration {
        Duration::from_nanos(self.eval_nanos.load(Ordering::Relaxed))
    }
}

impl<R: RemovalMethod> BatchEvaluator for AttributionEstimator<'_, R> {
    /// Evaluates a level's subsets in parallel: each worker clones/retrains
    /// its own model, so items are fully independent.
    fn evaluate(&self, items: &[EvalItem<'_>]) -> Vec<f64> {
        if items.is_empty() {
            return Vec::new();
        }
        let _span = fume_obs::span!("fume.phase.unlearn_eval", batch = items.len());
        fume_obs::counter!("fume.unlearn_evals", items.len());
        let t0 = Instant::now();
        let jobs = self.n_jobs.min(items.len());
        let out = if jobs <= 1 {
            items.iter().map(|it| self.rho(it.rows)).collect()
        } else {
            let mut out: Vec<Option<f64>> = vec![None; items.len()];
            let chunk = items.len().div_ceil(jobs);
            std::thread::scope(|scope| {
                for (slots, work) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
                    scope.spawn(move || {
                        for (slot, item) in slots.iter_mut().zip(work) {
                            *slot = Some(self.rho(item.rows));
                        }
                    });
                }
            });
            out.into_iter().map(|o| o.expect("all slots filled")).collect()
        };
        self.eval_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::removal::DareRemoval;
    use fume_forest::{DareConfig, DareForest};
    use fume_lattice::{Literal, Predicate};
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    #[test]
    fn phi_and_rho_are_negations() {
        assert!((phi(0.2, 0.1) + 0.5).abs() < 1e-12);
        assert!((parity_reduction(0.2, 0.1) - 0.5).abs() < 1e-12);
        // Removing a subset that *increases* bias: ρ negative.
        assert!(parity_reduction(0.2, 0.3) < 0.0);
        // Complete bias removal: ρ = 1.
        assert!((parity_reduction(0.2, 0.0) - 1.0).abs() < 1e-12);
    }

    fn setup() -> (Dataset, Dataset, GroupSpec, DareForest, f64) {
        let (data, group) = planted_toy().generate_scaled(0.5, 71).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 71).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(71));
        let bias = FairnessMetric::StatisticalParity.bias(&forest, &test, group);
        (train, test, group, forest, bias)
    }

    #[test]
    fn parallel_and_serial_evaluation_agree() {
        let (train, test, group, forest, bias) = setup();
        assert!(bias > 0.0, "toy model must show a violation (bias {bias})");
        let preds: Vec<Predicate> = (0..3u16)
            .map(|v| Predicate::single(Literal::eq(1, v)))
            .collect();
        let selections: Vec<Vec<u32>> = preds.iter().map(|p| p.select(&train)).collect();
        let items: Vec<EvalItem<'_>> = preds
            .iter()
            .zip(&selections)
            .map(|(p, s)| EvalItem { predicate: p, rows: s })
            .collect();

        let serial = AttributionEstimator::new(
            DareRemoval::new(&forest, &train),
            FairnessMetric::StatisticalParity,
            &test,
            group,
            bias,
            Some(1),
        );
        let parallel = AttributionEstimator::new(
            DareRemoval::new(&forest, &train),
            FairnessMetric::StatisticalParity,
            &test,
            group,
            bias,
            Some(4),
        );
        let a = serial.evaluate(&items);
        let b = parallel.evaluate(&items);
        assert_eq!(a, b, "parallelism must not change results");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (train, test, group, forest, bias) = setup();
        let est = AttributionEstimator::new(
            DareRemoval::new(&forest, &train),
            FairnessMetric::StatisticalParity,
            &test,
            group,
            bias,
            None,
        );
        assert!(est.evaluate(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "no fairness violation")]
    fn zero_bias_rejected() {
        let (train, test, group, forest, _) = setup();
        AttributionEstimator::new(
            DareRemoval::new(&forest, &train),
            FairnessMetric::StatisticalParity,
            &test,
            group,
            0.0,
            None,
        );
    }
}
