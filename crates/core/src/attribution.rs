//! Subset attribution toward bias (paper Definitions 2.2/2.3 and Eq. 2),
//! with parallel batch evaluation.

use std::collections::HashMap;
use fume_obs::sync::Counter;

use fume_obs::clock::{Duration, Stopwatch};
use fume_tabular::workers;

use fume_fairness::FairnessMetric;
use fume_lattice::{BatchEvaluator, EvalItem};
use fume_tabular::{Dataset, GroupSpec};

use crate::removal::{BiasEval, RemovalMethod};

/// The paper's subset attribution
/// `φ_T = (|F(h_T)| − |F(h)|) / |F(h)|` (Definition 2.3): negative when
/// removing the subset reduces bias.
#[inline]
pub fn phi(original_bias: f64, bias_without: f64) -> f64 {
    debug_assert!(original_bias > 0.0, "caller checks for an actual violation");
    (bias_without - original_bias) / original_bias
}

/// Parity reduction `ρ_T = −φ_T`: the fraction of the violation removed
/// (what Tables 3–7 report as "Parity Reduction" percentages).
#[inline]
pub fn parity_reduction(original_bias: f64, bias_without: f64) -> f64 {
    -phi(original_bias, bias_without)
}

/// A memo of already-computed `ρ` values keyed by canonical row
/// selection, consulted by [`AttributionEstimator`] before paying for an
/// unlearn-eval. Implementations decide scope and eviction — the
/// estimator only promises that `store(rows, rho)` is called with the
/// exact `rho` an eval produced and that `lookup` results are used
/// verbatim (so a memo shared across runs must key on everything `ρ`
/// depends on beyond the rows: dataset, metric, and model identity).
/// `fume-serve` implements this as its bounded cross-request LRU.
pub trait EvalMemo: Sync {
    /// The cached `ρ` for this row selection, if present.
    fn lookup(&self, rows: &[u32]) -> Option<f64>;

    /// Records a freshly computed `ρ` for this row selection.
    fn store(&self, rows: &[u32], rho: f64);
}

/// Estimates subset attributions through a [`RemovalMethod`]: FUME's
/// Equation 2 with `R` = DaRE unlearning, or the ground truth with `R` =
/// retraining.
pub struct AttributionEstimator<'a, R: RemovalMethod> {
    removal: R,
    metric: FairnessMetric,
    test: &'a Dataset,
    group: GroupSpec,
    original_bias: f64,
    n_jobs: usize,
    memo: Option<&'a dyn EvalMemo>,
    /// Wall-clock nanoseconds spent inside [`BatchEvaluator::evaluate`].
    eval_nanos: Counter,
}

impl<'a, R: RemovalMethod> AttributionEstimator<'a, R> {
    /// Builds an estimator around the deployed model's observed bias.
    /// `original_bias` must be positive (there must *be* a violation).
    ///
    /// Calls [`RemovalMethod::warm`] with the resolved worker count, so
    /// pool-backed methods clone their scratch state once here rather
    /// than per evaluated subset.
    pub fn new(
        removal: R,
        metric: FairnessMetric,
        test: &'a Dataset,
        group: GroupSpec,
        original_bias: f64,
        n_jobs: Option<usize>,
    ) -> Self {
        assert!(original_bias > 0.0, "no fairness violation to attribute");
        let n_jobs = n_jobs.unwrap_or_else(workers::available_parallelism).max(1);
        removal.warm(n_jobs);
        Self {
            removal,
            metric,
            test,
            group,
            original_bias,
            n_jobs,
            memo: None,
            eval_nanos: Counter::new(0),
        }
    }

    /// Attaches an [`EvalMemo`] consulted before every unlearn-eval.
    /// Memo hits surface as `fume.unlearn_evals.memoized` while
    /// `fume.unlearn_evals` keeps counting only the evals actually
    /// performed, which is what lets a trace prove a fully warm request
    /// cost zero unlearning.
    pub fn with_memo(mut self, memo: &'a dyn EvalMemo) -> Self {
        self.memo = Some(memo);
        self
    }

    /// `ρ` for a single subset. Goes through
    /// [`RemovalMethod::bias_removed`], so a removal method with an
    /// incremental path (journal-driven dirty-row reuse) answers without
    /// a full prediction pass.
    pub fn rho(&self, subset: &[u32]) -> f64 {
        let eval = BiasEval { metric: self.metric, test: self.test, group: self.group };
        let new_bias = self.removal.bias_removed(subset, &eval);
        parity_reduction(self.original_bias, new_bias)
    }

    /// `φ` for a single subset.
    pub fn phi(&self, subset: &[u32]) -> f64 {
        -self.rho(subset)
    }

    /// The observed bias of the deployed model.
    pub fn original_bias(&self) -> f64 {
        self.original_bias
    }

    /// Cumulative wall-clock time spent inside batch evaluations so far.
    pub fn eval_time(&self) -> Duration {
        Duration::from_nanos(self.eval_nanos.get())
    }
}

impl<R: RemovalMethod> BatchEvaluator for AttributionEstimator<'_, R> {
    /// Evaluates a level's subsets in parallel. Items selecting identical
    /// row sets (syntactically different but semantically redundant
    /// predicates) are deduplicated first, so each distinct subset is
    /// unlearned exactly once; workers then share pooled scratch models
    /// through the removal method, so items are fully independent.
    fn evaluate(&self, items: &[EvalItem<'_>]) -> Vec<f64> {
        if items.is_empty() {
            return Vec::new();
        }
        let _span = fume_obs::span!("fume.phase.unlearn_eval", batch = items.len());
        let t0 = Stopwatch::start();

        // Dedupe identical row selections: `slot_of[i]` maps item `i` to
        // its evaluation in `unique`.
        let mut first_of: HashMap<&[u32], usize> = HashMap::with_capacity(items.len());
        let mut unique: Vec<&[u32]> = Vec::with_capacity(items.len());
        let mut slot_of: Vec<usize> = Vec::with_capacity(items.len());
        for item in items {
            let next = unique.len();
            let idx = *first_of.entry(item.rows).or_insert(next);
            if idx == next {
                unique.push(item.rows);
            }
            slot_of.push(idx);
        }
        let deduped = items.len() - unique.len();
        if deduped > 0 {
            fume_obs::counter!("fume.unlearn_evals.deduped", deduped);
            fume_obs::progress::tick_deduped(deduped as u64);
        }

        // Consult the memo (if any) before paying for an unlearn-eval:
        // hits reuse the cached ρ verbatim, only misses go to the pool.
        let mut rho_unique: Vec<Option<f64>> = vec![None; unique.len()];
        let miss_idx: Vec<usize> = match self.memo {
            Some(memo) => {
                let mut misses = Vec::with_capacity(unique.len());
                for (i, rows) in unique.iter().enumerate() {
                    match memo.lookup(rows) {
                        Some(rho) => rho_unique[i] = Some(rho),
                        None => misses.push(i),
                    }
                }
                misses
            }
            None => (0..unique.len()).collect(),
        };
        // One accounting identity, memo or not:
        //   fume.unlearn_evals (+ .deduped + .memoized) == items submitted.
        // `fume.unlearn_evals` counts evals actually *executed* — a fully
        // warm request shows zero here in the trace — and every satisfied
        // item ticks progress exactly once (computed, deduped, or
        // memoized), so `done` always reaches `planned`.
        if !miss_idx.is_empty() {
            fume_obs::counter!("fume.unlearn_evals", miss_idx.len());
        }
        let memoized = unique.len() - miss_idx.len();
        if memoized > 0 {
            fume_obs::counter!("fume.unlearn_evals.memoized", memoized);
            fume_obs::progress::tick_memoized(memoized as u64);
        }

        let miss_rows: Vec<&[u32]> = miss_idx.iter().map(|&i| unique[i]).collect();
        let jobs = self.n_jobs.min(miss_rows.len());
        let computed: Vec<f64> = workers::parallel_map(&miss_rows, jobs, |rows| {
            let rho = self.rho(rows);
            fume_obs::progress::tick_eval(1);
            rho
        });
        if let Some(memo) = self.memo {
            for (&i, &rho) in miss_idx.iter().zip(&computed) {
                memo.store(unique[i], rho);
            }
            // Correctness mode: re-derive every memo hit from scratch and
            // demand bitwise agreement — a scope-confused memo (wrong
            // dataset/metric/model in the key) fails loudly here.
            if fume_forest::deepcheck::enabled() {
                for (i, rows) in unique.iter().enumerate() {
                    if let Some(cached) = rho_unique[i] {
                        let fresh = self.rho(rows);
                        assert!(
                            cached.to_bits() == fresh.to_bits(),
                            "FUME_DEEPCHECK: memoised ρ {cached} != recomputed ρ {fresh} \
                             for a {}-row selection — eval memo scope is wrong",
                            rows.len()
                        );
                    }
                }
            }
        }
        for (&i, &rho) in miss_idx.iter().zip(&computed) {
            rho_unique[i] = Some(rho);
        }
        let out = slot_of
            .into_iter()
            // fume-lint: allow(F001) -- every index is either a memo hit (filled at lookup) or a miss (filled from `computed` just above); the partition is exhaustive by construction
            .map(|i| rho_unique[i].expect("every unique selection resolved"))
            .collect();
        self.eval_nanos.add(t0.elapsed_nanos());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    use crate::removal::DareRemoval;
    use fume_forest::{DareConfig, DareForest};
    use fume_lattice::{Literal, Op, Predicate};
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    #[test]
    fn phi_and_rho_are_negations() {
        assert!((phi(0.2, 0.1) + 0.5).abs() < 1e-12);
        assert!((parity_reduction(0.2, 0.1) - 0.5).abs() < 1e-12);
        // Removing a subset that *increases* bias: ρ negative.
        assert!(parity_reduction(0.2, 0.3) < 0.0);
        // Complete bias removal: ρ = 1.
        assert!((parity_reduction(0.2, 0.0) - 1.0).abs() < 1e-12);
    }

    fn setup() -> (Dataset, Dataset, GroupSpec, DareForest, f64) {
        let (data, group) = planted_toy().generate_scaled(0.5, 71).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 71).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(71));
        let bias = FairnessMetric::StatisticalParity.bias(&forest, &test, group);
        (train, test, group, forest, bias)
    }

    #[test]
    fn parallel_and_serial_evaluation_agree() {
        let (train, test, group, forest, bias) = setup();
        assert!(bias > 0.0, "toy model must show a violation (bias {bias})");
        let preds: Vec<Predicate> = (0..3u16)
            .map(|v| Predicate::single(Literal::eq(1, v)))
            .collect();
        let selections: Vec<Vec<u32>> = preds.iter().map(|p| p.select(&train)).collect();
        let items: Vec<EvalItem<'_>> = preds
            .iter()
            .zip(&selections)
            .map(|(p, s)| EvalItem { predicate: p, rows: s })
            .collect();

        let serial = AttributionEstimator::new(
            DareRemoval::new(&forest, &train),
            FairnessMetric::StatisticalParity,
            &test,
            group,
            bias,
            Some(1),
        );
        let parallel = AttributionEstimator::new(
            DareRemoval::new(&forest, &train),
            FairnessMetric::StatisticalParity,
            &test,
            group,
            bias,
            Some(4),
        );
        let a = serial.evaluate(&items);
        let b = parallel.evaluate(&items);
        assert_eq!(a, b, "parallelism must not change results");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn identical_row_selections_cost_one_evaluation() {
        use crate::removal::DareCloneRemoval;
        use std::sync::atomic::AtomicUsize;

        /// Counts how many removals actually run underneath dedup.
        struct CountingRemoval<'a> {
            inner: DareCloneRemoval<'a>,
            calls: &'a AtomicUsize,
        }
        impl RemovalMethod for CountingRemoval<'_> {
            fn with_removed<T>(
                &self,
                subset: &[u32],
                f: impl FnOnce(&dyn fume_tabular::Classifier) -> T,
            ) -> T {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.with_removed(subset, f)
            }
            fn name(&self) -> &'static str {
                "counting"
            }
        }

        let (train, test, group, forest, bias) = setup();
        // Two syntactically different predicates with the same selection,
        // plus one genuinely distinct item.
        let p_a = Predicate::single(Literal::eq(1, 0));
        // `code <= 0` selects exactly the rows with `code == 0`.
        let p_b = Predicate::single(Literal { attr: 1, op: Op::Le, value: 0 });
        let p_c = Predicate::single(Literal::eq(1, 1));
        let rows_a = p_a.select(&train);
        let rows_b = p_b.select(&train);
        let rows_c = p_c.select(&train);
        assert_eq!(rows_a, rows_b, "setup: selections must coincide");
        let items = [
            EvalItem { predicate: &p_a, rows: &rows_a },
            EvalItem { predicate: &p_b, rows: &rows_b },
            EvalItem { predicate: &p_c, rows: &rows_c },
        ];
        let calls = AtomicUsize::new(0);
        let est = AttributionEstimator::new(
            CountingRemoval { inner: DareCloneRemoval::new(&forest, &train), calls: &calls },
            FairnessMetric::StatisticalParity,
            &test,
            group,
            bias,
            Some(1),
        );
        let out = est.evaluate(&items);
        assert_eq!(out.len(), 3, "every item still gets its ρ");
        assert_eq!(out[0], out[1], "duplicates share the evaluation result");
        assert_eq!(calls.load(Ordering::Relaxed), 2, "two distinct subsets → two removals");
    }

    #[test]
    fn memo_hits_skip_removals_and_match_cold_results() {
        use std::collections::HashMap as Map;
        use std::sync::atomic::AtomicUsize;
        use std::sync::Mutex;

        /// Counts removals actually executed underneath memo + dedup.
        struct CountingRemoval<'a> {
            inner: DareRemoval<'a>,
            calls: &'a AtomicUsize,
        }
        impl RemovalMethod for CountingRemoval<'_> {
            fn with_removed<T>(
                &self,
                subset: &[u32],
                f: impl FnOnce(&dyn fume_tabular::Classifier) -> T,
            ) -> T {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.with_removed(subset, f)
            }
            fn name(&self) -> &'static str {
                "counting"
            }
        }

        #[derive(Default)]
        struct MapMemo(Mutex<Map<Vec<u32>, f64>>);
        impl EvalMemo for MapMemo {
            fn lookup(&self, rows: &[u32]) -> Option<f64> {
                self.0
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .get(rows)
                    .copied()
            }
            fn store(&self, rows: &[u32], rho: f64) {
                self.0
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .insert(rows.to_vec(), rho);
            }
        }

        let (train, test, group, forest, bias) = setup();
        let preds: Vec<Predicate> =
            (0..3u16).map(|v| Predicate::single(Literal::eq(1, v))).collect();
        let selections: Vec<Vec<u32>> = preds.iter().map(|p| p.select(&train)).collect();
        let items: Vec<EvalItem<'_>> = preds
            .iter()
            .zip(&selections)
            .map(|(p, s)| EvalItem { predicate: p, rows: s })
            .collect();

        let cold = AttributionEstimator::new(
            DareRemoval::new(&forest, &train),
            FairnessMetric::StatisticalParity,
            &test,
            group,
            bias,
            Some(1),
        );
        let expect = cold.evaluate(&items);

        let memo = MapMemo::default();
        let calls = AtomicUsize::new(0);
        for (pass, expected_calls) in [("cold", 3usize), ("warm", 3)] {
            let est = AttributionEstimator::new(
                CountingRemoval { inner: DareRemoval::new(&forest, &train), calls: &calls },
                FairnessMetric::StatisticalParity,
                &test,
                group,
                bias,
                Some(1),
            )
            .with_memo(&memo);
            let got = est.evaluate(&items);
            assert_eq!(got, expect, "{pass} pass must match memo-less results");
            assert_eq!(
                calls.load(Ordering::Relaxed),
                expected_calls,
                "{pass}: cold pays every eval, warm pays zero"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (train, test, group, forest, bias) = setup();
        let est = AttributionEstimator::new(
            DareRemoval::new(&forest, &train),
            FairnessMetric::StatisticalParity,
            &test,
            group,
            bias,
            None,
        );
        assert!(est.evaluate(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "no fairness violation")]
    fn zero_bias_rejected() {
        let (train, test, group, forest, _) = setup();
        AttributionEstimator::new(
            DareRemoval::new(&forest, &train),
            FairnessMetric::StatisticalParity,
            &test,
            group,
            0.0,
            None,
        );
    }
}
