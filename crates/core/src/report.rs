//! Rich rendering of FUME results: a full markdown audit document and a
//! CSV dump of every evaluated subset, for notebooks and dashboards.

use std::fmt::Write as _;

use fume_tabular::Schema;

use crate::algorithm::FumeReport;

impl FumeReport {
    /// Renders the per-level lattice statistics (the paper's Table 9
    /// columns) as markdown.
    pub fn levels_markdown(&self) -> String {
        let mut out = String::from(
            "| Level | Possible | Generated | Explored | Pruned (%) | rule1 | redundant | support-low | oversized | rule4 | rule5 |\n\
             |---|---|---|---|---|---|---|---|---|---|---|\n",
        );
        for l in &self.levels {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.2} | {} | {} | {} | {} | {} | {} |",
                l.level,
                l.possible,
                l.generated,
                l.explored,
                l.pruned_percent(),
                l.pruned_rule1,
                l.pruned_redundant,
                l.pruned_support_low,
                l.oversized,
                l.pruned_rule4,
                l.pruned_rule5,
            );
        }
        out
    }

    /// Dumps every evaluated subset as CSV
    /// (`level,support,parity_reduction,phi,pattern`).
    pub fn evaluated_csv(&self, schema: &Schema) -> String {
        let mut out = String::from("level,support,parity_reduction,phi,pattern\n");
        for s in &self.evaluated {
            let pattern = s.predicate.render(schema).replace('"', "'");
            let _ = writeln!(
                out,
                "{},{:.6},{:.6},{:.6},\"{}\"",
                s.level,
                s.support,
                s.rho,
                -s.rho,
                pattern
            );
        }
        out
    }

    /// Renders a complete audit document: headline numbers, the top-k
    /// table, and the exploration statistics.
    pub fn to_full_markdown(&self, schema: &Schema) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# FUME audit report\n");
        let _ = writeln!(
            out,
            "* metric: **{}**\n* observed violation |F|: **{:.4}** (signed {:+.4})\n\
             * model test accuracy: **{:.2}%**\n* unlearning operations: **{}**\n\
             * search time: **{:.2}s** (training {:.2}s)\n",
            self.metric.name(),
            self.original_bias,
            self.original_fairness,
            self.original_accuracy * 100.0,
            self.unlearning_operations,
            self.search_time.as_secs_f64(),
            self.training_time.as_secs_f64(),
        );
        let _ = writeln!(out, "## Top-{} attributable subsets\n", self.top_k.len());
        out.push_str(&self.to_markdown());
        let _ = writeln!(out, "\n## Lattice exploration\n");
        out.push_str(&self.levels_markdown());
        let _ = writeln!(
            out,
            "\n{} subsets evaluated in total; full dump available via `evaluated_csv`.",
            self.evaluated.len()
        );
        let _ = schema; // schema is used by the csv/table helpers on demand
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::algorithm::Fume;
    use crate::config::FumeConfig;
    use fume_forest::DareConfig;
    use fume_lattice::SupportRange;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    fn report() -> (crate::algorithm::FumeReport, fume_tabular::Dataset) {
        let (data, group) = planted_toy().generate_scaled(0.5, 83).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 83).unwrap();
        let fume = Fume::new(
            FumeConfig::default()
                .with_support(SupportRange::new(0.02, 0.3).unwrap())
                .with_forest(DareConfig::small(83).with_trees(10)),
        );
        (fume.run(&crate::ExplainRequest::new(&train, &test, group)).unwrap(), train)
    }

    #[test]
    fn levels_markdown_has_one_row_per_level() {
        let (r, _) = report();
        let md = r.levels_markdown();
        assert_eq!(md.lines().count(), 2 + r.levels.len());
        assert!(md.contains("rule4"));
    }

    #[test]
    fn evaluated_csv_parses_line_per_subset() {
        let (r, train) = report();
        let csv = r.evaluated_csv(train.schema());
        assert_eq!(csv.lines().count(), 1 + r.evaluated.len());
        // Every data line has 4 commas outside the quoted pattern... at
        // minimum, starts with a level digit and contains a quote.
        for line in csv.lines().skip(1) {
            assert!(line.starts_with('1') || line.starts_with('2'));
            assert!(line.contains('"'));
        }
    }

    #[test]
    fn full_markdown_is_a_document() {
        let (r, train) = report();
        let md = r.to_full_markdown(train.schema());
        assert!(md.starts_with("# FUME audit report"));
        assert!(md.contains("## Top-"));
        assert!(md.contains("## Lattice exploration"));
        assert!(md.contains("statistical parity"));
    }
}
