//! The paper's baseline **DropUnprivUnfavor** (§6.1.4): retrain after
//! removing every training instance where the unprivileged group received
//! the unfavorable outcome.

use fume_fairness::FairnessMetric;
use fume_forest::{DareConfig, DareForest, PredictPlan};
use fume_tabular::{Classifier, Dataset, GroupSpec};

/// Outcome of the DropUnprivUnfavor baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// Fraction of training data removed.
    pub removed_fraction: f64,
    /// `|F|` of the original model on the test data.
    pub bias_before: f64,
    /// `|F|` after removal + retraining.
    pub bias_after: f64,
    /// Parity reduction achieved (can be negative when the removal
    /// overshoots and flips the disparity, as the paper observes on SQF).
    pub parity_reduction: f64,
    /// Test accuracy before.
    pub accuracy_before: f64,
    /// Test accuracy after.
    pub accuracy_after: f64,
}

/// Runs DropUnprivUnfavor: remove all `(protected, unfavorable)` training
/// rows, retrain with the same hyperparameters, and measure the fairness
/// and accuracy change on `test`.
pub fn drop_unpriv_unfavor(
    train: &Dataset,
    test: &Dataset,
    group: GroupSpec,
    metric: FairnessMetric,
    forest_cfg: &DareConfig,
) -> BaselineResult {
    // Each trained model is scored twice over the full test set (bias
    // and accuracy); one plan compile per model serves both passes,
    // bitwise identical to scoring the forest directly.
    let original = DareForest::fit(train, forest_cfg.clone());
    let original_plan = PredictPlan::compile(&original);
    let bias_before = metric.bias(&original_plan, test, group);
    let accuracy_before = original_plan.accuracy(test);

    let removed: Vec<u32> = (0..train.num_rows() as u32)
        .filter(|&r| !train.is_privileged(r as usize, group) && !train.label(r as usize))
        .collect();
    let surviving: Vec<u32> = (0..train.num_rows() as u32)
        .filter(|&r| train.is_privileged(r as usize, group) || train.label(r as usize))
        .collect();
    let removed_fraction = removed.len() as f64 / train.num_rows().max(1) as f64;

    let retrained = DareForest::fit_on(train, surviving, forest_cfg.clone());
    let retrained_plan = PredictPlan::compile(&retrained);
    let bias_after = metric.bias(&retrained_plan, test, group);
    let accuracy_after = retrained_plan.accuracy(test);

    let parity_reduction = if bias_before <= f64::EPSILON {
        0.0
    } else {
        (bias_before - bias_after) / bias_before
    };

    BaselineResult {
        removed_fraction,
        bias_before,
        bias_after,
        parity_reduction,
        accuracy_before,
        accuracy_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    #[test]
    fn baseline_removes_protected_unfavorable_rows() {
        let (data, group) = planted_toy().generate_scaled(0.5, 91).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 91).unwrap();
        let r = drop_unpriv_unfavor(
            &train,
            &test,
            group,
            FairnessMetric::StatisticalParity,
            &DareConfig::small(91),
        );
        // The protected-unfavorable fraction of the toy is roughly
        // protected (50%) × unfavorable (≈55%).
        assert!(
            (0.15..0.45).contains(&r.removed_fraction),
            "removed {}",
            r.removed_fraction
        );
        assert!(r.bias_before > 0.0);
        assert!((0.0..=1.0).contains(&r.accuracy_after));
    }

    #[test]
    fn removing_protected_negatives_shifts_disparity_up() {
        // With all protected-unfavorable examples gone, the retrained
        // model sees a protected group with only positive labels — its
        // predictions for that group shift favorably (possibly
        // overshooting, as the paper reports for SQF).
        let (data, group) = planted_toy().generate_scaled(0.5, 92).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 92).unwrap();
        let metric = FairnessMetric::StatisticalParity;
        let r = drop_unpriv_unfavor(&train, &test, group, metric, &DareConfig::small(92));
        // Signed check: retrain and compare selection-rate difference.
        let surviving: Vec<u32> = (0..train.num_rows() as u32)
            .filter(|&x| train.is_privileged(x as usize, group) || train.label(x as usize))
            .collect();
        let retrained = DareForest::fit_on(&train, surviving, DareConfig::small(92));
        let f_after = metric.evaluate(&retrained, &test, group);
        let original = DareForest::fit(&train, DareConfig::small(92));
        let f_before = metric.evaluate(&original, &test, group);
        assert!(
            f_after > f_before,
            "protected selection rate should rise: {f_before} -> {f_after}"
        );
        assert_eq!(r.bias_after, f_after.abs());
    }
}
