//! A SliceFinder/SliceLine-style comparator (paper §7, "Debugging
//! Data-based Systems").
//!
//! Those systems find predicate *slices of the data where the model
//! performs worst* using additive performance metrics (error counts /
//! log loss). They detect problematic regions but cannot attribute a
//! *fairness* violation to training data: fairness metrics are not
//! additive over rows, and a slice where the model errs is not the same
//! thing as a training subset whose removal reduces bias. This module
//! implements the slice-finding approach over the same lattice so the two
//! can be compared head-to-head (see `tests/` and the workspace
//! examples).

use fume_lattice::{search, EvalItem, Predicate, SearchOutcome, SearchParams};
use fume_tabular::{Classifier, Dataset};

/// A slice where the model underperforms.
#[derive(Debug, Clone, PartialEq)]
pub struct Slice {
    /// The slice's predicate, rendered.
    pub pattern: String,
    /// The underlying predicate.
    pub predicate: Predicate,
    /// Fraction of evaluation rows in the slice.
    pub support: f64,
    /// Model error rate inside the slice.
    pub slice_error: f64,
    /// Model error rate outside the slice.
    pub rest_error: f64,
}

impl Slice {
    /// SliceFinder's effect size analogue: how much worse the slice is
    /// than the rest of the data.
    pub fn error_gap(&self) -> f64 {
        self.slice_error - self.rest_error
    }
}

/// Finds the top-k slices of `eval_data` (by error-rate gap) where
/// classifier `h` performs worse than on the rest, searching the same
/// predicate lattice FUME uses. Because error counts are additive, no
/// model updates are needed — one prediction pass suffices, which is
/// exactly why slice finding is cheap but cannot answer FUME's question.
pub fn find_slices<C: Classifier + ?Sized>(
    h: &C,
    eval_data: &Dataset,
    params: &SearchParams,
    k: usize,
) -> Vec<Slice> {
    let preds = h.predict(eval_data);
    let errors: Vec<bool> = preds
        .iter()
        .zip(eval_data.labels())
        .map(|(p, y)| p != y)
        .collect();
    let total_errors = errors.iter().filter(|&&e| e).count() as f64;
    let n = eval_data.num_rows() as f64;

    // Score a subset by its error gap; the lattice driver handles the
    // level-wise expansion and pruning exactly as for FUME.
    let evaluator = |_p: &Predicate, rows: &[u32]| -> f64 {
        if rows.is_empty() || rows.len() == eval_data.num_rows() {
            return 0.0;
        }
        let slice_errors =
            rows.iter().filter(|&&r| errors[r as usize]).count() as f64;
        let slice_error = slice_errors / rows.len() as f64;
        let rest_error = (total_errors - slice_errors) / (n - rows.len() as f64);
        slice_error - rest_error
    };
    let outcome: SearchOutcome =
        // fume-lint: allow(F001) -- the error-gap evaluator divides by counts guarded above to be non-zero, so its scores are always finite
        search(eval_data, params, &evaluator).expect("slice evaluator is finite");

    outcome
        .top_k(k)
        .into_iter()
        .map(|s| {
            let slice_errors =
                s.rows.iter().filter(|&&r| errors[r as usize]).count() as f64;
            let slice_error = if s.rows.is_empty() {
                0.0
            } else {
                slice_errors / s.rows.len() as f64
            };
            let rest_n = n - s.rows.len() as f64;
            let rest_error = if rest_n <= 0.0 {
                0.0
            } else {
                (total_errors - slice_errors) / rest_n
            };
            Slice {
                pattern: s.predicate.render(eval_data.schema()),
                predicate: s.predicate.clone(),
                support: s.support,
                slice_error,
                rest_error,
            }
        })
        .collect()
}

/// The number of prediction-only evaluations a slice search performs —
/// for the efficiency comparison against FUME's unlearning count.
pub fn slice_search_evaluations(
    eval_data: &Dataset,
    params: &SearchParams,
) -> usize {
    let evaluator = |_p: &Predicate, _rows: &[u32]| 1.0;
    let items_counter = |items: &[EvalItem<'_>]| items.len();
    let _ = items_counter; // documentation aid
    // fume-lint: allow(F001) -- the constant evaluator is trivially finite
    search(eval_data, params, &evaluator).expect("constant evaluator is finite").evaluations
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_lattice::{SupportRange};
    use fume_tabular::classifier::ConstantClassifier;
    use fume_tabular::{Attribute, Schema};
    use std::sync::Arc;

    /// Model errs exactly where attr0 == 1.
    struct ErrOnOne;
    impl Classifier for ErrOnOne {
        fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
            // Predict the label, except flip it when attr0 == 1.
            (0..data.num_rows())
                .map(|r| {
                    let y = data.label(r);
                    let flip = data.code(r, 0) == 1;
                    if y != flip {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        }
    }

    fn data() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("bad_region", vec!["no".into(), "yes".into(), "other".into()]),
                Attribute::categorical("noise", vec!["a".into(), "b".into()]),
            ])
            .unwrap(),
        );
        let n = 300;
        let c0: Vec<u16> = (0..n).map(|i| (i % 3) as u16).collect();
        // Stride 6 keeps the noise column independent of the label's
        // parity pattern (each block of 6 holds 3 odd and 3 even rows).
        let c1: Vec<u16> = (0..n).map(|i| ((i / 6) % 2) as u16).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        Dataset::new(schema, vec![c0, c1], labels).unwrap()
    }

    fn params() -> SearchParams {
        SearchParams::new(SupportRange::new(0.05, 0.6).unwrap(), 2).unwrap()
    }

    #[test]
    fn finds_the_planted_bad_slice() {
        let d = data();
        let slices = find_slices(&ErrOnOne, &d, &params(), 3);
        assert!(!slices.is_empty());
        let top = &slices[0];
        assert!(top.pattern.contains("bad_region = yes"), "{}", top.pattern);
        assert!((top.slice_error - 1.0).abs() < 1e-12);
        assert!(top.rest_error.abs() < 1e-12);
        assert!((top.error_gap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_model_yields_no_positive_slices() {
        let d = data();
        // A constant classifier that errs uniformly: gaps hover near zero,
        // so nothing should exceed them meaningfully.
        let slices = find_slices(&ConstantClassifier { proba: 1.0 }, &d, &params(), 5);
        for s in &slices {
            assert!(s.error_gap() <= 0.25, "{} gap {}", s.pattern, s.error_gap());
        }
    }

    #[test]
    fn evaluation_count_is_search_bound() {
        let d = data();
        let evals = slice_search_evaluations(&d, &params());
        assert!(evals > 0);
        // Level 1 has 5 literals; level 2 at most 6 cross-attr pairs.
        assert!(evals <= 11, "{evals}");
    }
}
