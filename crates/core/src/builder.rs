//! Fluent construction of a [`Fume`] instance.
//!
//! FUME runs are parameterized along several axes — fairness metric,
//! DaRE forest hyperparameters, lattice search bounds, parallelism —
//! that historically had to be assembled by hand through
//! [`FumeConfig`]'s field setters. [`Fume::builder`] consolidates them
//! into one fluent entry point:
//!
//! ```
//! use fume_core::prelude::*;
//! use fume_tabular::datasets::planted_toy;
//! use fume_tabular::split::train_test_split;
//!
//! let (data, group) = planted_toy().generate_scaled(0.5, 3).unwrap();
//! let (train, test) = train_test_split(&data, 0.3, 3).unwrap();
//! let fume = Fume::builder()
//!     .metric(FairnessMetric::StatisticalParity)
//!     .forest(DareConfig::small(3))
//!     .support(SupportRange::new(0.02, 0.25).unwrap())
//!     .top_k(5)
//!     .build();
//! let report = fume.run(&ExplainRequest::new(&train, &test, group)).unwrap();
//! assert!(!report.top_k.is_empty());
//! ```

use fume_fairness::FairnessMetric;
use fume_forest::DareConfig;
use fume_lattice::{LiteralGen, RuleToggles, SupportRange};

use crate::algorithm::Fume;
use crate::config::FumeConfig;

/// Fluent builder for [`Fume`], created by [`Fume::builder`].
///
/// Every knob defaults to the paper's configuration
/// ([`FumeConfig::default`]); set only what differs.
#[derive(Debug, Clone, Default)]
#[must_use = "a builder does nothing until .build() is called"]
pub struct FumeBuilder {
    config: FumeConfig,
}

impl FumeBuilder {
    /// The fairness notion whose violation is being explained.
    pub fn metric(mut self, metric: FairnessMetric) -> Self {
        self.config.metric = metric;
        self
    }

    /// Rule 2's support range.
    pub fn support(mut self, support: SupportRange) -> Self {
        self.config.support = support;
        self
    }

    /// Rule 3's interpretability cap (max literals per subset).
    pub fn max_literals(mut self, eta: usize) -> Self {
        self.config.max_literals = eta;
        self
    }

    /// How many subsets to report (the paper uses `k = 5`).
    pub fn top_k(mut self, k: usize) -> Self {
        self.config.top_k = k;
        self
    }

    /// Hyperparameters of the DaRE forest.
    pub fn forest(mut self, forest: DareConfig) -> Self {
        self.config.forest = forest;
        self
    }

    /// Pruning-rule ablation switches.
    pub fn toggles(mut self, toggles: RuleToggles) -> Self {
        self.config.toggles = toggles;
        self
    }

    /// Attributes excluded from explanations (e.g. the protected
    /// attribute itself).
    pub fn exclude_attrs(mut self, attrs: Vec<u16>) -> Self {
        self.config.exclude_attrs = attrs;
        self
    }

    /// Level-1 literal generation strategy. Selecting
    /// [`LiteralGen::WithRanges`] also enables redundancy pruning, as
    /// [`FumeConfig::with_literal_gen`] does.
    pub fn literal_gen(mut self, gen: LiteralGen) -> Self {
        self.config = self.config.with_literal_gen(gen);
        self
    }

    /// Worker threads for parallel subset evaluation (each worker leases
    /// one scratch forest from the unlearn-eval pool). Defaults to all
    /// available cores.
    pub fn n_jobs(mut self, jobs: usize) -> Self {
        self.config.n_jobs = Some(jobs);
        self
    }

    /// Directory to checkpoint the run into (persisted forest + search
    /// state at every lattice-level boundary). A crashed run restarts
    /// from the last completed level via [`Fume::resume`].
    pub fn checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.checkpoint_dir = Some(dir.into());
        self
    }

    /// The accumulated [`FumeConfig`], for callers that want the raw
    /// configuration rather than a [`Fume`] instance.
    pub fn into_config(self) -> FumeConfig {
        self.config
    }

    /// Finishes the builder.
    pub fn build(self) -> Fume {
        Fume::new(self.config)
    }
}

impl Fume {
    /// Starts a fluent builder with the paper's default configuration —
    /// the preferred way to construct a [`Fume`] instance.
    #[must_use = "the builder must be consumed by .build()"]
    pub fn builder() -> FumeBuilder {
        FumeBuilder::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_equal_default_config() {
        assert_eq!(Fume::builder().build().config(), &FumeConfig::default());
    }

    #[test]
    fn builder_sets_every_knob() {
        let toggles = RuleToggles { prune_redundant: true, ..RuleToggles::default() };
        let cfg = Fume::builder()
            .metric(FairnessMetric::PredictiveParity)
            .support(SupportRange::new(0.01, 0.5).unwrap())
            .max_literals(3)
            .top_k(7)
            .forest(DareConfig::small(9))
            .toggles(toggles)
            .exclude_attrs(vec![2, 4])
            .n_jobs(2)
            .checkpoint_dir("/tmp/fume-ckpt")
            .into_config();
        assert_eq!(cfg.metric, FairnessMetric::PredictiveParity);
        assert!((cfg.support.min - 0.01).abs() < 1e-12);
        assert_eq!(cfg.max_literals, 3);
        assert_eq!(cfg.top_k, 7);
        assert_eq!(cfg.forest, DareConfig::small(9));
        assert!(cfg.toggles.prune_redundant);
        assert_eq!(cfg.exclude_attrs, vec![2, 4]);
        assert_eq!(cfg.n_jobs, Some(2));
        assert_eq!(
            cfg.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/fume-ckpt"))
        );
    }

    #[test]
    fn literal_gen_with_ranges_enables_redundancy_pruning() {
        let cfg = Fume::builder().literal_gen(LiteralGen::WithRanges).into_config();
        assert_eq!(cfg.literal_gen, LiteralGen::WithRanges);
        assert!(cfg.toggles.prune_redundant);
    }
}
