//! Removal methods `R(A(D), D, T)`: ways to obtain "the model had it been
//! trained without subset T" (paper §3).
//!
//! The trait is *scoped*: [`RemovalMethod::with_removed`] hands the
//! counterfactual model to a closure instead of returning it, so
//! implementations can reuse long-lived scratch state (lease → delete →
//! measure → roll back) without callers being able to retain or mutate
//! the leased model.
//!
//! Implementations:
//! * [`DareRemoval`] — FUME's fast path: each worker leases a scratch
//!   forest from a pool (cloned once, not once per subset), journals the
//!   deletion, measures, then rolls the scratch back byte-identically;
//! * [`DareCloneRemoval`] — the pre-pool shape: clone the deployed
//!   forest per call and batch-delete (kept as the bench baseline);
//! * [`RetrainRemoval`] — the naive gold standard: fit a fresh forest on
//!   `D \ T` from scratch (ground truth in the paper's Figure 3 and the
//!   efficiency baseline);
//! * [`GbdtRetrainRemoval`] — model-agnostic retraining for GBDTs.

use std::sync::Arc;

use fume_obs::sync::{TrackedGuard, TrackedMutex};

use fume_fairness::{FairnessMetric, GroupConfusion};
use fume_forest::{DareConfig, DareForest, Gbdt, GbdtConfig, PredictPlan, RoutingIndex};
use fume_tabular::{float, Classifier, Dataset, GroupSpec};

/// One bias measurement, fully specified: which metric, over which
/// held-out rows, against which sensitive-group split. FUME's hot loop
/// only ever asks removal methods this one question, so bundling it lets
/// [`RemovalMethod::bias_removed`] answer *incrementally* (re-predict
/// only journal-dirty rows, patch the confusion tally) while the
/// closure-based [`RemovalMethod::with_removed`] stays fully general.
#[derive(Clone, Copy)]
pub struct BiasEval<'a> {
    /// The fairness metric to measure.
    pub metric: FairnessMetric,
    /// The held-out evaluation rows.
    pub test: &'a Dataset,
    /// The sensitive-group split.
    pub group: GroupSpec,
}

impl BiasEval<'_> {
    /// `|F(h, test)|` computed the reference way: a full prediction pass
    /// over every test row and a fresh confusion tally.
    pub fn full(&self, model: &dyn Classifier) -> f64 {
        self.metric.bias(model, self.test, self.group)
    }
}

/// Produces a model equivalent to training on `D \ subset` and lends it
/// to a closure.
pub trait RemovalMethod: Sync {
    /// Runs `f` against the model with `subset` (training-row ids)
    /// removed, returning whatever `f` computes. The deployed model must
    /// be observably unchanged when this returns; the counterfactual
    /// model only lives for the duration of `f`, which lets
    /// implementations lease reusable scratch state instead of
    /// materialising a fresh model per call.
    fn with_removed<T>(&self, subset: &[u32], f: impl FnOnce(&dyn Classifier) -> T) -> T;

    /// The bias of the model with `subset` removed. Semantically this is
    /// exactly `self.with_removed(subset, |m| eval.full(m))` — and that
    /// is the default — but an implementation may override it with an
    /// incremental path (e.g. [`DareRemoval`]'s journal-driven dirty-row
    /// reuse) **only if** the override is bitwise identical to the full
    /// recompute on every input; `FUME_DEEPCHECK=1` cross-checks the
    /// claim per call in debug builds.
    fn bias_removed(&self, subset: &[u32], eval: &BiasEval<'_>) -> f64 {
        self.with_removed(subset, |model| eval.full(model))
    }

    /// One-time warm-up before a batch evaluation fans out over
    /// `workers` threads — e.g. pre-populating a scratch pool so no
    /// worker pays a cold clone mid-loop. Takes `&self` (interior
    /// mutability) so a long-lived removal method can be warmed once and
    /// then shared across concurrent runs. The default does nothing.
    fn warm(&self, workers: usize) {
        let _ = workers;
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Object-safe mirror of [`RemovalMethod`], for callers that hold a
/// removal method behind `&dyn` — e.g. a long-lived serving engine that
/// shares one warm [`DareRemoval`] pool across concurrent requests, or
/// an [`ExplainRequest`](crate::ExplainRequest) carrying a custom
/// method. `with_removed` is generic over the closure's return type and
/// therefore not dyn-compatible; this trait narrows the closure to
/// `&mut dyn FnMut` with no return value, and a blanket impl bridges
/// every `RemovalMethod` automatically — implement only the generic
/// trait, never this one.
pub trait RemovalDyn: Sync {
    /// Type-erased [`RemovalMethod::with_removed`]: runs `f` against the
    /// model with `subset` removed. `f` is invoked exactly once.
    fn with_removed_dyn(&self, subset: &[u32], f: &mut dyn FnMut(&dyn Classifier));

    /// Type-erased [`RemovalMethod::bias_removed`] — already first-order,
    /// mirrored so a shared method keeps its incremental fast path across
    /// the `&dyn` boundary.
    fn bias_removed_dyn(&self, subset: &[u32], eval: &BiasEval<'_>) -> f64;

    /// Type-erased [`RemovalMethod::warm`].
    fn warm_dyn(&self, workers: usize);

    /// Type-erased [`RemovalMethod::name`].
    fn name_dyn(&self) -> &'static str;
}

impl<R: RemovalMethod> RemovalDyn for R {
    fn with_removed_dyn(&self, subset: &[u32], f: &mut dyn FnMut(&dyn Classifier)) {
        self.with_removed(subset, |model| f(model));
    }

    fn bias_removed_dyn(&self, subset: &[u32], eval: &BiasEval<'_>) -> f64 {
        self.bias_removed(subset, eval)
    }

    fn warm_dyn(&self, workers: usize) {
        self.warm(workers);
    }

    fn name_dyn(&self) -> &'static str {
        self.name()
    }
}

/// Adapts a shared `&dyn RemovalDyn` back into a [`RemovalMethod`], so
/// one long-lived removal method (e.g. a serving engine's warm
/// [`DareRemoval`] pool) can be lent to many concurrent runs. The
/// generic closure is threaded through the dyn boundary by stashing its
/// result in an `Option`.
#[derive(Clone, Copy)]
pub struct SharedAdapter<'a>(pub &'a dyn RemovalDyn);

impl RemovalMethod for SharedAdapter<'_> {
    fn with_removed<T>(&self, subset: &[u32], f: impl FnOnce(&dyn Classifier) -> T) -> T {
        let mut f = Some(f);
        let mut out = None;
        self.0.with_removed_dyn(subset, &mut |model| {
            if let Some(f) = f.take() {
                out = Some(f(model));
            }
        });
        // fume-lint: allow(F001) -- RemovalDyn's contract is that the closure runs exactly once, and the blanket impl (the only intended implementor) guarantees it
        out.expect("RemovalDyn::with_removed_dyn must invoke the closure exactly once")
    }

    fn bias_removed(&self, subset: &[u32], eval: &BiasEval<'_>) -> f64 {
        // Forward instead of taking the generic default, so a shared
        // warm pool keeps its incremental path (serve's case).
        self.0.bias_removed_dyn(subset, eval)
    }

    fn warm(&self, workers: usize) {
        self.0.warm_dyn(workers);
    }

    fn name(&self) -> &'static str {
        self.0.name_dyn()
    }
}

/// Machine unlearning via DaRE with a scratch-forest pool: workers lease
/// a long-lived scratch forest, journal-delete the subset into it,
/// measure, and roll back — zero forest clones in steady state.
#[derive(Debug)]
pub struct DareRemoval<'a> {
    forest: &'a DareForest,
    train: &'a Dataset,
    pool: TrackedMutex<Vec<DareForest>>,
    /// Lazily built incremental-evaluation state for the one
    /// `(test, group)` pair the current run measures; replaced if a
    /// different evaluation shows up. Behind its own lock so concurrent
    /// workers share a single build.
    incr: TrackedMutex<Option<Arc<IncrState>>>,
}

/// Poison recovery for the scratch pool — see [`DareRemoval::pool_guard`].
fn reset_pool(pool: &mut Vec<DareForest>) {
    fume_obs::counter!("fume.scratch.poison_recoveries", 1);
    pool.clear();
}

/// Poison recovery for the incremental-eval state: drop it and let the
/// next call rebuild from the deployed forest (the state is a pure cache,
/// so losing it costs one rebuild, never correctness).
fn reset_incr(state: &mut Option<Arc<IncrState>>) {
    *state = None;
}

/// Everything [`DareRemoval::bias_removed`] needs to answer a bias query
/// by re-predicting only journal-dirty rows: the routing index over the
/// deployed forest, the deployed model's hard predictions, the confusion
/// tally they produce, and the group mask — all for one fixed
/// `(test, group)` evaluation.
///
/// Scratch forests are byte-identical to the deployed forest between
/// rollbacks (debug-asserted per eval), so one index built against the
/// deployed forest names dirty rows for every lease.
#[derive(Debug)]
struct IncrState {
    /// Identity of the `test` dataset this state was built for. Stored as
    /// an address (datasets are borrowed for the estimator's lifetime and
    /// never move mid-run); `n_rows` and `group` back the check, and
    /// `FUME_DEEPCHECK=1` re-derives every answer from scratch.
    test_ptr: usize,
    n_rows: usize,
    group: GroupSpec,
    index: RoutingIndex,
    /// The deployed model's hard prediction per test row.
    base_preds: Vec<bool>,
    /// The tally of `base_preds` — the starting point every eval patches.
    base_confusion: GroupConfusion,
    /// `test.privileged_mask(group)`, precomputed.
    privileged: Vec<bool>,
}

impl IncrState {
    fn build(forest: &DareForest, eval: &BiasEval<'_>) -> Self {
        // One plan compile feeds both full passes over the test set: the
        // routing-index build and the deployed model's base predictions.
        // The plan kernel is bitwise identical to the pointer walk, so
        // the cached contributions and predictions are exactly what the
        // reference path would produce.
        let plan = PredictPlan::compile(forest);
        let index = RoutingIndex::build_with_plan(&plan, eval.test);
        let base_preds = plan.predict(eval.test);
        let privileged = eval.test.privileged_mask(eval.group);
        let base_confusion =
            GroupConfusion::tally(&base_preds, eval.test.labels(), &privileged);
        Self {
            test_ptr: eval.test as *const Dataset as usize,
            n_rows: eval.test.num_rows(),
            group: eval.group,
            index,
            base_preds,
            base_confusion,
            privileged,
        }
    }

    fn matches(&self, eval: &BiasEval<'_>) -> bool {
        self.test_ptr == eval.test as *const Dataset as usize
            && self.n_rows == eval.test.num_rows()
            && self.group == eval.group
    }
}

impl<'a> DareRemoval<'a> {
    /// Wraps a trained forest and its training data. The scratch pool
    /// starts empty and fills on first use (or via
    /// [`RemovalMethod::warm`]).
    pub fn new(forest: &'a DareForest, train: &'a Dataset) -> Self {
        Self {
            forest,
            train,
            pool: TrackedMutex::with_recovery("core.scratch_pool", Vec::new(), reset_pool),
            incr: TrackedMutex::with_recovery("core.incr_state", None, reset_incr),
        }
    }

    /// Number of scratch forests currently resting in the pool.
    pub fn pooled_scratch(&self) -> usize {
        self.pool_guard().len()
    }

    /// Locks the pool, recovering explicitly from poisoning.
    ///
    /// The lock is only held for a push/pop, but a worker can still die
    /// between leasing and releasing — its scratch forest is then lost
    /// mid-journal and never returned. The forests *resting* in the pool
    /// were each released clean (rollback verified by the debug
    /// assertion in [`RemovalMethod::with_removed`]), yet distinguishing
    /// "poisoned while resting" from "poisoned mid-push" is not worth
    /// reasoning about: on poison [`reset_pool`] clears the pool and
    /// lets subsequent leases re-clone cold, trading a few clones for
    /// certainty.
    fn pool_guard(&self) -> TrackedGuard<'_, Vec<DareForest>> {
        self.pool.lock()
    }

    fn lease(&self) -> DareForest {
        fume_obs::counter!("fume.scratch.leases", 1);
        match self.pool_guard().pop() {
            Some(scratch) => scratch,
            None => {
                fume_obs::counter!("fume.scratch.cold_clones", 1);
                self.forest.clone()
            }
        }
    }

    fn release(&self, scratch: DareForest) {
        let mut pool = self.pool_guard();
        // Crash site *while the pool lock is held*: lets the resumability
        // suite prove the poison-recovery policy (reset_pool) works.
        fume_obs::fault::fault_point("scratch-pool-release");
        pool.push(scratch);
    }

    /// Builds the incremental-evaluation state for `eval` ahead of the
    /// first bias query, so no request pays the cold routing-index +
    /// base-prediction build mid-loop (a serving engine calls this right
    /// after [`RemovalMethod::warm`]). A no-op when the state cannot
    /// exist (empty forest or test set) or is already built for this
    /// evaluation.
    pub fn prewarm_incremental(&self, eval: &BiasEval<'_>) {
        let _ = self.incr_state(eval);
    }

    /// The incremental-eval state for `eval`, building (or replacing) it
    /// under the lock so concurrent workers pay for one build. `None`
    /// when no incremental state can exist — an empty forest or an empty
    /// test set, where the full path is the only correct answer.
    fn incr_state(&self, eval: &BiasEval<'_>) -> Option<Arc<IncrState>> {
        if self.forest.trees().is_empty() || eval.test.is_empty() {
            return None;
        }
        let mut guard = self.incr.lock();
        match guard.as_ref() {
            Some(state) if state.matches(eval) => Some(Arc::clone(state)),
            _ => {
                let built = Arc::new(IncrState::build(self.forest, eval));
                *guard = Some(Arc::clone(&built));
                Some(built)
            }
        }
    }
}

impl RemovalMethod for DareRemoval<'_> {
    fn with_removed<T>(&self, subset: &[u32], f: impl FnOnce(&dyn Classifier) -> T) -> T {
        let mut scratch = self.lease();
        // Lattice selections come from the training universe the forest
        // was fitted on, so the per-call presence scan is skipped.
        let journal = scratch.delete_journaled(subset, self.train);
        fume_obs::counter!("fume.journal.bytes", journal.approx_bytes());
        let out = f(&scratch);
        let restored = scratch.rollback(journal);
        fume_obs::counter!("fume.rollback.nodes_restored", restored);
        debug_assert_eq!(&scratch, self.forest, "rollback must restore the snapshot");
        fume_forest::deepcheck::check_forest(&scratch, self.train, "rollback");
        self.release(scratch);
        out
    }

    /// The incremental fast path: the journal from `delete_journaled`
    /// names every leaf and subtree the deletion touched; the routing
    /// index maps those edits back to exactly the `(tree, row)`
    /// contributions that changed, with their replacement values (one
    /// leaf lookup per edited leaf, one single-tree walk per rebuilt-cone
    /// row, bit-identical results filtered out at the source). Every
    /// clean contribution is reused from the cache, which a fresh walk
    /// would reproduce bit-for-bit. Each dirty row's ensemble vote is
    /// then re-summed in tree order and divided once, the exact float
    /// sequence of [`DareForest::predict_row`], and the confusion tally
    /// is patched via integer [`GroupConfusion::reclassify`] deltas. The
    /// resulting ρ is bitwise identical to a full recompute —
    /// `FUME_DEEPCHECK=1` re-derives it from scratch per call in debug
    /// builds to prove it.
    fn bias_removed(&self, subset: &[u32], eval: &BiasEval<'_>) -> f64 {
        let Some(state) = self.incr_state(eval) else {
            // Empty forest or empty test set: nothing to index, fall back
            // loudly to the reference path.
            fume_obs::counter!("fume.incr.full_fallbacks", 1);
            return self.with_removed(subset, |model| eval.full(model));
        };
        let mut scratch = self.lease();
        let journal = scratch.delete_journaled(subset, self.train);
        fume_obs::counter!("fume.journal.bytes", journal.approx_bytes());

        let dirty = state.index.dirty_rows(&journal, &scratch, eval.test);
        let reused = state.n_rows - dirty.rows.len();
        fume_obs::counter!("fume.incr.dirty_rows", dirty.rows.len());
        fume_obs::counter!("fume.incr.reused_rows", reused);
        fume_obs::histogram!("fume.incr.reuse_ratio_pct", reused * 100 / state.n_rows);

        // Re-sum each dirty row's ensemble vote in tree order — the exact
        // predict_row float sequence. Trees outer, rows inner: every
        // row's accumulator takes tree t's term before tree t+1's, each
        // tree's cached contributions stream from one contiguous slice,
        // and the tree's changed contributions merge in by sorted row id.
        let n_trees = state.index.num_trees();
        let mut acc = vec![0.0f64; dirty.rows.len()];
        for t in 0..n_trees {
            let pairs = &dirty.fresh[t];
            let cached = state.index.tree_probas(t);
            let mut pi = 0;
            for (i, &row) in dirty.rows.iter().enumerate() {
                acc[i] += if pi < pairs.len() && pairs[pi].0 == row {
                    let v = pairs[pi].1;
                    pi += 1;
                    v
                } else {
                    cached[row as usize]
                };
            }
            debug_assert_eq!(pi, pairs.len(), "every fresh contribution must be consumed");
        }

        let k = n_trees as f64;
        let labels = eval.test.labels();
        let mut confusion = state.base_confusion;
        for (i, &row) in dirty.rows.iter().enumerate() {
            let row = row as usize;
            let new_pred = float::positive_class(acc[i] / k);
            confusion.reclassify(
                state.privileged[row],
                labels[row],
                state.base_preds[row],
                new_pred,
            );
        }
        // The incremental path answers the same question one
        // `metric.evaluate` call would, so it pays the same counter.
        fume_obs::counter!("fairness.metric_evals", 1);
        let bias = eval.metric.from_confusion(&confusion).abs();

        if fume_forest::deepcheck::enabled() {
            // Cross-check against the reference path *before* rollback,
            // while the scratch forest still is the counterfactual model.
            let full = eval.full(&scratch);
            assert!(
                float::bit_eq(bias, full),
                "FUME_DEEPCHECK: incremental bias {bias:.17} != full recompute \
                 {full:.17} for a {}-row subset ({} dirty test rows)",
                subset.len(),
                dirty.rows.len(),
            );
        }

        let restored = scratch.rollback(journal);
        fume_obs::counter!("fume.rollback.nodes_restored", restored);
        debug_assert_eq!(&scratch, self.forest, "rollback must restore the snapshot");
        fume_forest::deepcheck::check_forest(&scratch, self.train, "rollback");
        self.release(scratch);
        bias
    }

    fn warm(&self, workers: usize) {
        let mut pool = self.pool_guard();
        while pool.len() < workers.max(1) {
            pool.push(self.forest.clone());
        }
    }

    fn name(&self) -> &'static str {
        "DaRE unlearning"
    }
}

/// The pre-pool DaRE path: clone the deployed forest per call and
/// batch-delete the subset. Kept as the baseline the pooled path is
/// benchmarked (and byte-identity-tested) against.
#[derive(Debug, Clone, Copy)]
pub struct DareCloneRemoval<'a> {
    forest: &'a DareForest,
    train: &'a Dataset,
}

impl<'a> DareCloneRemoval<'a> {
    /// Wraps a trained forest and its training data.
    pub fn new(forest: &'a DareForest, train: &'a Dataset) -> Self {
        Self { forest, train }
    }
}

impl RemovalMethod for DareCloneRemoval<'_> {
    fn with_removed<T>(&self, subset: &[u32], f: impl FnOnce(&dyn Classifier) -> T) -> T {
        let mut clone = self.forest.clone();
        clone.delete_unchecked(subset, self.train);
        f(&clone)
    }

    fn name(&self) -> &'static str {
        "DaRE unlearning (clone per eval)"
    }
}

/// The naive approach: retrain from scratch on the surviving rows with the
/// same hyperparameters and seed.
#[derive(Debug, Clone)]
pub struct RetrainRemoval<'a> {
    train: &'a Dataset,
    config: DareConfig,
}

impl<'a> RetrainRemoval<'a> {
    /// Wraps the training data and forest hyperparameters.
    pub fn new(train: &'a Dataset, config: DareConfig) -> Self {
        Self { train, config }
    }
}

fn complement(subset: &[u32], num_rows: usize) -> Vec<u32> {
    let mut keep = vec![true; num_rows];
    for &id in subset {
        keep[id as usize] = false;
    }
    (0..num_rows as u32).filter(|&r| keep[r as usize]).collect()
}

impl RemovalMethod for RetrainRemoval<'_> {
    fn with_removed<T>(&self, subset: &[u32], f: impl FnOnce(&dyn Classifier) -> T) -> T {
        let surviving = complement(subset, self.train.num_rows());
        // Retrains serially: the caller parallelizes across subsets.
        let cfg = DareConfig { n_jobs: Some(1), ..self.config.clone() };
        let model = DareForest::fit_on(self.train, surviving, cfg);
        f(&model)
    }

    fn name(&self) -> &'static str {
        "retraining from scratch"
    }
}

/// Model-agnostic removal for gradient-boosted trees: retrain on the
/// complement. GBDT trees are sequential (each fits the previous
/// ensemble's gradients), so a deletion invalidates every later tree and
/// retraining *is* the exact removal method — which is precisely why the
/// paper's fast path needs a model like DaRE, and why this impl exists:
/// it demonstrates §5.1's claim that FUME runs unchanged on any model by
/// swapping `EstimateAttribution`'s removal method.
#[derive(Debug, Clone)]
pub struct GbdtRetrainRemoval<'a> {
    train: &'a Dataset,
    config: GbdtConfig,
}

impl<'a> GbdtRetrainRemoval<'a> {
    /// Wraps the training data and GBDT hyperparameters.
    pub fn new(train: &'a Dataset, config: GbdtConfig) -> Self {
        Self { train, config }
    }
}

impl RemovalMethod for GbdtRetrainRemoval<'_> {
    fn with_removed<T>(&self, subset: &[u32], f: impl FnOnce(&dyn Classifier) -> T) -> T {
        let surviving = complement(subset, self.train.num_rows());
        let model = Gbdt::fit_on(self.train, surviving, self.config.clone());
        f(&model)
    }

    fn name(&self) -> &'static str {
        "GBDT retraining"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::datasets::planted_toy;

    #[test]
    fn dare_removal_does_not_mutate_deployed_model() {
        let (train, _) = planted_toy().generate_scaled(0.15, 61).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(61));
        let snapshot = forest.clone();
        let removal = DareRemoval::new(&forest, &train);
        let n = removal.with_removed(&[0, 1, 2, 3, 4], |model| {
            let _ = model.predict(&train);
            5u32
        });
        assert_eq!(forest, snapshot, "deployed model must be untouched");
        assert_eq!(n, 5);
        // The scratch forest was rolled back and returned to the pool.
        assert_eq!(removal.pooled_scratch(), 1);
    }

    #[test]
    fn scratch_pool_reuses_forests_across_calls() {
        let (train, _) = planted_toy().generate_scaled(0.15, 65).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(65).with_trees(5));
        let removal = DareRemoval::new(&forest, &train);
        removal.warm(2);
        assert_eq!(removal.pooled_scratch(), 2);
        for round in 0..4 {
            removal.with_removed(&[round, round + 10], |_| ());
            assert_eq!(removal.pooled_scratch(), 2, "pool must not grow or shrink");
        }
    }

    #[test]
    fn pooled_and_clone_paths_agree_exactly() {
        use fume_fairness::FairnessMetric;
        let (data, group) = planted_toy().generate_scaled(0.3, 66).unwrap();
        let (train, test) = fume_tabular::split::train_test_split(&data, 0.3, 66).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(66));
        let pooled = DareRemoval::new(&forest, &train);
        let cloning = DareCloneRemoval::new(&forest, &train);
        let metric = FairnessMetric::StatisticalParity;
        for subset in [vec![0u32, 3, 9], (0..30).collect::<Vec<u32>>()] {
            let a = pooled.with_removed(&subset, |m| metric.bias(m, &test, group));
            let b = cloning.with_removed(&subset, |m| metric.bias(m, &test, group));
            assert_eq!(a.to_bits(), b.to_bits(), "pool and clone paths must agree");
        }
    }

    #[test]
    fn retrain_removal_trains_on_complement() {
        let (train, _) = planted_toy().generate_scaled(0.15, 62).unwrap();
        let removal = RetrainRemoval::new(&train, DareConfig::small(62).with_trees(5));
        let n = removal.with_removed(&[0, 10, 20], |model| {
            model.predict(&train).len()
        });
        assert_eq!(n, train.num_rows());
    }

    #[test]
    fn both_methods_agree_closely_on_small_deletions() {
        use fume_fairness::FairnessMetric;
        let (data, group) = planted_toy().generate_scaled(0.5, 63).unwrap();
        let (train, test) =
            fume_tabular::split::train_test_split(&data, 0.3, 63).unwrap();
        let cfg = DareConfig::small(63);
        let forest = DareForest::fit(&train, cfg.clone());
        let dare = DareRemoval::new(&forest, &train);
        let retrain = RetrainRemoval::new(&train, cfg);
        let subset: Vec<u32> = (0..40).collect();
        let metric = FairnessMetric::StatisticalParity;
        let b_dare = dare.with_removed(&subset, |m| metric.bias(m, &test, group));
        let b_retrain = retrain.with_removed(&subset, |m| metric.bias(m, &test, group));
        assert!(
            (b_dare - b_retrain).abs() < 0.08,
            "unlearned bias {b_dare} vs retrained {b_retrain}"
        );
    }

    #[test]
    fn dyn_bridge_matches_generic_path() {
        use fume_fairness::FairnessMetric;
        let (data, group) = planted_toy().generate_scaled(0.3, 67).unwrap();
        let (train, test) = fume_tabular::split::train_test_split(&data, 0.3, 67).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(67));
        let removal = DareRemoval::new(&forest, &train);
        let erased: &dyn RemovalDyn = &removal;
        let metric = FairnessMetric::StatisticalParity;
        let subset = [0u32, 3, 9];
        let direct = removal.with_removed(&subset, |m| metric.bias(m, &test, group));
        let mut via_dyn = f64::NAN;
        erased.with_removed_dyn(&subset, &mut |m| via_dyn = metric.bias(m, &test, group));
        assert_eq!(direct.to_bits(), via_dyn.to_bits());
        erased.warm_dyn(3);
        assert_eq!(removal.pooled_scratch(), 3);
        assert_eq!(erased.name_dyn(), "DaRE unlearning");
    }

    #[test]
    fn names() {
        let (train, _) = planted_toy().generate_scaled(0.1, 64).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(64).with_trees(2));
        assert_eq!(DareRemoval::new(&forest, &train).name(), "DaRE unlearning");
        assert_eq!(
            DareCloneRemoval::new(&forest, &train).name(),
            "DaRE unlearning (clone per eval)"
        );
        assert_eq!(
            RetrainRemoval::new(&train, DareConfig::small(64)).name(),
            "retraining from scratch"
        );
    }
}
