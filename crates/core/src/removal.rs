//! Removal methods `R(A(D), D, T)`: ways to obtain "the model had it been
//! trained without subset T" (paper §3).
//!
//! Two implementations are provided:
//! * [`DareRemoval`] — machine unlearning on a DaRE forest (FUME's fast
//!   path): clone the trained forest, batch-delete the subset;
//! * [`RetrainRemoval`] — the naive gold standard: fit a fresh forest on
//!   `D \ T` from scratch (used as ground truth in the paper's Figure 3
//!   and as the efficiency baseline).

use fume_forest::{DareConfig, DareForest, Gbdt, GbdtConfig};
use fume_tabular::{Classifier, Dataset};

/// Produces a model equivalent to training on `D \ subset`.
pub trait RemovalMethod: Sync {
    /// The model type produced.
    type Model: Classifier;

    /// Returns the model with `subset` (training-row ids) removed.
    /// Must not mutate the deployed model.
    fn remove(&self, subset: &[u32]) -> Self::Model;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Machine unlearning via DaRE: clone the deployed forest and exactly
/// unlearn the subset.
#[derive(Debug, Clone, Copy)]
pub struct DareRemoval<'a> {
    forest: &'a DareForest,
    train: &'a Dataset,
}

impl<'a> DareRemoval<'a> {
    /// Wraps a trained forest and its training data.
    pub fn new(forest: &'a DareForest, train: &'a Dataset) -> Self {
        Self { forest, train }
    }
}

impl RemovalMethod for DareRemoval<'_> {
    type Model = DareForest;

    fn remove(&self, subset: &[u32]) -> DareForest {
        let mut clone = self.forest.clone();
        // Lattice selections come from the training universe the forest
        // was fitted on, so the per-call presence scan is skipped.
        clone.delete_unchecked(subset, self.train);
        clone
    }

    fn name(&self) -> &'static str {
        "DaRE unlearning"
    }
}

/// The naive approach: retrain from scratch on the surviving rows with the
/// same hyperparameters and seed.
#[derive(Debug, Clone)]
pub struct RetrainRemoval<'a> {
    train: &'a Dataset,
    config: DareConfig,
}

impl<'a> RetrainRemoval<'a> {
    /// Wraps the training data and forest hyperparameters.
    pub fn new(train: &'a Dataset, config: DareConfig) -> Self {
        Self { train, config }
    }
}

impl RemovalMethod for RetrainRemoval<'_> {
    type Model = DareForest;

    fn remove(&self, subset: &[u32]) -> DareForest {
        let mut keep = vec![true; self.train.num_rows()];
        for &id in subset {
            keep[id as usize] = false;
        }
        let surviving: Vec<u32> = (0..self.train.num_rows() as u32)
            .filter(|&r| keep[r as usize])
            .collect();
        // Retrains serially: the caller parallelizes across subsets.
        let cfg = DareConfig { n_jobs: Some(1), ..self.config.clone() };
        DareForest::fit_on(self.train, surviving, cfg)
    }

    fn name(&self) -> &'static str {
        "retraining from scratch"
    }
}

/// Model-agnostic removal for gradient-boosted trees: retrain on the
/// complement. GBDT trees are sequential (each fits the previous
/// ensemble's gradients), so a deletion invalidates every later tree and
/// retraining *is* the exact removal method — which is precisely why the
/// paper's fast path needs a model like DaRE, and why this impl exists:
/// it demonstrates §5.1's claim that FUME runs unchanged on any model by
/// swapping `EstimateAttribution`'s removal method.
#[derive(Debug, Clone)]
pub struct GbdtRetrainRemoval<'a> {
    train: &'a Dataset,
    config: GbdtConfig,
}

impl<'a> GbdtRetrainRemoval<'a> {
    /// Wraps the training data and GBDT hyperparameters.
    pub fn new(train: &'a Dataset, config: GbdtConfig) -> Self {
        Self { train, config }
    }
}

impl RemovalMethod for GbdtRetrainRemoval<'_> {
    type Model = Gbdt;

    fn remove(&self, subset: &[u32]) -> Gbdt {
        let mut keep = vec![true; self.train.num_rows()];
        for &id in subset {
            keep[id as usize] = false;
        }
        let surviving: Vec<u32> = (0..self.train.num_rows() as u32)
            .filter(|&r| keep[r as usize])
            .collect();
        Gbdt::fit_on(self.train, surviving, self.config.clone())
    }

    fn name(&self) -> &'static str {
        "GBDT retraining"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::datasets::planted_toy;

    #[test]
    fn dare_removal_does_not_mutate_deployed_model() {
        let (train, _) = planted_toy().generate_scaled(0.15, 61).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(61));
        let snapshot = forest.clone();
        let removal = DareRemoval::new(&forest, &train);
        let unlearned = removal.remove(&[0, 1, 2, 3, 4]);
        assert_eq!(forest, snapshot, "deployed model must be untouched");
        assert_eq!(unlearned.num_instances() + 5, forest.num_instances());
    }

    #[test]
    fn retrain_removal_trains_on_complement() {
        let (train, _) = planted_toy().generate_scaled(0.15, 62).unwrap();
        let removal = RetrainRemoval::new(&train, DareConfig::small(62).with_trees(5));
        let model = removal.remove(&[0, 10, 20]);
        assert_eq!(model.num_instances() as usize, train.num_rows() - 3);
    }

    #[test]
    fn both_methods_agree_closely_on_small_deletions() {
        use fume_fairness::FairnessMetric;
        let (data, group) = planted_toy().generate_scaled(0.5, 63).unwrap();
        let (train, test) =
            fume_tabular::split::train_test_split(&data, 0.3, 63).unwrap();
        let cfg = DareConfig::small(63);
        let forest = DareForest::fit(&train, cfg.clone());
        let dare = DareRemoval::new(&forest, &train);
        let retrain = RetrainRemoval::new(&train, cfg);
        let subset: Vec<u32> = (0..40).collect();
        let b_dare =
            FairnessMetric::StatisticalParity.bias(&dare.remove(&subset), &test, group);
        let b_retrain =
            FairnessMetric::StatisticalParity.bias(&retrain.remove(&subset), &test, group);
        assert!(
            (b_dare - b_retrain).abs() < 0.08,
            "unlearned bias {b_dare} vs retrained {b_retrain}"
        );
    }

    #[test]
    fn names() {
        let (train, _) = planted_toy().generate_scaled(0.1, 64).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(64).with_trees(2));
        assert_eq!(DareRemoval::new(&forest, &train).name(), "DaRE unlearning");
        assert_eq!(
            RetrainRemoval::new(&train, DareConfig::small(64)).name(),
            "retraining from scratch"
        );
    }
}
