//! Tree-path pattern mining — the *inadequate* manual explanation
//! strategy of the paper's Example 1.1 / Table 1, provided both for the
//! motivating experiment and as a diagnostic tool.
//!
//! For each tree of the forest, the miner walks the first few levels and
//! reports root-to-leaf paths that (a) constrain the sensitive attribute
//! to the protected side and (b) end in a leaf predicting the unfavorable
//! outcome, together with the fraction of training samples they carry.

use fume_forest::node::Node;
use fume_forest::DareForest;
use fume_tabular::{Dataset, GroupSpec};

/// A mined discriminatory path.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedPattern {
    /// Which tree the path is from.
    pub tree_index: usize,
    /// Rendered conjunction of the path's split conditions.
    pub description: String,
    /// Fraction of the tree's training instances in the leaf.
    pub sample_fraction: f64,
    /// The leaf's positive-class probability.
    pub leaf_proba: f64,
}

/// Mines every tree of `forest` down to `max_levels` for paths that
/// mention the protected group and predict the unfavorable label
/// (paper Table 1).
pub fn mine_unfair_paths(
    forest: &DareForest,
    data: &Dataset,
    group: GroupSpec,
    max_levels: usize,
) -> Vec<MinedPattern> {
    let total = forest.num_instances().max(1) as f64;
    let mut out = Vec::new();
    for (tree_index, tree) in forest.trees().iter().enumerate() {
        let mut conditions: Vec<(u16, bool, u16)> = Vec::new();
        walk(
            tree.root(),
            0,
            max_levels,
            &mut conditions,
            &mut |conditions, leaf_n, leaf_proba| {
                if leaf_proba >= 0.5 {
                    return; // favorable leaf
                }
                // The path must constrain the sensitive attribute away
                // from the privileged code.
                let mentions_protected = conditions.iter().any(|&(attr, is_left, thr)| {
                    attr as usize == group.attr
                        && !side_allows_code(is_left, thr, group.privileged_code)
                });
                if !mentions_protected {
                    return;
                }
                out.push(MinedPattern {
                    tree_index,
                    description: render_conditions(conditions, data),
                    sample_fraction: leaf_n as f64 / total,
                    leaf_proba,
                });
            },
        );
    }
    out
}

/// Whether the chosen side of a `code <= thr` split can contain `code`.
fn side_allows_code(is_left: bool, thr: u16, code: u16) -> bool {
    if is_left {
        code <= thr
    } else {
        code > thr
    }
}

fn walk(
    node: &Node,
    depth: usize,
    max_levels: usize,
    conditions: &mut Vec<(u16, bool, u16)>,
    emit: &mut impl FnMut(&[(u16, bool, u16)], u32, f64),
) {
    match node {
        Node::Leaf(l) => {
            let n = l.ids.len() as u32;
            emit(conditions, n, l.proba());
        }
        Node::Internal(i) => {
            if depth >= max_levels {
                // Treat the subtree as a pseudo-leaf with its majority.
                let proba = if i.n == 0 { 0.5 } else { i.n_pos as f64 / i.n as f64 };
                emit(conditions, i.n, proba);
                return;
            }
            conditions.push((i.attr, true, i.threshold));
            walk(&i.left, depth + 1, max_levels, conditions, emit);
            conditions.pop();
            conditions.push((i.attr, false, i.threshold));
            walk(&i.right, depth + 1, max_levels, conditions, emit);
            conditions.pop();
        }
    }
}

fn render_conditions(conditions: &[(u16, bool, u16)], data: &Dataset) -> String {
    conditions
        .iter()
        .map(|&(attr, is_left, thr)| {
            let schema = data.schema();
            let a = schema.attribute(attr as usize).ok();
            let name = a.map(|a| a.name()).unwrap_or("?");
            let label = a
                .and_then(|a| a.value_label(thr))
                .unwrap_or("?");
            if is_left {
                format!("({name} <= {label})")
            } else {
                format!("({name} > {label})")
            }
        })
        .collect::<Vec<_>>()
        .join(" and ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_forest::DareConfig;
    use fume_tabular::datasets::planted_toy;

    #[test]
    fn mined_paths_are_unfavorable_and_mention_the_group() {
        let (train, group) = planted_toy().generate_scaled(0.5, 95).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(95).with_trees(10));
        let patterns = mine_unfair_paths(&forest, &train, group, 5);
        for p in &patterns {
            assert!(p.leaf_proba < 0.5);
            assert!(p.description.contains("sex"), "{}", p.description);
            assert!(p.sample_fraction > 0.0 && p.sample_fraction <= 1.0);
        }
    }

    #[test]
    fn deeper_scans_find_at_least_as_many_paths() {
        let (train, group) = planted_toy().generate_scaled(0.5, 96).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(96).with_trees(10));
        let shallow = mine_unfair_paths(&forest, &train, group, 2).len();
        let deep = mine_unfair_paths(&forest, &train, group, 6).len();
        assert!(deep >= shallow, "shallow {shallow} deep {deep}");
    }

    #[test]
    fn side_allows_code_semantics() {
        // split code <= 1: left side holds codes 0,1; right holds 2+.
        assert!(side_allows_code(true, 1, 0));
        assert!(side_allows_code(true, 1, 1));
        assert!(!side_allows_code(true, 1, 2));
        assert!(!side_allows_code(false, 1, 1));
        assert!(side_allows_code(false, 1, 2));
    }
}
