//! Instance-level (example-based) attribution via unlearning — the
//! leave-one-out analogue of the influence-function explanations the
//! paper cites [45, 58], made applicable to non-parametric models by the
//! same unlearning trick FUME uses for subsets.
//!
//! For each candidate training instance, the deployed DaRE forest is
//! cloned, the instance unlearned, and the fairness change recorded. The
//! result ranks *individual rows*, which is useful for spot checks but —
//! as the paper's introduction argues — far less actionable than FUME's
//! coherent predicate subsets. The two are contrasted in the examples.

use fume_fairness::FairnessMetric;
use fume_forest::DareForest;
use fume_tabular::{Dataset, GroupSpec};

use crate::attribution::AttributionEstimator;
use crate::removal::DareRemoval;

/// One instance's attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceAttribution {
    /// Training-row id.
    pub row: u32,
    /// Parity reduction when this single row is unlearned
    /// (positive = the row contributes to the violation).
    pub parity_reduction: f64,
}

/// Ranks the given training rows (or all rows if `candidates` is `None`)
/// by the fairness improvement from unlearning each one alone, most
/// responsible first. `O(|candidates|)` clone+delete operations — use the
/// candidate list to pre-filter on large datasets.
pub fn rank_instances(
    forest: &DareForest,
    train: &Dataset,
    test: &Dataset,
    group: GroupSpec,
    metric: FairnessMetric,
    candidates: Option<&[u32]>,
    n_jobs: Option<usize>,
) -> Vec<InstanceAttribution> {
    let original = metric.bias(forest, test, group);
    if original <= f64::EPSILON {
        return Vec::new();
    }
    let estimator = AttributionEstimator::new(
        DareRemoval::new(forest, train),
        metric,
        test,
        group,
        original,
        n_jobs,
    );
    let all_ids;
    let ids: &[u32] = match candidates {
        Some(c) => c,
        None => {
            all_ids = train.all_row_ids();
            &all_ids
        }
    };
    // Reuse the batch evaluator: each "subset" is a single row.
    use fume_lattice::{BatchEvaluator as _, EvalItem, Predicate};
    let dummy = Predicate::new(vec![]);
    let singletons: Vec<[u32; 1]> = ids.iter().map(|&id| [id]).collect();
    let items: Vec<EvalItem<'_>> = singletons
        .iter()
        .map(|s| EvalItem { predicate: &dummy, rows: s })
        .collect();
    let rhos = estimator.evaluate(&items);
    let mut out: Vec<InstanceAttribution> = ids
        .iter()
        .zip(rhos)
        .map(|(&row, parity_reduction)| InstanceAttribution { row, parity_reduction })
        .collect();
    out.sort_by(|a, b| b.parity_reduction.total_cmp(&a.parity_reduction));
    out
}

/// How concentrated the per-instance attributions are inside a predicate
/// subset: the fraction of the top-`k` ranked instances that fall in
/// `subset_rows` (sorted). Used to validate that FUME's subsets capture
/// the individually-responsible instances.
pub fn overlap_with_subset(
    ranked: &[InstanceAttribution],
    subset_rows: &[u32],
    k: usize,
) -> f64 {
    let k = k.min(ranked.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranked[..k]
        .iter()
        .filter(|a| subset_rows.binary_search(&a.row).is_ok())
        .count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_forest::DareConfig;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    #[test]
    fn ranks_descending_and_respects_candidates() {
        let (data, group) = planted_toy().generate_scaled(0.3, 91).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 91).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(91).with_trees(10));
        let candidates: Vec<u32> = (0..40).collect();
        let ranked = rank_instances(
            &forest,
            &train,
            &test,
            group,
            FairnessMetric::StatisticalParity,
            Some(&candidates),
            Some(2),
        );
        assert_eq!(ranked.len(), 40);
        assert!(ranked
            .windows(2)
            .all(|w| w[0].parity_reduction >= w[1].parity_reduction));
        for a in &ranked {
            assert!(a.row < 40);
        }
    }

    #[test]
    fn overlap_metric() {
        let ranked: Vec<InstanceAttribution> = (0..10)
            .map(|i| InstanceAttribution { row: i, parity_reduction: 1.0 - i as f64 / 10.0 })
            .collect();
        let subset = vec![0u32, 1, 2, 3, 4];
        assert!((overlap_with_subset(&ranked, &subset, 5) - 1.0).abs() < 1e-12);
        assert!((overlap_with_subset(&ranked, &subset, 10) - 0.5).abs() < 1e-12);
        assert_eq!(overlap_with_subset(&[], &subset, 5), 0.0);
    }
}
