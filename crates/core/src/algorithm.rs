//! FUME's Algorithm 1: top-k training-data subsets attributable to a
//! group-fairness violation.

use std::path::{Path, PathBuf};

use fume_obs::clock::{Duration, Stopwatch};

use fume_fairness::{fairness_report, FairnessMetric};
use fume_forest::{DareForest, DeleteReport};
use fume_lattice::{
    search, BatchEvaluator, EvaluatedSubset, LevelStats, Predicate, SearchDriver, SearchOutcome,
    SearchParams,
};
use fume_tabular::{Dataset, GroupSpec};

use crate::attribution::{AttributionEstimator, EvalMemo};
use crate::checkpoint::{self, CheckpointError};
use crate::config::FumeConfig;
use crate::removal::{DareCloneRemoval, DareRemoval, RetrainRemoval, SharedAdapter};
use crate::request::{ExplainRequest, ModelSpec, RemovalSpec};

/// Errors from a FUME run.
///
/// Marked `#[non_exhaustive]`: every layer above the core — the CLI,
/// `fume-serve` responses, downstream callers — matches this one enum
/// (checkpoint and lattice failures arrive pre-wrapped through the
/// `From` impls below), and new failure modes must not break them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FumeError {
    /// The deployed model shows no violation of the configured metric on
    /// the test data — there is nothing to explain.
    NoViolation {
        /// Which metric was checked.
        metric: FairnessMetric,
    },
    /// Invalid search parameters, or a non-finite attribution from the
    /// evaluator.
    Lattice(fume_lattice::LatticeError),
    /// The training or test set is empty.
    EmptyData,
    /// Saving or loading a run checkpoint failed.
    Checkpoint(CheckpointError),
    /// The [`ExplainRequest`] combines options that cannot be executed
    /// (e.g. exact DaRE unlearning of an opaque classifier).
    InvalidRequest(String),
    /// Encoding or decoding a serialized [`FumeReport`] failed.
    Codec(String),
}

impl std::fmt::Display for FumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoViolation { metric } => {
                write!(f, "the model does not violate {} on the test data", metric.name())
            }
            Self::Lattice(e) => write!(f, "lattice search failed: {e}"),
            Self::EmptyData => write!(f, "training and test data must be non-empty"),
            Self::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            Self::InvalidRequest(why) => write!(f, "invalid explain request: {why}"),
            Self::Codec(why) => write!(f, "report codec failure: {why}"),
        }
    }
}

impl std::error::Error for FumeError {}

impl From<fume_lattice::LatticeError> for FumeError {
    fn from(e: fume_lattice::LatticeError) -> Self {
        Self::Lattice(e)
    }
}

impl From<CheckpointError> for FumeError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// One explained subset of the final ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainedSubset {
    /// The predicate, rendered human-readably against the schema
    /// (e.g. `Housing = Rent AND Status and sex = Female divorced/separated/married`).
    pub pattern: String,
    /// The underlying predicate.
    pub predicate: Predicate,
    /// Support in the training data.
    pub support: f64,
    /// Parity reduction `ρ` (fraction of the violation removed; Tables
    /// 3–7 print this as a percentage).
    pub parity_reduction: f64,
    /// The paper's signed attribution `φ = −ρ`.
    pub phi: f64,
    /// The training rows the subset selects.
    pub rows: Vec<u32>,
}

/// The result of a FUME run.
#[derive(Debug, Clone, PartialEq)]
pub struct FumeReport {
    /// The top-k subsets, highest parity reduction first.
    pub top_k: Vec<ExplainedSubset>,
    /// Every evaluated subset (for analysis; `top_k` is derived from it).
    pub evaluated: Vec<EvaluatedSubset>,
    /// Per-level lattice statistics (the paper's Table 9).
    pub levels: Vec<LevelStats>,
    /// The metric that was explained.
    pub metric: FairnessMetric,
    /// `|F(h, D_test)|` of the deployed model.
    pub original_bias: f64,
    /// Signed `F(h, D_test)` of the deployed model.
    pub original_fairness: f64,
    /// Test accuracy of the deployed model.
    pub original_accuracy: f64,
    /// Number of unlearning operations performed.
    pub unlearning_operations: usize,
    /// Wall-clock time of the subset search (excludes forest training).
    pub search_time: Duration,
    /// Wall-clock time of training the deployed forest (zero when a
    /// pre-trained forest was supplied).
    pub training_time: Duration,
    /// Wall-clock time spent inside unlearn-and-re-evaluate batches (a
    /// subset of `search_time`; the remainder is lattice bookkeeping).
    pub unlearn_time: Duration,
}

impl FumeReport {
    /// Renders the top-k table in the paper's Tables 3–7 format.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| # | Patterns | Support | Parity Reduction |\n|---|---|---|---|"
        );
        for (i, s) in self.top_k.iter().enumerate() {
            let _ = writeln!(
                out,
                "| {} | {} | {:.2}% | {:.2}% |",
                i + 1,
                s.pattern,
                s.support * 100.0,
                s.parity_reduction * 100.0
            );
        }
        out
    }

    /// Renders the per-phase wall-clock breakdown of this run.
    pub fn timing_table(&self) -> String {
        use std::fmt::Write as _;
        let row = |d: Duration| format!("{:>10.3} ms", d.as_secs_f64() * 1e3);
        let mut out = String::new();
        let _ = writeln!(out, "phase                 wall");
        let _ = writeln!(out, "forest training {}", row(self.training_time));
        let _ = writeln!(out, "subset search   {}", row(self.search_time));
        let _ = writeln!(out, "  unlearn evals {}", row(self.unlearn_time));
        let _ = writeln!(
            out,
            "unlearning ops  {:>10}",
            self.unlearning_operations
        );
        out
    }
}

/// The FUME system: explains fairness violations of a DaRE forest by
/// identifying the top-k predicate subsets of its training data whose
/// removal (estimated via exact machine unlearning) most reduces the
/// violation.
///
/// ```
/// use fume_core::{ExplainRequest, Fume, FumeConfig};
/// use fume_forest::DareConfig;
/// use fume_lattice::SupportRange;
/// use fume_tabular::datasets::planted_toy;
/// use fume_tabular::split::train_test_split;
///
/// let (data, group) = planted_toy().generate_scaled(0.5, 3).unwrap();
/// let (train, test) = train_test_split(&data, 0.3, 3).unwrap();
/// let config = FumeConfig::default()
///     .with_forest(DareConfig::small(3))
///     .with_support(SupportRange::new(0.02, 0.25).unwrap());
/// let request = ExplainRequest::new(&train, &test, group);
/// let report = Fume::new(config).run(&request).unwrap();
/// assert!(!report.top_k.is_empty());
/// assert!(report.top_k[0].parity_reduction > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Fume {
    config: FumeConfig,
    resume: bool,
}

impl Fume {
    /// Builds a FUME instance.
    pub fn new(config: FumeConfig) -> Self {
        Self { config, resume: false }
    }

    /// Resumes a checkpointed run from `dir`: the configuration is
    /// restored from the checkpoint, and the next [`run`](Self::run)
    /// continues from the last completed lattice level (reloading the
    /// persisted forest instead of retraining). The caller supplies the
    /// same train/test/group inputs as the original run — a fingerprint
    /// check rejects anything else.
    pub fn resume(dir: impl Into<PathBuf>) -> Result<Self, FumeError> {
        let dir = dir.into();
        let ckpt = checkpoint::load_state(&dir)?;
        let config = ckpt.config.with_checkpoint_dir(dir);
        Ok(Self { config, resume: true })
    }

    /// The configuration.
    pub fn config(&self) -> &FumeConfig {
        &self.config
    }

    /// Executes an [`ExplainRequest`] — the single code path every FUME
    /// run (library, CLI, `fume-serve`) funnels through.
    ///
    /// What happens depends on the request:
    /// * no model → a DaRE forest is trained from this configuration
    ///   (or, when resuming a checkpointed run, reloaded from the
    ///   checkpoint with training time reported as zero);
    /// * with a `checkpoint_dir` configured, a forest-backed run first
    ///   persists and *normalizes* the forest through a save/load
    ///   round-trip (see [`checkpoint::normalize_forest`]), so an
    ///   interrupted run resumed from the persisted copy reproduces this
    ///   run byte-identically;
    /// * the removal override selects how counterfactual models are
    ///   obtained; [`RemovalSpec::Shared`] lends a caller-owned warm
    ///   method and therefore requires a prebuilt model;
    /// * an attached [`EvalMemo`] is consulted before every unlearn-eval.
    ///
    /// Incompatible combinations (e.g. exact DaRE unlearning of an
    /// opaque classifier) fail with [`FumeError::InvalidRequest`].
    pub fn run(&self, request: &ExplainRequest<'_>) -> Result<FumeReport, FumeError> {
        if request.train.is_empty() || request.test.is_empty() {
            return Err(FumeError::EmptyData);
        }
        match (&request.removal, &request.model) {
            (RemovalSpec::Shared(shared), Some(model)) => self.run_inner(
                SharedAdapter(*shared),
                model.as_classifier(),
                request.train,
                request.test,
                request.group,
                request.memo,
            ),
            (RemovalSpec::Shared(_), None) => Err(FumeError::InvalidRequest(
                "a shared removal method requires a prebuilt model in the request".into(),
            )),
            (RemovalSpec::Retrain, Some(ModelSpec::Classifier(model))) => self.run_inner(
                RetrainRemoval::new(request.train, self.config.forest.clone()),
                *model,
                request.train,
                request.test,
                request.group,
                request.memo,
            ),
            (RemovalSpec::Dare | RemovalSpec::DareClone, Some(ModelSpec::Classifier(_))) => {
                Err(FumeError::InvalidRequest(
                    "exact DaRE unlearning needs a DaRE forest model; supply \
                     ModelSpec::Forest, or override the removal with Retrain/Shared"
                        .into(),
                ))
            }
            _ => self.run_forest(request),
        }
    }

    /// The forest-backed half of [`run`](Self::run): resolves the
    /// deployed DaRE forest (provided, resumed, or freshly trained),
    /// applies checkpoint normalization, and builds the configured
    /// removal method around it.
    fn run_forest(&self, request: &ExplainRequest<'_>) -> Result<FumeReport, FumeError> {
        let mut training_time = Duration::ZERO;
        let trained: Option<DareForest> = match request.model {
            Some(_) => None,
            None => {
                let mut resumed = None;
                if self.resume {
                    if let Some(dir) = &self.config.checkpoint_dir {
                        match checkpoint::load_forest(dir) {
                            Ok(forest) => resumed = Some(forest),
                            // No forest persisted yet (crash before the
                            // first checkpoint): train fresh below.
                            Err(CheckpointError::NothingToResume(_)) => {}
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
                Some(match resumed {
                    Some(forest) => forest,
                    None => {
                        let t0 = Stopwatch::start();
                        let _span = fume_obs::span!(
                            "fume.phase.train",
                            rows = request.train.num_rows()
                        );
                        let forest =
                            DareForest::fit(request.train, self.config.forest.clone());
                        training_time = t0.elapsed();
                        forest
                    }
                })
            }
        };
        let forest: &DareForest = if let Some(forest) = &trained {
            forest
        } else if let Some(ModelSpec::Forest(forest)) = request.model {
            forest
        } else {
            // `run` routed every classifier-model combination elsewhere.
            return Err(FumeError::InvalidRequest(
                "this model/removal combination needs a DaRE forest".into(),
            ));
        };
        let normalized: Option<DareForest> = match &self.config.checkpoint_dir {
            Some(dir) => Some(checkpoint::normalize_forest(dir, forest)?),
            None => None,
        };
        let forest = normalized.as_ref().unwrap_or(forest);
        let (train, test, group, memo) =
            (request.train, request.test, request.group, request.memo);
        let mut report = match request.removal {
            RemovalSpec::Dare => self.run_inner(
                DareRemoval::new(forest, train),
                forest,
                train,
                test,
                group,
                memo,
            )?,
            RemovalSpec::DareClone => self.run_inner(
                DareCloneRemoval::new(forest, train),
                forest,
                train,
                test,
                group,
                memo,
            )?,
            RemovalSpec::Retrain => self.run_inner(
                RetrainRemoval::new(train, self.config.forest.clone()),
                forest,
                train,
                test,
                group,
                memo,
            )?,
            RemovalSpec::Shared(_) => {
                // Handled (with and without a model) in `run`.
                return Err(FumeError::InvalidRequest(
                    "a shared removal method requires a prebuilt model in the request"
                        .into(),
                ));
            }
        };
        report.training_time = training_time;
        Ok(report)
    }

    /// Trains a DaRE forest on `train` and explains its violation on
    /// `test`. When resuming a checkpointed run, the persisted forest is
    /// reloaded instead (training time reported as zero).
    #[deprecated(note = "use `Fume::run` with an `ExplainRequest` (see docs/serving.md)")]
    pub fn explain(
        &self,
        train: &Dataset,
        test: &Dataset,
        group: GroupSpec,
    ) -> Result<FumeReport, FumeError> {
        self.run(&ExplainRequest::new(train, test, group))
    }

    /// Explains an already-trained forest's violation on `test`. The
    /// forest must have been trained on exactly the rows of `train`.
    #[deprecated(
        note = "use `Fume::run` with `ExplainRequest::with_model` (see docs/serving.md)"
    )]
    pub fn explain_model(
        &self,
        forest: &DareForest,
        train: &Dataset,
        test: &Dataset,
        group: GroupSpec,
    ) -> Result<FumeReport, FumeError> {
        self.run(&ExplainRequest::new(train, test, group).with_model(forest))
    }

    /// Explains *any* deployed classifier's violation, given a
    /// [`RemovalMethod`](crate::removal::RemovalMethod) that answers
    /// "what would the model be without subset T" — the paper's §5.1
    /// extensibility: swap the removal method, keep Algorithm 1.
    ///
    /// `model` must be the deployed model trained on exactly the rows of
    /// `train`, and `removal.with_removed(T, f)` must hand `f` a model
    /// emulating training on `train \ T`.
    #[deprecated(
        note = "use `Fume::run` with `ExplainRequest::with_classifier` and a \
                Retrain/Shared `RemovalSpec` (see docs/serving.md)"
    )]
    pub fn explain_with<R, C>(
        &self,
        removal: R,
        model: &C,
        train: &Dataset,
        test: &Dataset,
        group: GroupSpec,
    ) -> Result<FumeReport, FumeError>
    where
        R: crate::removal::RemovalMethod,
        C: fume_tabular::Classifier + ?Sized,
    {
        self.run_inner(removal, model, train, test, group, None)
    }

    /// The run body shared by every entrypoint: violation check, lattice
    /// search over the attribution estimator, ranking.
    fn run_inner<R, C>(
        &self,
        removal: R,
        model: &C,
        train: &Dataset,
        test: &Dataset,
        group: GroupSpec,
        memo: Option<&dyn EvalMemo>,
    ) -> Result<FumeReport, FumeError>
    where
        R: crate::removal::RemovalMethod,
        C: fume_tabular::Classifier + ?Sized,
    {
        if train.is_empty() || test.is_empty() {
            return Err(FumeError::EmptyData);
        }
        let _span = fume_obs::span!(
            "fume.explain",
            train_rows = train.num_rows(),
            test_rows = test.num_rows()
        );
        let params = self.config.search_params()?;
        let (snapshot, original_fairness) = {
            let _span = fume_obs::span!("fume.phase.violation_check");
            let snapshot = fairness_report(model, test, group);
            let fairness = self.config.metric.from_confusion(&snapshot.confusion);
            (snapshot, fairness)
        };
        let original_bias = original_fairness.abs();
        if original_bias <= f64::EPSILON {
            return Err(FumeError::NoViolation { metric: self.config.metric });
        }

        let mut estimator = AttributionEstimator::new(
            removal,
            self.config.metric,
            test,
            group,
            original_bias,
            self.config.n_jobs,
        );
        if let Some(memo) = memo {
            estimator = estimator.with_memo(memo);
        }

        let t0 = Stopwatch::start();
        let outcome = {
            let _span = fume_obs::span!("fume.phase.search");
            match &self.config.checkpoint_dir {
                Some(dir) => {
                    self.search_checkpointed(dir, train, &params, &estimator, test, group)?
                }
                None => search(train, &params, &estimator)?,
            }
        };
        let search_time = t0.elapsed();
        let unlearn_time = estimator.eval_time();

        let _rank_span = fume_obs::span!("fume.phase.rank", evaluated = outcome.evaluated.len());
        let top_k = outcome
            .top_k(self.config.top_k)
            .into_iter()
            .map(|s| ExplainedSubset {
                pattern: s.predicate.render(train.schema()),
                predicate: s.predicate.clone(),
                support: s.support,
                parity_reduction: s.rho,
                phi: -s.rho,
                rows: s.rows.clone(),
            })
            .collect();
        drop(_rank_span);

        Ok(FumeReport {
            top_k,
            evaluated: outcome.evaluated,
            levels: outcome.levels,
            metric: self.config.metric,
            original_bias,
            original_fairness,
            original_accuracy: snapshot.accuracy,
            unlearning_operations: outcome.evaluations,
            search_time,
            training_time: Duration::ZERO,
            unlearn_time,
        })
    }

    /// The checkpointed variant of the search loop: the [`SearchState`]
    /// (fume_lattice::SearchState) is saved (atomically) at every level
    /// boundary, and — when this instance was built by
    /// [`Fume::resume`] — reloaded, validated against the live
    /// configuration and data fingerprint, and continued. The search is
    /// deterministic per level (the scratch pool restores the deployed
    /// forest exactly after every unlearn-eval), so re-running the level
    /// a crash interrupted yields the same ρ values the uninterrupted
    /// run would have computed.
    fn search_checkpointed<E: BatchEvaluator>(
        &self,
        dir: &Path,
        train: &Dataset,
        params: &SearchParams,
        evaluator: &E,
        test: &Dataset,
        group: GroupSpec,
    ) -> Result<SearchOutcome, FumeError> {
        let fp = checkpoint::fingerprint(train, test, group);
        // Same span the non-checkpointed `lattice::search` wrapper emits,
        // so traces look identical whichever path a run takes.
        let _span = fume_obs::span!(
            "lattice.search",
            eta = params.max_literals,
            rows = train.num_rows()
        );
        let mut driver = if self.resume {
            match checkpoint::load_state(dir) {
                Ok(ckpt) => {
                    checkpoint::validate(&ckpt, &self.config, fp)?;
                    if fume_forest::deepcheck::enabled() {
                        checkpoint::deepcheck_state(&ckpt.state)?;
                    }
                    fume_obs::counter!("ckpt.resumes", 1);
                    SearchDriver::with_state(train, params, ckpt.state)
                }
                // Crash before the first state write: start over.
                Err(CheckpointError::NothingToResume(_)) => SearchDriver::new(train, params),
                Err(e) => return Err(e.into()),
            }
        } else {
            SearchDriver::new(train, params)
        };
        // Persist the starting boundary up front, so even a crash inside
        // the first level resumes without refitting the forest.
        checkpoint::save_state(dir, &self.config, fp, driver.state())?;
        while driver.step(evaluator)? {
            checkpoint::save_state(dir, &self.config, fp, driver.state())?;
            fume_obs::fault::fault_point("post-level");
        }
        // The terminal state (done = true) is persisted too: resuming a
        // finished run replays its report with zero new evaluations.
        checkpoint::save_state(dir, &self.config, fp, driver.state())?;
        Ok(driver.into_outcome())
    }

    /// Verifies a reported subset by *actually* removing it and retraining
    /// from scratch, returning `(retrained bias, unlearning-estimated ρ,
    /// retrain-true ρ)` — the paper's RQ1 check for a single subset.
    pub fn verify_subset(
        &self,
        forest: &DareForest,
        train: &Dataset,
        test: &Dataset,
        group: GroupSpec,
        subset_rows: &[u32],
    ) -> Result<(f64, f64, f64), FumeError> {
        let original_bias = self.config.metric.bias(forest, test, group);
        if original_bias <= f64::EPSILON {
            return Err(FumeError::NoViolation { metric: self.config.metric });
        }
        let dare = AttributionEstimator::new(
            DareRemoval::new(forest, train),
            self.config.metric,
            test,
            group,
            original_bias,
            self.config.n_jobs,
        );
        let rho_unlearn = dare.rho(subset_rows);
        let retrain = AttributionEstimator::new(
            crate::removal::RetrainRemoval::new(train, self.config.forest.clone()),
            self.config.metric,
            test,
            group,
            original_bias,
            self.config.n_jobs,
        );
        let rho_retrain = retrain.rho(subset_rows);
        let retrained_bias = original_bias * (1.0 - rho_retrain);
        Ok((retrained_bias, rho_unlearn, rho_retrain))
    }
}

/// Convenience: what actually happens to the forest when the top subset is
/// unlearned for good (not just hypothetically) — returns the unlearned
/// forest plus the deletion report.
pub fn apply_removal(
    forest: &DareForest,
    train: &Dataset,
    rows: &[u32],
) -> (DareForest, DeleteReport) {
    let mut unlearned = forest.clone();
    let report = unlearned
        .delete(rows, train)
        // fume-lint: allow(F001) -- selection provenance: lattice subsets are drawn from the training universe the forest was fitted on, so every id is present
        .expect("rows come from the training universe");
    (unlearned, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_forest::DareConfig;
    use fume_lattice::SupportRange;
    use fume_tabular::datasets::{planted_toy, PLANTED_TOY_COHORT};
    use fume_tabular::split::train_test_split;

    // Fixture seed chosen so the planted cohort survives the 70/30 split
    // with a clear violation; many seeds bury it under correlated
    // attributes (the e2e suite covers that robustness more loosely).
    const SEED: u64 = 85;

    fn setup() -> (Dataset, Dataset, GroupSpec) {
        let (data, group) = planted_toy().generate_full(SEED).unwrap();
        let (train, test) = train_test_split(&data, 0.3, SEED).unwrap();
        (train, test, group)
    }

    fn config() -> FumeConfig {
        FumeConfig::default()
            .with_forest(DareConfig::small(SEED))
            .with_support(SupportRange::new(0.02, 0.30).unwrap())
    }

    #[test]
    fn finds_the_planted_cohort() {
        let (train, test, group) = setup();
        let report = Fume::new(config()).run(&ExplainRequest::new(&train, &test, group)).unwrap();
        assert!(report.original_bias > 0.02, "bias {}", report.original_bias);
        assert!(!report.top_k.is_empty());
        // The planted cohort (city = urban AND job = manual) must rank in
        // the top-k, and the top subset must remove a meaningful share of
        // the violation.
        let planted_found = report.top_k.iter().any(|s| {
            PLANTED_TOY_COHORT.iter().all(|&(attr, code)| {
                s.predicate
                    .literals()
                    .iter()
                    .any(|l| l.attr as usize == attr && l.value == code)
            }) || s.predicate.literals().iter().all(|l| {
                PLANTED_TOY_COHORT
                    .iter()
                    .any(|&(attr, code)| l.attr as usize == attr && l.value == code)
            })
        });
        assert!(
            planted_found,
            "top-k should contain the planted cohort: {:#?}",
            report.top_k.iter().map(|s| &s.pattern).collect::<Vec<_>>()
        );
        assert!(
            report.top_k[0].parity_reduction > 0.3,
            "top subset removes {} of the bias",
            report.top_k[0].parity_reduction
        );
    }

    #[test]
    fn report_is_internally_consistent() {
        let (train, test, group) = setup();
        let report = Fume::new(config()).run(&ExplainRequest::new(&train, &test, group)).unwrap();
        assert_eq!(report.original_fairness.abs(), report.original_bias);
        for s in &report.top_k {
            assert!((s.phi + s.parity_reduction).abs() < 1e-12);
            assert!(s.support >= 0.02 && s.support <= 0.30);
            assert!(!s.rows.is_empty());
            assert!(s.pattern.contains('='));
        }
        // top_k is sorted descending.
        assert!(report
            .top_k
            .windows(2)
            .all(|w| w[0].parity_reduction >= w[1].parity_reduction));
        let explored: usize = report.levels.iter().map(|l| l.explored).sum();
        assert_eq!(report.unlearning_operations, explored);
    }

    #[test]
    fn markdown_rendering() {
        let (train, test, group) = setup();
        let report = Fume::new(config()).run(&ExplainRequest::new(&train, &test, group)).unwrap();
        let md = report.to_markdown();
        assert!(md.starts_with("| # | Patterns"));
        assert!(md.lines().count() >= 3);
        assert!(md.contains('%'));
    }

    #[test]
    fn deterministic_given_seeds() {
        let (train, test, group) = setup();
        let a = Fume::new(config()).run(&ExplainRequest::new(&train, &test, group)).unwrap();
        let b = Fume::new(config()).run(&ExplainRequest::new(&train, &test, group)).unwrap();
        assert_eq!(a.top_k, b.top_k);
        assert_eq!(a.evaluated, b.evaluated);
    }

    #[test]
    fn no_violation_is_an_error() {
        let (train, _test, group) = setup();
        // Evaluating on the training data with a fair-by-construction
        // symmetric dataset is not guaranteed to be unbiased, so force the
        // condition with a test set where both groups get identical rows.
        let rows: Vec<u32> = (0..10).collect();
        let tiny = train.select_rows(&rows).unwrap();
        let fume = Fume::new(config());
        let forest = DareForest::fit(&train, DareConfig::small(1).with_trees(1));
        // Build a test set by duplicating one row across groups is complex;
        // instead check the error path via a metric with zero bias:
        // a forest evaluated against itself may still be biased, so accept
        // either a successful run or the NoViolation error here — what we
        // assert is that empty data errors deterministically.
        let _ = fume.run(&ExplainRequest::new(&train, &tiny, group).with_model(&forest));
        let empty = train.select_rows(&[]).unwrap();
        assert_eq!(
            fume.run(&ExplainRequest::new(&train, &empty, group).with_model(&forest)).unwrap_err(),
            FumeError::EmptyData
        );
    }

    #[test]
    fn verify_subset_compares_unlearning_with_retraining() {
        let (train, test, group) = setup();
        let fume = Fume::new(config());
        let forest = DareForest::fit(&train, fume.config().forest.clone());
        let subset: Vec<u32> = (0..50).collect();
        let (retrained_bias, rho_u, rho_r) = fume
            .verify_subset(&forest, &train, &test, group, &subset)
            .unwrap();
        assert!(retrained_bias >= 0.0);
        assert!(
            (rho_u - rho_r).abs() < 0.6,
            "unlearned ρ {rho_u} vs retrained ρ {rho_r} should be in the same ballpark"
        );
    }

    #[test]
    fn extended_metric_equal_opportunity_is_explainable() {
        let (train, test, group) = setup();
        let fume = Fume::new(config().with_metric(FairnessMetric::EqualOpportunity));
        match fume.run(&ExplainRequest::new(&train, &test, group)) {
            Ok(report) => {
                assert_eq!(report.metric, FairnessMetric::EqualOpportunity);
                assert!(report.original_bias > 0.0);
                for s in &report.top_k {
                    assert!(s.parity_reduction > 0.0);
                }
            }
            Err(FumeError::NoViolation { .. }) => {}
            Err(e) => panic!("unexpected: {e}"),
        }
    }

    #[test]
    fn apply_removal_returns_unlearned_forest() {
        let (train, _test, _group) = setup();
        let forest = DareForest::fit(&train, DareConfig::small(9).with_trees(5));
        let (unlearned, report) = apply_removal(&forest, &train, &[0, 1, 2]);
        assert_eq!(unlearned.num_instances() + 3, forest.num_instances());
        assert!(report.leaves_updated > 0 || report.subtrees_retrained > 0);
    }

    /// Pins the deprecation contract: the legacy entrypoints are thin
    /// wrappers over `Fume::run` and stay bit-identical to it.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_run() {
        let (train, test, group) = setup();
        let fume = Fume::new(config());
        let via_run = fume.run(&ExplainRequest::new(&train, &test, group)).unwrap();
        let via_explain = fume.explain(&train, &test, group).unwrap();
        assert_eq!(via_run.top_k, via_explain.top_k);
        assert_eq!(via_run.evaluated, via_explain.evaluated);

        let forest = DareForest::fit(&train, fume.config().forest.clone());
        let via_run_model = fume
            .run(&ExplainRequest::new(&train, &test, group).with_model(&forest))
            .unwrap();
        let via_explain_model = fume.explain_model(&forest, &train, &test, group).unwrap();
        assert_eq!(via_run_model.top_k, via_explain_model.top_k);
        assert_eq!(via_run_model.evaluated, via_explain_model.evaluated);
    }
}
