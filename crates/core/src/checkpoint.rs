//! Crash-resumable explain runs: a versioned binary sidecar that
//! snapshots the lattice [`SearchState`] at every level boundary, next to
//! the (already-persistable) deployed forest.
//!
//! A checkpoint directory holds two files:
//!
//! - [`FOREST_FILE`] — the deployed [`DareForest`], in the `fume-forest`
//!   persistence format;
//! - [`STATE_FILE`] — this module's format: magic `FUMK`, a version, the
//!   run's [`FumeConfig`], a dataset fingerprint, and the full
//!   [`SearchState`] (frontier with parent floors, every evaluated
//!   subset, level stats, prune counters).
//!
//! **Atomicity.** Both files are written via tmp-file + rename, so a
//! crash mid-write — including one injected with `FUME_FAULT` at the
//! `mid-checkpoint-write` site — leaves the previous checkpoint loadable,
//! never a truncated one.
//!
//! **Determinism.** The search itself is deterministic given the forest:
//! the scratch-pool evaluator restores the deployed forest exactly
//! (including RNG streams) after every unlearn-eval, so re-running a
//! level reproduces its ρ values bit-identically and no evaluator state
//! needs checkpointing. The forest, however, inherits `persist.rs`'s
//! RNG-stream caveat: a *reloaded* forest reseeds per-tree RNGs
//! deterministically rather than preserving the opaque in-memory stream
//! position. Checkpointed runs therefore normalize the forest through a
//! save/load round-trip up front ([`normalize_forest`]), so the
//! interrupted-and-resumed run and the uninterrupted run hold exactly the
//! same forest and produce byte-identical reports.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use fume_forest::persist::{self, PersistError};
use fume_forest::DareForest;
use fume_lattice::{EvaluatedSubset, LatticeNode, LevelStats, Literal, Op, Predicate, SearchState};
use fume_tabular::cast::{code_u16, row_u32};
use fume_tabular::{Dataset, GroupSpec};

use crate::config::FumeConfig;

/// File name of the search-state sidecar inside a checkpoint directory.
pub const STATE_FILE: &str = "search.ckpt";
/// File name of the persisted deployed forest inside a checkpoint
/// directory.
pub const FOREST_FILE: &str = "forest.dare";

/// Magic header bytes of the state sidecar.
const MAGIC: &[u8; 4] = b"FUMK";
/// Format version.
const VERSION: u16 = 1;

/// Errors from saving, loading, or validating checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The state file does not start with the expected magic bytes.
    BadMagic,
    /// The state-format version is not supported.
    UnsupportedVersion(u16),
    /// The state file ended prematurely or a field is malformed.
    Corrupt(&'static str),
    /// An I/O error, stringified.
    Io(String),
    /// The checkpoint was taken under a different configuration or
    /// dataset than the one being resumed with.
    Mismatch(&'static str),
    /// No checkpoint exists at the given directory.
    NothingToResume(String),
    /// The persisted forest failed to load.
    Forest(PersistError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a FUME checkpoint file (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            Self::Corrupt(what) => write!(f, "corrupt checkpoint data: {what}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Mismatch(what) => write!(
                f,
                "checkpoint does not match this run: {what}"
            ),
            Self::NothingToResume(dir) => {
                write!(f, "no checkpoint to resume at `{dir}`")
            }
            Self::Forest(e) => write!(f, "checkpointed forest failed to load: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

impl From<PersistError> for CheckpointError {
    fn from(e: PersistError) -> Self {
        Self::Forest(e)
    }
}

/// A decoded state sidecar.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The configuration the checkpointed run was started with
    /// (`checkpoint_dir` itself is not part of the snapshot).
    pub config: FumeConfig,
    /// Fingerprint of the train/test/group inputs, for resume validation.
    pub fingerprint: u64,
    /// The search state at the last completed level boundary.
    pub state: SearchState,
}

// ---------------------------------------------------------------------
// byte cursors (the persist.rs idiom, kept private per format)
// ---------------------------------------------------------------------

trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    #[inline]
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_f64_le(&mut self) -> f64;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        // fume-lint: allow(F001) -- split_at(2) always yields a 2-byte head; the conversion cannot fail
        u16::from_le_bytes(head.try_into().expect("split_at(2)"))
    }
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        // fume-lint: allow(F001) -- split_at(4) always yields a 4-byte head; the conversion cannot fail
        u32::from_le_bytes(head.try_into().expect("split_at(4)"))
    }
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        // fume-lint: allow(F001) -- split_at(8) always yields an 8-byte head; the conversion cannot fail
        u64::from_le_bytes(head.try_into().expect("split_at(8)"))
    }
    #[inline]
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

fn need(buf: &&[u8], n: usize, what: &'static str) -> Result<(), CheckpointError> {
    if buf.remaining() < n {
        Err(CheckpointError::Corrupt(what))
    } else {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// config section
// ---------------------------------------------------------------------

fn metric_tag(m: fume_fairness::FairnessMetric) -> u8 {
    use fume_fairness::FairnessMetric::*;
    match m {
        StatisticalParity => 0,
        EqualizedOdds => 1,
        PredictiveParity => 2,
        EqualOpportunity => 3,
    }
}

fn metric_from_tag(tag: u8) -> Result<fume_fairness::FairnessMetric, CheckpointError> {
    use fume_fairness::FairnessMetric::*;
    Ok(match tag {
        0 => StatisticalParity,
        1 => EqualizedOdds,
        2 => PredictiveParity,
        3 => EqualOpportunity,
        _ => return Err(CheckpointError::Corrupt("metric tag")),
    })
}

/// Encodes the run-defining parts of a [`FumeConfig`] (everything except
/// `checkpoint_dir`, which names where the checkpoint lives, not what
/// the run computes). Resume validation compares these bytes.
fn encode_config(out: &mut Vec<u8>, cfg: &FumeConfig) {
    out.put_u8(metric_tag(cfg.metric));
    out.put_f64_le(cfg.support.min);
    out.put_f64_le(cfg.support.max);
    out.put_u32_le(row_u32(cfg.max_literals));
    out.put_u32_le(row_u32(cfg.top_k));
    persist::encode_config_into(out, &cfg.forest);
    let t = &cfg.toggles;
    let toggle_bits = u8::from(t.rule1_satisfiability)
        | u8::from(t.rule4_parent_dominance) << 1
        | u8::from(t.rule5_positive_only) << 2
        | u8::from(t.prune_redundant) << 3;
    out.put_u8(toggle_bits);
    out.put_u32_le(row_u32(cfg.exclude_attrs.len()));
    for &a in &cfg.exclude_attrs {
        out.put_u16_le(a);
    }
    out.put_u8(match cfg.literal_gen {
        fume_lattice::LiteralGen::EqOnly => 0,
        fume_lattice::LiteralGen::WithRanges => 1,
    });
    match cfg.n_jobs {
        None => {
            out.put_u8(0);
            out.put_u32_le(0);
        }
        Some(j) => {
            out.put_u8(1);
            out.put_u32_le(row_u32(j));
        }
    }
}

fn decode_config(buf: &mut &[u8]) -> Result<FumeConfig, CheckpointError> {
    need(buf, 1 + 8 + 8 + 4 + 4, "config header")?;
    let metric = metric_from_tag(buf.get_u8())?;
    let min = buf.get_f64_le();
    let max = buf.get_f64_le();
    let support = fume_lattice::SupportRange::new(min, max)
        .map_err(|_| CheckpointError::Corrupt("support range"))?;
    let max_literals = buf.get_u32_le() as usize;
    let top_k = buf.get_u32_le() as usize;
    let forest = {
        // The forest config is length-checked by its own decoder; map its
        // errors into this format's vocabulary.
        let mut cursor: &[u8] = buf;
        let before = cursor.len();
        let cfg = persist::decode_config_from(&mut cursor)
            .map_err(|_| CheckpointError::Corrupt("forest config"))?;
        let consumed = before - cursor.len();
        *buf = &buf[consumed..];
        cfg
    };
    need(buf, 1 + 4, "toggles")?;
    let toggle_bits = buf.get_u8();
    let toggles = fume_lattice::RuleToggles {
        rule1_satisfiability: toggle_bits & 1 != 0,
        rule4_parent_dominance: toggle_bits & 2 != 0,
        rule5_positive_only: toggle_bits & 4 != 0,
        prune_redundant: toggle_bits & 8 != 0,
    };
    let n_excl = buf.get_u32_le() as usize;
    need(buf, n_excl * 2 + 1 + 1 + 4, "exclusions")?;
    let mut exclude_attrs = Vec::with_capacity(n_excl);
    for _ in 0..n_excl {
        exclude_attrs.push(buf.get_u16_le());
    }
    let literal_gen = match buf.get_u8() {
        0 => fume_lattice::LiteralGen::EqOnly,
        1 => fume_lattice::LiteralGen::WithRanges,
        _ => return Err(CheckpointError::Corrupt("literal_gen tag")),
    };
    let jobs_tag = buf.get_u8();
    let jobs_val = buf.get_u32_le() as usize;
    let n_jobs = match jobs_tag {
        0 => None,
        1 => Some(jobs_val),
        _ => return Err(CheckpointError::Corrupt("n_jobs tag")),
    };
    Ok(FumeConfig {
        metric,
        support,
        max_literals,
        top_k,
        forest,
        toggles,
        exclude_attrs,
        literal_gen,
        n_jobs,
        checkpoint_dir: None,
    })
}

// ---------------------------------------------------------------------
// predicate / state sections
// ---------------------------------------------------------------------

fn op_tag(op: Op) -> u8 {
    match op {
        Op::Eq => 0,
        Op::Ne => 1,
        Op::Lt => 2,
        Op::Le => 3,
        Op::Gt => 4,
        Op::Ge => 5,
    }
}

fn op_from_tag(tag: u8) -> Result<Op, CheckpointError> {
    Ok(match tag {
        0 => Op::Eq,
        1 => Op::Ne,
        2 => Op::Lt,
        3 => Op::Le,
        4 => Op::Gt,
        5 => Op::Ge,
        _ => return Err(CheckpointError::Corrupt("literal op tag")),
    })
}

fn encode_predicate(out: &mut Vec<u8>, pred: &Predicate) {
    out.put_u16_le(code_u16(pred.len()));
    for l in pred.literals() {
        out.put_u16_le(l.attr);
        out.put_u8(op_tag(l.op));
        out.put_u16_le(l.value);
    }
}

fn decode_predicate(buf: &mut &[u8]) -> Result<Predicate, CheckpointError> {
    need(buf, 2, "predicate length")?;
    let n = buf.get_u16_le() as usize;
    need(buf, n * 5, "predicate literals")?;
    let mut lits = Vec::with_capacity(n);
    for _ in 0..n {
        let attr = buf.get_u16_le();
        let op = op_from_tag(buf.get_u8())?;
        let value = buf.get_u16_le();
        lits.push(Literal { attr, op, value });
    }
    Ok(Predicate::new(lits))
}

fn encode_rows(out: &mut Vec<u8>, rows: &[u32]) {
    out.put_u32_le(row_u32(rows.len()));
    for &r in rows {
        out.put_u32_le(r);
    }
}

fn decode_rows(buf: &mut &[u8]) -> Result<Vec<u32>, CheckpointError> {
    need(buf, 4, "row count")?;
    let n = buf.get_u32_le() as usize;
    need(buf, n * 4, "rows")?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(buf.get_u32_le());
    }
    Ok(rows)
}

fn encode_state(out: &mut Vec<u8>, state: &SearchState) {
    out.put_u32_le(row_u32(state.next_level));
    out.put_u8(u8::from(state.done));
    out.put_u64_le(state.possible as u64);
    out.put_u64_le(state.pruned_rule1 as u64);
    out.put_u64_le(state.pruned_redundant as u64);
    out.put_u64_le(state.evaluations as u64);

    out.put_u32_le(row_u32(state.levels.len()));
    for l in &state.levels {
        for v in [
            l.level,
            l.possible,
            l.generated,
            l.pruned_rule1,
            l.pruned_redundant,
            l.pruned_support_low,
            l.oversized,
            l.pruned_rule3,
            l.explored,
            l.pruned_rule4,
            l.pruned_rule5,
        ] {
            out.put_u64_le(v as u64);
        }
    }

    out.put_u32_le(row_u32(state.evaluated.len()));
    for s in &state.evaluated {
        encode_predicate(out, &s.predicate);
        encode_rows(out, &s.rows);
        out.put_f64_le(s.support);
        out.put_f64_le(s.rho);
        out.put_u32_le(row_u32(s.level));
    }

    out.put_u32_le(row_u32(state.frontier.len()));
    for node in &state.frontier {
        encode_predicate(out, &node.predicate);
        encode_rows(out, &node.rows);
        match node.rho {
            None => {
                out.put_u8(0);
                out.put_f64_le(0.0);
            }
            Some(r) => {
                out.put_u8(1);
                out.put_f64_le(r);
            }
        }
        out.put_f64_le(node.parent_floor);
    }
}

fn decode_state(buf: &mut &[u8]) -> Result<SearchState, CheckpointError> {
    need(buf, 4 + 1 + 8 * 4, "state header")?;
    let next_level = buf.get_u32_le() as usize;
    let done = match buf.get_u8() {
        0 => false,
        1 => true,
        _ => return Err(CheckpointError::Corrupt("done flag")),
    };
    let possible = buf.get_u64_le() as usize;
    let pruned_rule1 = buf.get_u64_le() as usize;
    let pruned_redundant = buf.get_u64_le() as usize;
    let evaluations = buf.get_u64_le() as usize;

    need(buf, 4, "level count")?;
    let n_levels = buf.get_u32_le() as usize;
    need(buf, n_levels * 11 * 8, "levels")?;
    let mut levels = Vec::with_capacity(n_levels);
    for _ in 0..n_levels {
        levels.push(LevelStats {
            level: buf.get_u64_le() as usize,
            possible: buf.get_u64_le() as usize,
            generated: buf.get_u64_le() as usize,
            pruned_rule1: buf.get_u64_le() as usize,
            pruned_redundant: buf.get_u64_le() as usize,
            pruned_support_low: buf.get_u64_le() as usize,
            oversized: buf.get_u64_le() as usize,
            pruned_rule3: buf.get_u64_le() as usize,
            explored: buf.get_u64_le() as usize,
            pruned_rule4: buf.get_u64_le() as usize,
            pruned_rule5: buf.get_u64_le() as usize,
        });
    }

    need(buf, 4, "evaluated count")?;
    let n_eval = buf.get_u32_le() as usize;
    // Every evaluated entry needs at least its fixed-size tail; a
    // corrupted count must not drive allocation.
    if n_eval > buf.remaining() {
        return Err(CheckpointError::Corrupt("evaluated count exceeds input size"));
    }
    let mut evaluated = Vec::with_capacity(n_eval);
    for _ in 0..n_eval {
        let predicate = decode_predicate(buf)?;
        let rows = decode_rows(buf)?;
        need(buf, 8 + 8 + 4, "evaluated tail")?;
        let support = buf.get_f64_le();
        let rho = buf.get_f64_le();
        let level = buf.get_u32_le() as usize;
        if !rho.is_finite() {
            return Err(CheckpointError::Corrupt("non-finite rho"));
        }
        evaluated.push(EvaluatedSubset { predicate, rows, support, rho, level });
    }

    need(buf, 4, "frontier count")?;
    let n_frontier = buf.get_u32_le() as usize;
    if n_frontier > buf.remaining() {
        return Err(CheckpointError::Corrupt("frontier count exceeds input size"));
    }
    let mut frontier = Vec::with_capacity(n_frontier);
    for _ in 0..n_frontier {
        let predicate = decode_predicate(buf)?;
        let rows = decode_rows(buf)?;
        need(buf, 1 + 8 + 8, "frontier tail")?;
        let rho = match buf.get_u8() {
            0 => {
                let _ = buf.get_f64_le();
                None
            }
            1 => Some(buf.get_f64_le()),
            _ => return Err(CheckpointError::Corrupt("rho tag")),
        };
        let parent_floor = buf.get_f64_le();
        frontier.push(LatticeNode { predicate, rows, rho, parent_floor });
    }

    Ok(SearchState {
        next_level,
        frontier,
        possible,
        pruned_rule1,
        pruned_redundant,
        evaluated,
        levels,
        evaluations,
        done,
    })
}

// ---------------------------------------------------------------------
// fingerprint
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn dataset(&mut self, data: &Dataset) {
        self.u64(data.num_rows() as u64);
        self.u64(data.num_attributes() as u64);
        for attr in 0..data.num_attributes() {
            for &code in data.column(attr) {
                self.u64(u64::from(code));
            }
        }
        for &label in data.labels() {
            self.u64(u64::from(label));
        }
    }
}

/// A content fingerprint of the explain inputs. Resuming validates it so
/// a checkpoint is never silently continued against different data.
pub fn fingerprint(train: &Dataset, test: &Dataset, group: GroupSpec) -> u64 {
    let mut h = Fnv::new();
    h.dataset(train);
    h.dataset(test);
    h.u64(group.attr as u64);
    h.u64(u64::from(group.privileged_code));
    h.0
}

// ---------------------------------------------------------------------
// whole-file codec + directory API
// ---------------------------------------------------------------------

fn encode(config: &FumeConfig, fp: u64, state: &SearchState) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 << 12);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    encode_config(&mut out, config);
    out.put_u64_le(fp);
    encode_state(&mut out, state);
    out
}

fn decode(mut data: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let buf = &mut data;
    need(buf, 4 + 2, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let config = decode_config(buf)?;
    need(buf, 8, "fingerprint")?;
    let fp = buf.get_u64_le();
    let state = decode_state(buf)?;
    if !buf.is_empty() {
        return Err(CheckpointError::Corrupt("trailing bytes"));
    }
    Ok(Checkpoint { config, fingerprint: fp, state })
}

fn state_path(dir: &Path) -> PathBuf {
    dir.join(STATE_FILE)
}

fn forest_path(dir: &Path) -> PathBuf {
    dir.join(FOREST_FILE)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    // The injectable crash window: bytes are on disk under the tmp name
    // but the rename has not happened — the previous checkpoint (if any)
    // is still the one a resume will see.
    fume_obs::fault::fault_point("mid-checkpoint-write");
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Saves the search state (atomically) into `dir`, creating it if
/// needed.
pub fn save_state(
    dir: &Path,
    config: &FumeConfig,
    fp: u64,
    state: &SearchState,
) -> Result<(), CheckpointError> {
    let _span = fume_obs::span!(
        "ckpt.save",
        level = state.next_level,
        done = state.done
    );
    std::fs::create_dir_all(dir)?;
    let bytes = encode(config, fp, state);
    fume_obs::counter!("ckpt.bytes_written", bytes.len());
    fume_obs::counter!("ckpt.levels_saved", 1);
    fume_obs::histogram!("ckpt.state_bytes", bytes.len());
    write_atomic(&state_path(dir), &bytes)
}

/// Loads the state sidecar from `dir`. A missing file is
/// [`CheckpointError::NothingToResume`]; anything unreadable is a clean
/// error, never a panic.
pub fn load_state(dir: &Path) -> Result<Checkpoint, CheckpointError> {
    let _span = fume_obs::span!("ckpt.load");
    let path = state_path(dir);
    let data = match std::fs::read(&path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CheckpointError::NothingToResume(dir.display().to_string()))
        }
        Err(e) => return Err(e.into()),
    };
    decode(&data)
}

/// Validates that a loaded checkpoint belongs to this run: same
/// run-defining configuration, same data fingerprint.
pub fn validate(
    ckpt: &Checkpoint,
    config: &FumeConfig,
    fp: u64,
) -> Result<(), CheckpointError> {
    let mut live = Vec::new();
    encode_config(&mut live, config);
    let mut saved = Vec::new();
    encode_config(&mut saved, &ckpt.config);
    if live != saved {
        return Err(CheckpointError::Mismatch(
            "configuration differs from the checkpointed run",
        ));
    }
    if fp != ckpt.fingerprint {
        return Err(CheckpointError::Mismatch(
            "train/test data or group differ from the checkpointed run",
        ));
    }
    Ok(())
}

/// Persists `forest` into `dir` (atomically) and returns the forest as a
/// resumed run will see it: round-tripped through the persistence format,
/// so its per-tree RNG streams are the deterministic reseeded ones rather
/// than the opaque post-training positions. Running the search on the
/// normalized forest makes interrupted-and-resumed and uninterrupted
/// checkpointed runs byte-identical.
pub fn normalize_forest(dir: &Path, forest: &DareForest) -> Result<DareForest, CheckpointError> {
    std::fs::create_dir_all(dir)?;
    let bytes = persist::to_bytes(forest);
    fume_obs::counter!("ckpt.bytes_written", bytes.len());
    write_atomic(&forest_path(dir), &bytes)?;
    Ok(persist::from_bytes(&bytes)?)
}

/// Loads the persisted deployed forest from `dir`.
pub fn load_forest(dir: &Path) -> Result<DareForest, CheckpointError> {
    match persist::load(forest_path(dir)) {
        Ok(f) => Ok(f),
        Err(PersistError::Io(e)) if e.contains("No such file") => {
            Err(CheckpointError::NothingToResume(dir.display().to_string()))
        }
        Err(e) => Err(e.into()),
    }
}

/// Deep structural sanity checks on a decoded state, run under
/// `FUME_DEEPCHECK=1` by the resume path: row selections sorted and
/// unique, levels contiguous, counters internally consistent.
pub fn deepcheck_state(state: &SearchState) -> Result<(), CheckpointError> {
    for (i, l) in state.levels.iter().enumerate() {
        if l.level != i + 1 {
            return Err(CheckpointError::Corrupt("levels not contiguous"));
        }
        if l.explored + l.pruned_support_low + l.oversized != l.generated {
            return Err(CheckpointError::Corrupt("level buckets disagree"));
        }
    }
    let explored: usize = state.levels.iter().map(|l| l.explored).sum();
    if explored != state.evaluations || state.evaluated.len() != explored {
        return Err(CheckpointError::Corrupt("evaluation counters disagree"));
    }
    let mut seen: HashMap<&Predicate, ()> = HashMap::new();
    for node in &state.frontier {
        if node.rows.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CheckpointError::Corrupt("frontier rows not sorted/unique"));
        }
        if seen.insert(&node.predicate, ()).is_some() {
            return Err(CheckpointError::Corrupt("duplicate frontier predicate"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_lattice::{SearchDriver, SearchParams, SupportRange};
    use fume_tabular::datasets::planted_toy;

    fn sample_state() -> SearchState {
        let (data, _) = planted_toy().generate_scaled(0.2, 7).unwrap();
        let params = SearchParams::new(SupportRange::new(0.05, 0.6).unwrap(), 3).unwrap();
        let mut driver = SearchDriver::new(&data, &params);
        let eval = |_: &Predicate, rows: &[u32]| 1.0 / (1.0 + rows.len() as f64);
        assert!(driver.step(&eval).unwrap());
        driver.state().clone()
    }

    fn sample_config() -> FumeConfig {
        FumeConfig::default()
            .with_max_literals(3)
            .with_jobs(2)
            .with_literal_gen(fume_lattice::LiteralGen::WithRanges)
    }

    #[test]
    fn state_roundtrips_bytewise() {
        let state = sample_state();
        let cfg = sample_config();
        let bytes = encode(&cfg, 0xFEED, &state);
        let ckpt = decode(&bytes).unwrap();
        assert_eq!(ckpt.state, state);
        assert_eq!(ckpt.fingerprint, 0xFEED);
        assert_eq!(ckpt.config, cfg);
        // Encode → decode → encode is stable.
        assert_eq!(encode(&ckpt.config, ckpt.fingerprint, &ckpt.state), bytes);
    }

    #[test]
    fn frontier_rho_and_floor_extremes_roundtrip() {
        let mut state = sample_state();
        // Exercise the Option tags and non-finite floors explicitly.
        if let Some(first) = state.frontier.first_mut() {
            first.rho = Some(-0.25);
            first.parent_floor = f64::NEG_INFINITY;
        }
        if let Some(last) = state.frontier.last_mut() {
            last.rho = None;
            last.parent_floor = f64::INFINITY;
        }
        let cfg = FumeConfig::default();
        let ckpt = decode(&encode(&cfg, 1, &state)).unwrap();
        assert_eq!(ckpt.state.frontier, state.frontier);
    }

    #[test]
    fn corrupt_and_truncated_inputs_error_cleanly() {
        let state = sample_state();
        let cfg = sample_config();
        let good = encode(&cfg, 42, &state);
        assert_eq!(decode(b"junk!!"), Err(CheckpointError::BadMagic));
        assert_eq!(decode(b"hi"), Err(CheckpointError::Corrupt("header")));
        let mut versioned = good.clone();
        versioned[4] = 0xFF;
        assert!(matches!(decode(&versioned), Err(CheckpointError::UnsupportedVersion(_))));
        // Truncation at every prefix length is an error, never a panic.
        for cut in 0..good.len() {
            assert!(decode(&good[..cut]).is_err(), "prefix of {cut} bytes");
        }
        // Trailing garbage is rejected too.
        let mut long = good.clone();
        long.push(0);
        assert_eq!(decode(&long), Err(CheckpointError::Corrupt("trailing bytes")));
    }

    #[test]
    fn save_load_via_directory_and_missing_dir_is_nothing_to_resume() {
        let dir = std::env::temp_dir().join("fume_ckpt_unit_test");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(matches!(
            load_state(&dir),
            Err(CheckpointError::NothingToResume(_))
        ));
        let state = sample_state();
        let cfg = sample_config();
        save_state(&dir, &cfg, 7, &state).unwrap();
        let ckpt = load_state(&dir).unwrap();
        assert_eq!(ckpt.state, state);
        validate(&ckpt, &cfg, 7).unwrap();
        // Wrong fingerprint / config are mismatches, not corruption.
        assert!(matches!(
            validate(&ckpt, &cfg, 8),
            Err(CheckpointError::Mismatch(_))
        ));
        let other = cfg.clone().with_top_k(9);
        assert!(matches!(
            validate(&ckpt, &other, 7),
            Err(CheckpointError::Mismatch(_))
        ));
        // checkpoint_dir itself is not run-defining.
        let mut relocated = cfg;
        relocated.checkpoint_dir = Some(PathBuf::from("/elsewhere"));
        validate(&ckpt, &relocated, 7).unwrap();
    }

    #[test]
    fn fingerprint_tracks_content_and_group() {
        let (a, group) = planted_toy().generate_scaled(0.2, 7).unwrap();
        let (b, _) = planted_toy().generate_scaled(0.2, 7).unwrap();
        let (c, _) = planted_toy().generate_scaled(0.2, 8).unwrap();
        assert_eq!(fingerprint(&a, &b, group), fingerprint(&b, &a, group));
        assert_ne!(fingerprint(&a, &b, group), fingerprint(&a, &c, group));
        let other = GroupSpec { attr: group.attr, privileged_code: group.privileged_code ^ 1 };
        assert_ne!(fingerprint(&a, &b, group), fingerprint(&a, &b, other));
    }

    #[test]
    fn deepcheck_accepts_live_states_and_rejects_tampered_ones() {
        let state = sample_state();
        deepcheck_state(&state).unwrap();
        let mut bad = state.clone();
        bad.evaluations += 1;
        assert!(deepcheck_state(&bad).is_err());
        let mut bad = state;
        if let Some(l) = bad.levels.first_mut() {
            l.level = 9;
        }
        assert!(deepcheck_state(&bad).is_err());
    }
}
