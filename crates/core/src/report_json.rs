//! Versioned JSON codec for [`FumeReport`] — the `fume-serve` wire
//! format (schema 1).
//!
//! The encoding is **canonical**: fixed key order, compact (no
//! whitespace), floats in Rust's shortest round-trip representation via
//! [`fume_obs::json::write_f64`]. Two runs that computed identical
//! results therefore serialize to identical bytes, which is what lets
//! the serve smoke gate diff a server response against a `fume-cli
//! --json` run, and lets tests assert concurrent engine output is
//! byte-identical to serial output.
//!
//! Wall-clock timings (`search_time`, `training_time`, `unlearn_time`)
//! are deliberately **excluded**: they vary run to run and would break
//! canonical comparison. [`FumeReport::from_json`] restores them as
//! zero; transports that want timings ship them outside the report
//! object (as `fume-serve` does in its response envelope).

use fume_fairness::FairnessMetric;
use fume_lattice::{EvaluatedSubset, LevelStats, Literal, Op, Predicate};
use fume_obs::clock::Duration;
use fume_obs::json::{self, Json};

use crate::algorithm::{ExplainedSubset, FumeError, FumeReport};

/// The schema version this codec writes (and the only one it reads).
pub const REPORT_SCHEMA: u64 = 1;

fn op_tag(op: Op) -> &'static str {
    match op {
        Op::Eq => "eq",
        Op::Ne => "ne",
        Op::Lt => "lt",
        Op::Le => "le",
        Op::Gt => "gt",
        Op::Ge => "ge",
    }
}

fn op_from_tag(tag: &str) -> Option<Op> {
    Some(match tag {
        "eq" => Op::Eq,
        "ne" => Op::Ne,
        "lt" => Op::Lt,
        "le" => Op::Le,
        "gt" => Op::Gt,
        "ge" => Op::Ge,
        _ => return None,
    })
}

/// The wire tag of a fairness metric (`"statistical_parity"`, …) — also
/// what `fume-serve` accepts as a request's `metric` member.
pub fn metric_tag(metric: FairnessMetric) -> &'static str {
    match metric {
        FairnessMetric::StatisticalParity => "statistical_parity",
        FairnessMetric::EqualizedOdds => "equalized_odds",
        FairnessMetric::PredictiveParity => "predictive_parity",
        FairnessMetric::EqualOpportunity => "equal_opportunity",
    }
}

/// Parses a [`metric_tag`] back; `None` for unknown tags.
pub fn metric_from_tag(tag: &str) -> Option<FairnessMetric> {
    Some(match tag {
        "statistical_parity" => FairnessMetric::StatisticalParity,
        "equalized_odds" => FairnessMetric::EqualizedOdds,
        "predictive_parity" => FairnessMetric::PredictiveParity,
        "equal_opportunity" => FairnessMetric::EqualOpportunity,
        _ => return None,
    })
}

fn write_usize(out: &mut String, v: usize) {
    out.push_str(&v.to_string());
}

fn write_rows(out: &mut String, rows: &[u32]) {
    out.push('[');
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.to_string());
    }
    out.push(']');
}

fn write_predicate(out: &mut String, predicate: &Predicate) {
    out.push('[');
    for (i, lit) in predicate.literals().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut first = true;
        out.push('{');
        json::write_key(out, &mut first, "attr");
        write_usize(out, lit.attr as usize);
        json::write_key(out, &mut first, "op");
        json::write_str(out, op_tag(lit.op));
        json::write_key(out, &mut first, "value");
        write_usize(out, lit.value as usize);
        out.push('}');
    }
    out.push(']');
}

impl FumeReport {
    /// Serializes the report as one line of canonical schema-1 JSON
    /// (see the module docs for what "canonical" buys and why timings
    /// are excluded).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut first = true;
        out.push('{');
        json::write_key(&mut out, &mut first, "schema");
        out.push_str(&REPORT_SCHEMA.to_string());
        json::write_key(&mut out, &mut first, "metric");
        json::write_str(&mut out, metric_tag(self.metric));
        json::write_key(&mut out, &mut first, "original_bias");
        json::write_f64(&mut out, self.original_bias);
        json::write_key(&mut out, &mut first, "original_fairness");
        json::write_f64(&mut out, self.original_fairness);
        json::write_key(&mut out, &mut first, "original_accuracy");
        json::write_f64(&mut out, self.original_accuracy);
        json::write_key(&mut out, &mut first, "unlearning_operations");
        write_usize(&mut out, self.unlearning_operations);

        json::write_key(&mut out, &mut first, "top_k");
        out.push('[');
        for (i, s) in self.top_k.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut f = true;
            out.push('{');
            json::write_key(&mut out, &mut f, "pattern");
            json::write_str(&mut out, &s.pattern);
            json::write_key(&mut out, &mut f, "predicate");
            write_predicate(&mut out, &s.predicate);
            json::write_key(&mut out, &mut f, "support");
            json::write_f64(&mut out, s.support);
            json::write_key(&mut out, &mut f, "parity_reduction");
            json::write_f64(&mut out, s.parity_reduction);
            json::write_key(&mut out, &mut f, "phi");
            json::write_f64(&mut out, s.phi);
            json::write_key(&mut out, &mut f, "rows");
            write_rows(&mut out, &s.rows);
            out.push('}');
        }
        out.push(']');

        json::write_key(&mut out, &mut first, "evaluated");
        out.push('[');
        for (i, s) in self.evaluated.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut f = true;
            out.push('{');
            json::write_key(&mut out, &mut f, "predicate");
            write_predicate(&mut out, &s.predicate);
            json::write_key(&mut out, &mut f, "support");
            json::write_f64(&mut out, s.support);
            json::write_key(&mut out, &mut f, "rho");
            json::write_f64(&mut out, s.rho);
            json::write_key(&mut out, &mut f, "level");
            write_usize(&mut out, s.level);
            json::write_key(&mut out, &mut f, "rows");
            write_rows(&mut out, &s.rows);
            out.push('}');
        }
        out.push(']');

        json::write_key(&mut out, &mut first, "levels");
        out.push('[');
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let fields: [(&str, usize); 11] = [
                ("level", l.level),
                ("possible", l.possible),
                ("generated", l.generated),
                ("pruned_rule1", l.pruned_rule1),
                ("pruned_redundant", l.pruned_redundant),
                ("pruned_support_low", l.pruned_support_low),
                ("oversized", l.oversized),
                ("pruned_rule3", l.pruned_rule3),
                ("explored", l.explored),
                ("pruned_rule4", l.pruned_rule4),
                ("pruned_rule5", l.pruned_rule5),
            ];
            let mut f = true;
            out.push('{');
            for (key, v) in fields {
                json::write_key(&mut out, &mut f, key);
                write_usize(&mut out, v);
            }
            out.push('}');
        }
        out.push(']');
        out.push('}');
        out
    }

    /// Parses a schema-1 report produced by [`FumeReport::to_json`].
    /// Timing fields come back as zero (they are not part of the wire
    /// format). Any structural problem — wrong schema, missing member,
    /// wrong type — yields [`FumeError::Codec`].
    pub fn from_json(s: &str) -> Result<Self, FumeError> {
        let root = json::parse(s).map_err(|e| FumeError::Codec(e.to_string()))?;
        let schema = field_u64(&root, "schema")?;
        if schema != REPORT_SCHEMA {
            return Err(FumeError::Codec(format!(
                "unsupported report schema {schema} (this build reads {REPORT_SCHEMA})"
            )));
        }
        let metric_str = field_str(&root, "metric")?;
        let metric = metric_from_tag(metric_str)
            .ok_or_else(|| FumeError::Codec(format!("unknown metric tag {metric_str:?}")))?;
        let top_k = field_arr(&root, "top_k")?
            .iter()
            .map(explained_from)
            .collect::<Result<Vec<_>, _>>()?;
        let evaluated = field_arr(&root, "evaluated")?
            .iter()
            .map(evaluated_from)
            .collect::<Result<Vec<_>, _>>()?;
        let levels = field_arr(&root, "levels")?
            .iter()
            .map(level_from)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FumeReport {
            top_k,
            evaluated,
            levels,
            metric,
            original_bias: field_f64(&root, "original_bias")?,
            original_fairness: field_f64(&root, "original_fairness")?,
            original_accuracy: field_f64(&root, "original_accuracy")?,
            unlearning_operations: field_usize(&root, "unlearning_operations")?,
            search_time: Duration::ZERO,
            training_time: Duration::ZERO,
            unlearn_time: Duration::ZERO,
        })
    }
}

fn missing(key: &str) -> FumeError {
    FumeError::Codec(format!("missing or mistyped member {key:?}"))
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, FumeError> {
    obj.get(key).and_then(Json::as_u64).ok_or_else(|| missing(key))
}

fn field_usize(obj: &Json, key: &str) -> Result<usize, FumeError> {
    Ok(field_u64(obj, key)? as usize)
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, FumeError> {
    obj.get(key).and_then(Json::as_f64).ok_or_else(|| missing(key))
}

fn field_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, FumeError> {
    obj.get(key).and_then(Json::as_str).ok_or_else(|| missing(key))
}

fn field_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], FumeError> {
    match obj.get(key) {
        Some(Json::Arr(items)) => Ok(items),
        _ => Err(missing(key)),
    }
}

fn rows_from(obj: &Json, key: &str) -> Result<Vec<u32>, FumeError> {
    field_arr(obj, key)?
        .iter()
        .map(|v| {
            v.as_u64()
                .filter(|&r| r <= u64::from(u32::MAX))
                .map(|r| r as u32)
                .ok_or_else(|| FumeError::Codec("row id out of u32 range".into()))
        })
        .collect()
}

fn predicate_from(obj: &Json, key: &str) -> Result<Predicate, FumeError> {
    let literals = field_arr(obj, key)?
        .iter()
        .map(|lit| {
            let attr = field_u64(lit, "attr")?;
            let value = field_u64(lit, "value")?;
            if attr > u64::from(u16::MAX) || value > u64::from(u16::MAX) {
                return Err(FumeError::Codec("literal attr/value out of u16 range".into()));
            }
            let tag = field_str(lit, "op")?;
            let op = op_from_tag(tag)
                .ok_or_else(|| FumeError::Codec(format!("unknown op tag {tag:?}")))?;
            Ok(Literal { attr: attr as u16, op, value: value as u16 })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Predicate::new(literals))
}

fn explained_from(obj: &Json) -> Result<ExplainedSubset, FumeError> {
    Ok(ExplainedSubset {
        pattern: field_str(obj, "pattern")?.to_string(),
        predicate: predicate_from(obj, "predicate")?,
        support: field_f64(obj, "support")?,
        parity_reduction: field_f64(obj, "parity_reduction")?,
        phi: field_f64(obj, "phi")?,
        rows: rows_from(obj, "rows")?,
    })
}

fn evaluated_from(obj: &Json) -> Result<EvaluatedSubset, FumeError> {
    Ok(EvaluatedSubset {
        predicate: predicate_from(obj, "predicate")?,
        rows: rows_from(obj, "rows")?,
        support: field_f64(obj, "support")?,
        rho: field_f64(obj, "rho")?,
        level: field_usize(obj, "level")?,
    })
}

fn level_from(obj: &Json) -> Result<LevelStats, FumeError> {
    Ok(LevelStats {
        level: field_usize(obj, "level")?,
        possible: field_usize(obj, "possible")?,
        generated: field_usize(obj, "generated")?,
        pruned_rule1: field_usize(obj, "pruned_rule1")?,
        pruned_redundant: field_usize(obj, "pruned_redundant")?,
        pruned_support_low: field_usize(obj, "pruned_support_low")?,
        oversized: field_usize(obj, "oversized")?,
        pruned_rule3: field_usize(obj, "pruned_rule3")?,
        explored: field_usize(obj, "explored")?,
        pruned_rule4: field_usize(obj, "pruned_rule4")?,
        pruned_rule5: field_usize(obj, "pruned_rule5")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(seed: u64) -> FumeReport {
        // A structurally rich report with awkward floats: denormal-ish
        // magnitudes, negatives, long fractions — everything the
        // shortest-repr writer must round-trip exactly.
        let mut rng = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut float = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng % 2_000_003) as f64 / 999_983.0 - 1.0
        };
        let predicate = Predicate::new(vec![
            Literal::eq(3, 7),
            Literal { attr: 1, op: Op::Le, value: 2 },
        ]);
        let top_k = vec![ExplainedSubset {
            pattern: "a = b AND c ≤ \"d\"".to_string(),
            predicate: predicate.clone(),
            support: float().abs(),
            parity_reduction: float(),
            phi: float(),
            rows: vec![0, 5, 17, u32::MAX],
        }];
        let evaluated = (0..4usize)
            .map(|i| EvaluatedSubset {
                predicate: Predicate::single(Literal::eq(i as u16, 1)),
                rows: (0..(i * 3) as u32).collect(),
                support: float().abs(),
                rho: float(),
                level: 1 + i % 2,
            })
            .collect();
        let levels = vec![LevelStats {
            level: 1,
            possible: 40,
            generated: 30,
            pruned_rule1: 1,
            pruned_redundant: 2,
            pruned_support_low: 3,
            oversized: 4,
            pruned_rule3: 5,
            explored: 20,
            pruned_rule4: 6,
            pruned_rule5: 7,
        }];
        FumeReport {
            top_k,
            evaluated,
            levels,
            metric: FairnessMetric::EqualOpportunity,
            original_bias: float().abs() + 1e-17,
            original_fairness: float(),
            original_accuracy: float().abs(),
            unlearning_operations: 24,
            search_time: Duration::from_nanos(123),
            training_time: Duration::from_nanos(456),
            unlearn_time: Duration::from_nanos(789),
        }
    }

    fn zero_timings(mut r: FumeReport) -> FumeReport {
        r.search_time = Duration::ZERO;
        r.training_time = Duration::ZERO;
        r.unlearn_time = Duration::ZERO;
        r
    }

    #[test]
    fn round_trip_is_exact_over_seeds() {
        for seed in 1..=20u64 {
            let report = synthetic(seed);
            let encoded = report.to_json();
            assert!(encoded.starts_with("{\"schema\":1,"), "schema leads: {encoded}");
            assert!(!encoded.contains('\n'), "one line");
            let decoded = FumeReport::from_json(&encoded).unwrap();
            assert_eq!(decoded, zero_timings(report), "seed {seed}");
            // Canonicality: re-encoding the decoded report is
            // byte-identical.
            assert_eq!(decoded.to_json(), encoded, "seed {seed}");
        }
    }

    #[test]
    fn all_metrics_and_ops_round_trip() {
        for metric in [
            FairnessMetric::StatisticalParity,
            FairnessMetric::EqualizedOdds,
            FairnessMetric::PredictiveParity,
            FairnessMetric::EqualOpportunity,
        ] {
            let mut report = synthetic(9);
            report.metric = metric;
            report.top_k[0].predicate = Predicate::new(
                [Op::Eq, Op::Ne, Op::Lt, Op::Le, Op::Gt, Op::Ge]
                    .into_iter()
                    .enumerate()
                    .map(|(i, op)| Literal { attr: i as u16, op, value: i as u16 })
                    .collect(),
            );
            let decoded = FumeReport::from_json(&report.to_json()).unwrap();
            assert_eq!(decoded, zero_timings(report));
        }
    }

    #[test]
    fn empty_report_round_trips() {
        let report = FumeReport {
            top_k: Vec::new(),
            evaluated: Vec::new(),
            levels: Vec::new(),
            metric: FairnessMetric::StatisticalParity,
            original_bias: 0.25,
            original_fairness: -0.25,
            original_accuracy: 0.875,
            unlearning_operations: 0,
            search_time: Duration::ZERO,
            training_time: Duration::ZERO,
            unlearn_time: Duration::ZERO,
        };
        let decoded = FumeReport::from_json(&report.to_json()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn wrong_schema_and_garbage_are_codec_errors() {
        let report = synthetic(4);
        let good = report.to_json();
        let bad_schema = good.replacen("\"schema\":1", "\"schema\":2", 1);
        assert!(matches!(
            FumeReport::from_json(&bad_schema),
            Err(FumeError::Codec(msg)) if msg.contains("schema 2")
        ));
        assert!(matches!(FumeReport::from_json("not json"), Err(FumeError::Codec(_))));
        assert!(matches!(FumeReport::from_json("{}"), Err(FumeError::Codec(_))));
        let bad_op = good.replacen("\"op\":\"eq\"", "\"op\":\"??\"", 1);
        if bad_op != good {
            assert!(matches!(FumeReport::from_json(&bad_op), Err(FumeError::Codec(_))));
        }
    }
}
