//! The level-wise lattice search driving FUME's Algorithm 1.
//!
//! The driver is generic over *how* a subset's attribution is computed: it
//! hands each level's in-range nodes to a [`BatchEvaluator`] (FUME's core
//! plugs in machine unlearning; tests plug in toy closures) and applies
//! the pruning rules of §4 between levels.
//!
//! Two entry points:
//!
//! - [`search`] runs the whole thing and returns a [`SearchOutcome`];
//! - [`SearchDriver`] advances one level per [`step`](SearchDriver::step)
//!   and exposes its [`SearchState`] between steps — the resumable core
//!   `fume-core` checkpoints at every level boundary.

use fume_tabular::{float, Dataset};

use crate::expand::{
    expand_level_with, expand_singleton_with, level1_nodes_with, LatticeNode,
};
use crate::params::{LatticeError, SearchParams};
use crate::predicate::Predicate;

/// One subset to evaluate: its predicate and selected training rows.
#[derive(Debug, Clone, Copy)]
pub struct EvalItem<'a> {
    /// The predicate.
    pub predicate: &'a Predicate,
    /// Sorted training-row ids it selects.
    pub rows: &'a [u32],
}

/// Computes parity reductions `ρ` for a batch of subsets. Implementations
/// may evaluate the batch in parallel; results must be index-aligned with
/// the input and finite — a NaN/infinite ρ aborts the search with
/// [`LatticeError::NonFiniteAttribution`].
pub trait BatchEvaluator {
    /// Returns `ρ` for each item (positive = removing the subset reduces
    /// the fairness violation).
    fn evaluate(&self, items: &[EvalItem<'_>]) -> Vec<f64>;
}

/// Any `Sync` closure is a sequential evaluator.
impl<F> BatchEvaluator for F
where
    F: Fn(&Predicate, &[u32]) -> f64 + Sync,
{
    fn evaluate(&self, items: &[EvalItem<'_>]) -> Vec<f64> {
        items.iter().map(|it| self(it.predicate, it.rows)).collect()
    }
}

/// An evaluated subset emitted by the search.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedSubset {
    /// The predicate.
    pub predicate: Predicate,
    /// Sorted training-row ids it selects.
    pub rows: Vec<u32>,
    /// Its support in the training set.
    pub support: f64,
    /// Its parity reduction `ρ = −φ` (positive = attributable).
    pub rho: f64,
    /// The lattice level (number of literals).
    pub level: usize,
}

/// Per-level exploration statistics (the paper's Table 9).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelStats {
    /// Lattice level (1-based).
    pub level: usize,
    /// Merge pairs considered (level 1: all attribute/value pairs).
    pub possible: usize,
    /// Nodes generated after Rule 1.
    pub generated: usize,
    /// Candidates discarded as contradictory (Rule 1).
    pub pruned_rule1: usize,
    /// Candidates discarded as redundant (extension toggle).
    pub pruned_redundant: usize,
    /// Nodes dropped for support below `τ_min` (Rule 2).
    pub pruned_support_low: usize,
    /// Nodes above `τ_max`: expanded but not evaluated/reported (Rule 2).
    pub oversized: usize,
    /// Evaluated nodes never expanded because the interpretability cap
    /// `η` was reached (Rule 3). Only non-zero at the final level, and
    /// disjoint from `oversized` — Rule-2 pass-through nodes stay in
    /// Rule 2's bucket.
    pub pruned_rule3: usize,
    /// Nodes whose attribution was estimated.
    pub explored: usize,
    /// Evaluated nodes not expanded because a parent had higher `ρ`
    /// (Rule 4).
    pub pruned_rule4: usize,
    /// Evaluated nodes not expanded because `ρ ≤ 0` (Rule 5).
    pub pruned_rule5: usize,
}

impl LevelStats {
    /// Fraction of possible subsets pruned before evaluation, in percent
    /// (the paper's "Subsets pruned (%)" row).
    pub fn pruned_percent(&self) -> f64 {
        if self.possible == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.explored as f64 / self.possible as f64)
    }
}

/// Result of a lattice search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Every subset whose attribution was estimated, with its `ρ`.
    pub evaluated: Vec<EvaluatedSubset>,
    /// Per-level statistics.
    pub levels: Vec<LevelStats>,
    /// Total number of evaluator calls (= unlearning operations in FUME).
    pub evaluations: usize,
}

impl SearchOutcome {
    /// The top-`k` attributable subsets: `ρ > 0`, sorted by decreasing
    /// `ρ` (ties broken toward fewer literals, then smaller support —
    /// the more interpretable subset first).
    pub fn top_k(&self, k: usize) -> Vec<&EvaluatedSubset> {
        let mut attributable: Vec<&EvaluatedSubset> =
            self.evaluated.iter().filter(|s| s.rho > 0.0).collect();
        attributable.sort_by(|a, b| {
            b.rho
                .total_cmp(&a.rho)
                .then(a.level.cmp(&b.level))
                .then(a.support.total_cmp(&b.support))
        });
        attributable.truncate(k);
        attributable
    }
}

/// The complete state of a search at a level boundary.
///
/// After level `l` is absorbed the state holds everything needed to
/// continue with level `l + 1`: the next frontier (predicates, row
/// selections, Rule-4 parent floors), every evaluated subset so far,
/// per-level statistics, and the expansion counters feeding the next
/// level's [`LevelStats`]. `fume-core` serializes this into its
/// checkpoint sidecar; [`SearchDriver::with_state`] reinjects it.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchState {
    /// 1-based level the current `frontier` belongs to (the next level
    /// to process).
    pub next_level: usize,
    /// Nodes awaiting Rule-2 gating and evaluation at `next_level`.
    pub frontier: Vec<LatticeNode>,
    /// Merge pairs considered while generating `frontier`.
    pub possible: usize,
    /// Rule-1 prunes incurred while generating `frontier`.
    pub pruned_rule1: usize,
    /// Redundancy prunes incurred while generating `frontier`.
    pub pruned_redundant: usize,
    /// Every subset evaluated so far.
    pub evaluated: Vec<EvaluatedSubset>,
    /// Statistics of completed levels.
    pub levels: Vec<LevelStats>,
    /// Evaluator calls so far.
    pub evaluations: usize,
    /// Whether the search has terminated.
    pub done: bool,
}

impl SearchState {
    /// The state before any level has run: level 1's frontier generated,
    /// nothing evaluated.
    pub fn initial(data: &Dataset, params: &SearchParams) -> Self {
        let frontier =
            level1_nodes_with(data, &params.exclude_attrs, params.literal_gen);
        Self {
            next_level: 1,
            possible: frontier.len(),
            frontier,
            pruned_rule1: 0,
            pruned_redundant: 0,
            evaluated: Vec::new(),
            levels: Vec::new(),
            evaluations: 0,
            done: false,
        }
    }
}

/// Step-at-a-time driver for the level-wise search.
///
/// [`search`] is a thin loop over this; callers that need to act at
/// level boundaries (checkpointing, progress reporting, budget caps)
/// drive it manually:
///
/// ```
/// use fume_lattice::{Predicate, SearchDriver, SearchParams, SupportRange};
/// use fume_tabular::datasets::planted_toy;
///
/// let (data, _) = planted_toy().generate_scaled(0.1, 1).unwrap();
/// let params = SearchParams::new(SupportRange::new(0.05, 0.5).unwrap(), 2).unwrap();
/// let eval = |_: &Predicate, rows: &[u32]| 1.0 / (1.0 + rows.len() as f64);
/// let mut driver = SearchDriver::new(&data, &params);
/// while driver.step(&eval).unwrap() {
///     // a level boundary: driver.state() is snapshot-able here
///     assert!(!driver.state().done);
/// }
/// let outcome = driver.into_outcome();
/// assert!(!outcome.top_k(3).is_empty());
/// ```
#[derive(Debug)]
pub struct SearchDriver<'a> {
    data: &'a Dataset,
    params: &'a SearchParams,
    state: SearchState,
}

impl<'a> SearchDriver<'a> {
    /// Starts a fresh search over `data`.
    pub fn new(data: &'a Dataset, params: &'a SearchParams) -> Self {
        Self { data, params, state: SearchState::initial(data, params) }
    }

    /// Continues a search from a previously captured [`SearchState`]
    /// (e.g. one decoded from a checkpoint). The caller must supply the
    /// same `data` and `params` the state was captured under.
    pub fn with_state(
        data: &'a Dataset,
        params: &'a SearchParams,
        state: SearchState,
    ) -> Self {
        Self { data, params, state }
    }

    /// The current level-boundary state.
    pub fn state(&self) -> &SearchState {
        &self.state
    }

    /// Whether the search has terminated.
    pub fn is_done(&self) -> bool {
        self.state.done
    }

    /// Consumes the driver, yielding the accumulated outcome.
    pub fn into_outcome(self) -> SearchOutcome {
        SearchOutcome {
            evaluated: self.state.evaluated,
            levels: self.state.levels,
            evaluations: self.state.evaluations,
        }
    }

    /// Processes one level: Rule-2 support gating, batch attribution
    /// estimation, Rules 4/5 expansion gating, and the merge to the next
    /// level. Returns `Ok(true)` while more levels remain.
    pub fn step<E: BatchEvaluator>(
        &mut self,
        evaluator: &E,
    ) -> Result<bool, LatticeError> {
        if self.state.done {
            return Ok(false);
        }
        let params = self.params;
        let n = self.data.num_rows();
        let st = &mut self.state;
        let level = st.next_level;
        let _level_span = fume_obs::span!("lattice.level", level = level);

        let mut stats = LevelStats {
            level,
            possible: st.possible,
            pruned_rule1: st.pruned_rule1,
            pruned_redundant: st.pruned_redundant,
            ..LevelStats::default()
        };
        let frontier = std::mem::take(&mut st.frontier);
        stats.generated = frontier.len();

        // --- Rule 2: support filtering. Tolerant at the τ bounds: a
        //     support landing within float::EPSILON of τ_min/τ_max counts
        //     as *at* the bound, so boundary values don't flake with the
        //     rounding of `rows / n` or of the configured τ itself. ---
        let mut in_range: Vec<LatticeNode> = Vec::new();
        let mut oversized: Vec<LatticeNode> = Vec::new();
        for node in frontier {
            let support = node.support(n);
            if float::approx_lt(support, params.support.min) {
                stats.pruned_support_low += 1;
            } else if float::approx_gt(support, params.support.max) {
                stats.oversized += 1;
                oversized.push(node); // expanded, never evaluated/reported
            } else {
                in_range.push(node);
            }
        }

        // --- estimate attribution of in-range nodes (the expensive step) ---
        let items: Vec<EvalItem<'_>> = in_range
            .iter()
            .map(|nd| EvalItem { predicate: &nd.predicate, rows: &nd.rows })
            .collect();
        fume_obs::progress::level_started(
            level as u64,
            stats.generated as u64,
            items.len() as u64,
        );
        let rhos = if items.is_empty() {
            Vec::new()
        } else {
            let _eval_span = fume_obs::span!("lattice.evaluate", batch = items.len());
            evaluator.evaluate(&items)
        };
        assert_eq!(rhos.len(), items.len(), "evaluator must align with its input");
        fume_obs::fault::fault_point("post-eval");

        // --- evaluator boundary: reject non-finite ρ before it can
        //     poison Rule 4/5 comparisons or the top-k ordering ---
        for (item, rho) in items.iter().zip(&rhos) {
            if !rho.is_finite() {
                return Err(LatticeError::NonFiniteAttribution {
                    predicate: item.predicate.render(self.data.schema()),
                    value: rho.to_string(),
                });
            }
        }
        drop(items);
        stats.explored = in_range.len();
        st.evaluations += in_range.len();

        // --- Rules 4 & 5: expansion gating (evaluated nodes are always
        //     reported; the rules only decide who gets children) ---
        let mut survivors: Vec<LatticeNode> = Vec::new();
        for (mut node, rho) in in_range.into_iter().zip(rhos) {
            node.rho = Some(rho);
            st.evaluated.push(EvaluatedSubset {
                predicate: node.predicate.clone(),
                rows: node.rows.clone(),
                support: node.support(n),
                rho,
                level,
            });
            if params.toggles.rule5_positive_only && rho <= 0.0 {
                stats.pruned_rule5 += 1;
                continue;
            }
            if params.toggles.rule4_parent_dominance && rho < node.parent_floor {
                stats.pruned_rule4 += 1;
                continue;
            }
            survivors.push(node);
        }

        // Rule 3 is the interpretability cap η: evaluated nodes that
        // survived rules 4/5 but are never expanded because the level
        // limit was reached. Oversized nodes are *not* re-counted here —
        // Rule 2 already claimed them.
        if level == params.max_literals {
            stats.pruned_rule3 = survivors.len();
        }

        // Counters are emitted unconditionally (zero deltas included) so a
        // trace always carries one data point per rule per level.
        fume_obs::counter!("lattice.generated", stats.generated);
        fume_obs::counter!("lattice.explored", stats.explored);
        fume_obs::counter!("lattice.pruned.rule1", stats.pruned_rule1);
        fume_obs::counter!(
            "lattice.pruned.rule2",
            stats.pruned_support_low + stats.oversized
        );
        fume_obs::counter!("lattice.pruned.rule3", stats.pruned_rule3);
        fume_obs::counter!("lattice.pruned.rule4", stats.pruned_rule4);
        fume_obs::counter!("lattice.pruned.rule5", stats.pruned_rule5);
        fume_obs::counter!("lattice.pruned.redundant", stats.pruned_redundant);
        st.levels.push(stats);

        if level == params.max_literals {
            st.done = true;
            return Ok(false);
        }

        // --- merge to the next level (Rule 1 inside). A lone survivor
        //     still expands: it has no apriori join partner, but
        //     conjoining fresh level-1 literals grows its sub-lattice. ---
        let mut expandable = survivors;
        expandable.extend(oversized);
        let expansion = match expandable.len() {
            0 => {
                st.done = true;
                return Ok(false);
            }
            1 => expand_singleton_with(
                self.data,
                &expandable[0],
                &params.exclude_attrs,
                params.literal_gen,
                params.toggles.rule1_satisfiability,
                params.toggles.prune_redundant,
            ),
            _ => expand_level_with(
                self.data,
                &expandable,
                params.toggles.rule1_satisfiability,
                params.toggles.prune_redundant,
            ),
        };
        st.possible = expansion.possible;
        st.pruned_rule1 = expansion.pruned_rule1;
        st.pruned_redundant = expansion.pruned_redundant;
        st.frontier = expansion.children;
        st.next_level = level + 1;
        if st.frontier.is_empty() {
            st.done = true;
        }
        Ok(!st.done)
    }
}

/// Runs the level-wise search over `data`'s training rows.
///
/// This is the search skeleton of the paper's Algorithm 1: generate level
/// 1, then per level — Rule 2 support filtering, attribution estimation
/// for in-range nodes, Rules 4/5 expansion gating — until the
/// interpretability cap `η` (Rule 3) or an empty frontier ends the run.
/// Fails only if the evaluator emits a non-finite attribution.
pub fn search<E: BatchEvaluator>(
    data: &Dataset,
    params: &SearchParams,
    evaluator: &E,
) -> Result<SearchOutcome, LatticeError> {
    let _span = fume_obs::span!(
        "lattice.search",
        eta = params.max_literals,
        rows = data.num_rows()
    );
    let mut driver = SearchDriver::new(data, params);
    while driver.step(evaluator)? {}
    Ok(driver.into_outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::{Literal, Op};
    use crate::params::{RuleToggles, SupportRange};
    use fume_tabular::{Attribute, Schema};
    use std::sync::Arc;

    /// 3 binary attributes, 64 rows, uniform marginals.
    fn data() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("a", vec!["0".into(), "1".into()]),
                Attribute::categorical("b", vec!["0".into(), "1".into()]),
                Attribute::categorical("c", vec!["0".into(), "1".into()]),
            ])
            .unwrap(),
        );
        let mut cols = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut labels = Vec::new();
        for i in 0..64usize {
            cols[0].push((i % 2) as u16);
            cols[1].push(((i / 2) % 2) as u16);
            cols[2].push(((i / 4) % 2) as u16);
            labels.push(i % 3 == 0);
        }
        Dataset::new(schema, cols, labels).unwrap()
    }

    fn params(min: f64, max: f64, eta: usize) -> SearchParams {
        SearchParams::new(SupportRange::new(min, max).unwrap(), eta).unwrap()
    }

    /// ρ = best contained literal weight minus a per-literal complexity
    /// penalty; predicates without a rewarding literal score −1. With
    /// weights (a=1 → 0.5, b=1 → 0.4, c=1 → 0.3) every level-2 node scores
    /// strictly below both parents, so Rule 4 stops expansion at level 2.
    fn toy_eval(pred: &Predicate, _rows: &[u32]) -> f64 {
        let w = |l: &Literal| match (l.attr, l.value) {
            (0, 1) => 0.5,
            (1, 1) => 0.4,
            (2, 1) => 0.3,
            _ => f64::NEG_INFINITY,
        };
        let best = pred.literals().iter().map(w).fold(f64::NEG_INFINITY, f64::max);
        if best.is_finite() {
            best - 0.1 * (pred.len() as f64 - 1.0)
        } else {
            -1.0
        }
    }

    #[test]
    fn level1_only_when_eta_is_one() {
        let d = data();
        let out = search(&d, &params(0.0, 1.0, 1), &toy_eval).unwrap();
        assert_eq!(out.levels.len(), 1);
        assert!(out.evaluated.iter().all(|s| s.level == 1));
        // 3 binary attrs → 6 level-1 nodes, all in [0,1] support.
        assert_eq!(out.levels[0].explored, 6);
        assert_eq!(out.evaluations, 6);
    }

    #[test]
    fn top_k_ranks_by_rho() {
        let d = data();
        let out = search(&d, &params(0.0, 1.0, 2), &toy_eval).unwrap();
        let top = out.top_k(3);
        assert!(!top.is_empty());
        // Best is the level-1 node `a = 1` with ρ = 1.0.
        assert_eq!(top[0].predicate.literals(), &[Literal::eq(0, 1)]);
        assert!(top.windows(2).all(|w| w[0].rho >= w[1].rho));
        // All reported are attributable.
        assert!(top.iter().all(|s| s.rho > 0.0));
    }

    #[test]
    fn rule5_blocks_expansion_of_nonattributable_nodes() {
        let d = data();
        let out = search(&d, &params(0.0, 1.0, 2), &toy_eval).unwrap();
        // Level-1: the three `x = 0` nodes score −1 → pruned by rule 5.
        assert_eq!(out.levels[0].pruned_rule5, 3);
        // Level-2 children exist and descend only from rewarding literals.
        let level2: Vec<_> = out.evaluated.iter().filter(|s| s.level == 2).collect();
        assert_eq!(level2.len(), 3);
        for s in &level2 {
            assert!(
                s.predicate.literals().iter().all(|l| l.value == 1),
                "{:?}",
                s.predicate
            );
        }
    }

    #[test]
    fn rule4_prunes_children_below_parent_rho() {
        let d = data();
        // Every level-2 node scores below both parents: with η=3 no
        // level-3 node may exist when rule 4 is on.
        let out = search(&d, &params(0.0, 1.0, 3), &toy_eval).unwrap();
        assert!(out.evaluated.iter().all(|s| s.level <= 2));
        assert_eq!(out.levels[1].pruned_rule4, 3);

        // With rule 4 off, level 3 is reached.
        let mut p = params(0.0, 1.0, 3);
        p.toggles = RuleToggles { rule4_parent_dominance: false, ..RuleToggles::default() };
        let out = search(&d, &p, &toy_eval).unwrap();
        assert!(out.evaluated.iter().any(|s| s.level == 3));
    }

    #[test]
    fn support_range_gates_evaluation_but_not_expansion() {
        let d = data();
        // Level-1 nodes all have support 0.5 (> max 0.3): oversized,
        // expanded but unevaluated. Level-2 nodes have support 0.25.
        let out = search(&d, &params(0.1, 0.3, 2), &toy_eval).unwrap();
        assert_eq!(out.levels[0].explored, 0);
        assert_eq!(out.levels[0].oversized, 6);
        assert!(out.levels[1].explored > 0);
        assert!(out.evaluated.iter().all(|s| s.level == 2));
    }

    #[test]
    fn below_min_support_kills_subtree() {
        let d = data();
        // min 0.6: every level-1 node (support .5) is dropped; search ends.
        let out = search(&d, &params(0.6, 1.0, 3), &toy_eval).unwrap();
        assert!(out.evaluated.is_empty());
        assert_eq!(out.levels[0].pruned_support_low, 6);
        assert_eq!(out.levels.len(), 1);
    }

    #[test]
    fn excluded_attributes_never_appear() {
        let d = data();
        let mut p = params(0.0, 1.0, 2);
        p.exclude_attrs = vec![0];
        let out = search(&d, &p, &|_: &Predicate, _: &[u32]| 1.0).unwrap();
        assert!(out
            .evaluated
            .iter()
            .all(|s| s.predicate.literals().iter().all(|l| l.attr != 0)));
    }

    #[test]
    fn evaluations_counter_matches_explored_sum() {
        let d = data();
        let out = search(&d, &params(0.0, 1.0, 3), &|_: &Predicate, _: &[u32]| 1.0).unwrap();
        let explored: usize = out.levels.iter().map(|l| l.explored).sum();
        assert_eq!(out.evaluations, explored);
    }

    #[test]
    fn search_with_range_literals_evaluates_interval_subsets() {
        use crate::expand::LiteralGen;
        use fume_tabular::AttrKind;
        // Dataset with an ordinal attribute of 4 bins.
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::ordinal(
                    "age",
                    vec!["a".into(), "b".into(), "c".into(), "d".into()],
                ),
                Attribute::categorical("x", vec!["0".into(), "1".into()]),
            ])
            .unwrap(),
        );
        assert_eq!(schema.attribute(0).unwrap().kind(), AttrKind::Ordinal);
        let n = 80usize;
        let cols = vec![
            (0..n).map(|i| (i % 4) as u16).collect(),
            (0..n).map(|i| ((i / 4) % 2) as u16).collect(),
        ];
        let labels = (0..n).map(|i| i % 2 == 0).collect();
        let d = Dataset::new(schema, cols, labels).unwrap();

        let mut p = params(0.0, 1.0, 2);
        p.literal_gen = LiteralGen::WithRanges;
        p.toggles.prune_redundant = true;
        let out = search(&d, &p, &|_: &Predicate, _: &[u32]| 1.0).unwrap();
        let has_range = out.evaluated.iter().any(|s| {
            s.predicate
                .literals()
                .iter()
                .any(|l| matches!(l.op, Op::Le | Op::Ge))
        });
        assert!(has_range, "range literals must be searched");
        // Redundant range conjunctions never surface.
        for s in &out.evaluated {
            let lits = s.predicate.literals();
            if lits.len() == 2 && lits[0].attr == lits[1].attr {
                // Same-attribute pairs must genuinely narrow the selection
                // relative to each constituent literal.
                let a = Predicate::single(lits[0]).select(&d).len();
                let b = Predicate::single(lits[1]).select(&d).len();
                assert!(s.rows.len() < a && s.rows.len() < b, "{:?}", s.predicate);
            }
        }
    }

    #[test]
    fn pruned_percent_formula() {
        let s = LevelStats { possible: 200, explored: 50, ..Default::default() };
        assert!((s.pruned_percent() - 75.0).abs() < 1e-12);
        assert_eq!(LevelStats::default().pruned_percent(), 0.0);
    }

    /// ρ rewards exactly one level-1 literal (`a = 1`) and one deeper
    /// conjunction on top of it — the shape the old `expandable.len() < 2`
    /// termination could never find.
    fn lone_survivor_eval(pred: &Predicate, _rows: &[u32]) -> f64 {
        let has = |a: u16, v: u16| {
            pred.literals()
                .iter()
                .any(|l| l.attr == a && l.value == v && l.op == Op::Eq)
        };
        match (has(0, 1), has(1, 1)) {
            (true, true) => 0.8,
            (true, false) if pred.len() == 1 => 0.5,
            _ => -1.0,
        }
    }

    #[test]
    fn lone_surviving_node_is_still_expanded() {
        let d = data();
        // Level 1: only `a = 1` survives Rule 5 (ρ 0.5, everything else
        // −1). The search must not stop there — conjoining fresh level-1
        // literals finds the deeper, stronger `a = 1 ∧ b = 1` (ρ 0.8).
        let out = search(&d, &params(0.0, 1.0, 2), &lone_survivor_eval).unwrap();
        assert_eq!(out.levels.len(), 2, "the singleton frontier must expand");
        let deeper = Predicate::new(vec![Literal::eq(0, 1), Literal::eq(1, 1)]);
        assert!(
            out.evaluated.iter().any(|s| s.predicate == deeper),
            "deeper predicate not evaluated: {:?}",
            out.evaluated.iter().map(|s| &s.predicate).collect::<Vec<_>>()
        );
        let top = out.top_k(1);
        assert_eq!(top[0].predicate, deeper);
        assert!((top[0].rho - 0.8).abs() < 1e-12);
        // Level-2 accounting of the singleton expansion: the 6 level-1
        // literals minus `a = 1` itself are candidates; `a = 0` is
        // contradictory under Rule 1.
        assert_eq!(out.levels[1].possible, 5);
        assert_eq!(out.levels[1].pruned_rule1, 1);
        assert_eq!(out.levels[1].generated, 4);
    }

    #[test]
    fn lone_oversized_node_is_still_expanded() {
        let d = data();
        // τ_max 0.3 with exclusions leaving one attribute: the two `a = *`
        // nodes have support 0.5 → both oversized... use exclusions to
        // shrink the frontier to a single oversized node instead.
        let mut p = params(0.35, 0.6, 2);
        p.exclude_attrs = vec![1, 2];
        // Frontier: `a = 0`, `a = 1`, both support 0.5 → in range, both
        // rewarded → not a singleton. Force one out via the evaluator.
        let eval = |pred: &Predicate, _rows: &[u32]| {
            if pred.literals().iter().any(|l| l.attr == 0 && l.value == 1 && l.op == Op::Eq) {
                1.0
            } else {
                -1.0
            }
        };
        let out = search(&d, &p, &eval).unwrap();
        // `a = 1` is the lone survivor; its children conjoin b/c literals
        // but those attrs are excluded → expansion yields nothing and the
        // search ends cleanly after level 1.
        assert_eq!(out.levels.len(), 1);

        // Without exclusions the lone survivor grows children.
        let p = params(0.0, 1.0, 2);
        let out = search(&d, &p, &eval).unwrap();
        assert!(out.evaluated.iter().any(|s| s.level == 2));
    }

    #[test]
    fn non_finite_rho_is_rejected_with_a_clear_error() {
        let d = data();
        let nan_for_b1 = |pred: &Predicate, _rows: &[u32]| {
            if pred.literals().iter().any(|l| l.attr == 1 && l.value == 1) {
                f64::NAN
            } else {
                1.0
            }
        };
        let err = search(&d, &params(0.0, 1.0, 2), &nan_for_b1).unwrap_err();
        match &err {
            LatticeError::NonFiniteAttribution { predicate, value } => {
                assert!(predicate.contains("b = 1"), "{predicate}");
                assert_eq!(value, "NaN");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(err.to_string().contains("non-finite"));

        // Infinities are equally rejected.
        let inf = |_: &Predicate, _: &[u32]| f64::INFINITY;
        assert!(matches!(
            search(&d, &params(0.0, 1.0, 1), &inf),
            Err(LatticeError::NonFiniteAttribution { .. })
        ));
    }

    #[test]
    fn rule3_counts_only_evaluated_survivors_not_oversized() {
        // Skewed marginals so the final level holds both in-range and
        // oversized nodes: attr a is 48/16, attrs b/c are 32/32.
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("a", vec!["0".into(), "1".into()]),
                Attribute::categorical("b", vec!["0".into(), "1".into()]),
                Attribute::categorical("c", vec!["0".into(), "1".into()]),
            ])
            .unwrap(),
        );
        let mut cols = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut labels = Vec::new();
        for i in 0..64usize {
            cols[0].push(u16::from(i % 4 == 0));
            cols[1].push(((i / 2) % 2) as u16);
            cols[2].push(((i / 4) % 2) as u16);
            labels.push(i % 3 == 0);
        }
        let d = Dataset::new(schema, cols, labels).unwrap();

        // Range [0.2, 0.3]: level 1 has `a = 1` (0.25) in range; `a = 0`
        // (0.75), b/c (0.5 each) oversized. All five expand to level 2,
        // where supports straddle the range again.
        let out = search(&d, &params(0.2, 0.3, 2), &|_: &Predicate, _: &[u32]| 1.0).unwrap();
        let last = out.levels[1];
        assert!(last.oversized > 0, "need oversized nodes at the final level");
        assert!(last.explored > 0, "need evaluated nodes at the final level");
        // Every evaluated node survives (ρ = 1): Rule 3 claims exactly
        // those, while the oversized stay in Rule 2's bucket.
        assert_eq!(last.pruned_rule3, last.explored);
        assert!(
            last.pruned_rule3 + last.oversized <= last.generated,
            "buckets must not double-count: {last:?}"
        );
        // Non-final levels never charge Rule 3.
        assert_eq!(out.levels[0].pruned_rule3, 0);
        // And the Table-9 headline number follows from explored alone.
        let expect = 100.0 * (1.0 - last.explored as f64 / last.possible as f64);
        assert!((last.pruned_percent() - expect).abs() < 1e-12);
    }

    #[test]
    fn support_boundaries_are_epsilon_tolerant() {
        let d = data(); // level-1 supports 0.5, level-2 supports 0.25
        // τ_min arrived through arithmetic: 0.1 + 0.2 overshoots 0.3, yet
        // a support of exactly 0.3 must not be pruned low. Build a 60-row
        // set where one literal selects 18 rows (support 18/60 = 0.3).
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "g",
                vec!["0".into(), "1".into()],
            )])
            .unwrap(),
        );
        let col: Vec<u16> = (0..60).map(|i| u16::from(i < 18)).collect();
        let labels = (0..60).map(|i| i % 2 == 0).collect();
        let d60 = Dataset::new(schema, vec![col], labels).unwrap();
        let p = SearchParams::new(SupportRange::new(0.1 + 0.2, 0.9).unwrap(), 1).unwrap();
        let out = search(&d60, &p, &|_: &Predicate, _: &[u32]| 1.0).unwrap();
        assert_eq!(
            out.levels[0].pruned_support_low, 0,
            "support exactly at τ_min must stay in range: {:?}",
            out.levels[0]
        );
        assert_eq!(out.levels[0].explored, 2); // 0.3 and 0.7 both within [0.3, 0.9]

        // τ_max a hair below the support: within epsilon counts as at the
        // bound, not above it.
        let p = SearchParams::new(SupportRange::new(0.0, 0.5 - 1e-12).unwrap(), 1).unwrap();
        let out = search(&d, &p, &|_: &Predicate, _: &[u32]| 1.0).unwrap();
        assert_eq!(out.levels[0].oversized, 0, "{:?}", out.levels[0]);
        assert_eq!(out.levels[0].explored, 6);

        // Genuinely out-of-range supports are still gated.
        let p = SearchParams::new(SupportRange::new(0.0, 0.49).unwrap(), 1).unwrap();
        let out = search(&d, &p, &|_: &Predicate, _: &[u32]| 1.0).unwrap();
        assert_eq!(out.levels[0].oversized, 6);
    }

    #[test]
    fn driver_steps_match_whole_search_and_resume_midway() {
        let d = data();
        let p = params(0.0, 1.0, 3);
        let eval = |_: &Predicate, rows: &[u32]| 1.0 / (1.0 + rows.len() as f64);
        let whole = search(&d, &p, &eval).unwrap();

        // Stepping manually yields the identical outcome.
        let mut driver = SearchDriver::new(&d, &p);
        let mut boundaries = 0;
        while driver.step(&eval).unwrap() {
            boundaries += 1;
        }
        assert!(boundaries > 0);
        assert_eq!(driver.into_outcome(), whole);

        // Snapshot after the first level, continue from the clone: the
        // rest of the search is byte-identical.
        let mut driver = SearchDriver::new(&d, &p);
        assert!(driver.step(&eval).unwrap());
        let snapshot = driver.state().clone();
        let mut resumed = SearchDriver::with_state(&d, &p, snapshot);
        while resumed.step(&eval).unwrap() {}
        assert_eq!(resumed.into_outcome(), whole);

        // A finished state refuses further work.
        let mut driver = SearchDriver::new(&d, &p);
        while driver.step(&eval).unwrap() {}
        assert!(driver.is_done());
        assert!(!driver.step(&eval).unwrap());
    }
}
