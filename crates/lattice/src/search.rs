//! The level-wise lattice search driving FUME's Algorithm 1.
//!
//! The driver is generic over *how* a subset's attribution is computed: it
//! hands each level's in-range nodes to a [`BatchEvaluator`] (FUME's core
//! plugs in machine unlearning; tests plug in toy closures) and applies
//! the pruning rules of §4 between levels.

use fume_tabular::Dataset;

use crate::expand::{expand_level_with, level1_nodes_with, LatticeNode};
use crate::params::SearchParams;
use crate::predicate::Predicate;

/// One subset to evaluate: its predicate and selected training rows.
#[derive(Debug, Clone, Copy)]
pub struct EvalItem<'a> {
    /// The predicate.
    pub predicate: &'a Predicate,
    /// Sorted training-row ids it selects.
    pub rows: &'a [u32],
}

/// Computes parity reductions `ρ` for a batch of subsets. Implementations
/// may evaluate the batch in parallel; results must be index-aligned with
/// the input.
pub trait BatchEvaluator {
    /// Returns `ρ` for each item (positive = removing the subset reduces
    /// the fairness violation).
    fn evaluate(&self, items: &[EvalItem<'_>]) -> Vec<f64>;
}

/// Any `Sync` closure is a sequential evaluator.
impl<F> BatchEvaluator for F
where
    F: Fn(&Predicate, &[u32]) -> f64 + Sync,
{
    fn evaluate(&self, items: &[EvalItem<'_>]) -> Vec<f64> {
        items.iter().map(|it| self(it.predicate, it.rows)).collect()
    }
}

/// An evaluated subset emitted by the search.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedSubset {
    /// The predicate.
    pub predicate: Predicate,
    /// Sorted training-row ids it selects.
    pub rows: Vec<u32>,
    /// Its support in the training set.
    pub support: f64,
    /// Its parity reduction `ρ = −φ` (positive = attributable).
    pub rho: f64,
    /// The lattice level (number of literals).
    pub level: usize,
}

/// Per-level exploration statistics (the paper's Table 9).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelStats {
    /// Lattice level (1-based).
    pub level: usize,
    /// Merge pairs considered (level 1: all attribute/value pairs).
    pub possible: usize,
    /// Nodes generated after Rule 1.
    pub generated: usize,
    /// Candidates discarded as contradictory (Rule 1).
    pub pruned_rule1: usize,
    /// Candidates discarded as redundant (extension toggle).
    pub pruned_redundant: usize,
    /// Nodes dropped for support below `τ_min` (Rule 2).
    pub pruned_support_low: usize,
    /// Nodes above `τ_max`: expanded but not evaluated/reported (Rule 2).
    pub oversized: usize,
    /// Nodes whose attribution was estimated.
    pub explored: usize,
    /// Evaluated nodes not expanded because a parent had higher `ρ`
    /// (Rule 4).
    pub pruned_rule4: usize,
    /// Evaluated nodes not expanded because `ρ ≤ 0` (Rule 5).
    pub pruned_rule5: usize,
}

impl LevelStats {
    /// Fraction of possible subsets pruned before evaluation, in percent
    /// (the paper's "Subsets pruned (%)" row).
    pub fn pruned_percent(&self) -> f64 {
        if self.possible == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.explored as f64 / self.possible as f64)
    }
}

/// Result of a lattice search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Every subset whose attribution was estimated, with its `ρ`.
    pub evaluated: Vec<EvaluatedSubset>,
    /// Per-level statistics.
    pub levels: Vec<LevelStats>,
    /// Total number of evaluator calls (= unlearning operations in FUME).
    pub evaluations: usize,
}

impl SearchOutcome {
    /// The top-`k` attributable subsets: `ρ > 0`, sorted by decreasing
    /// `ρ` (ties broken toward fewer literals, then smaller support —
    /// the more interpretable subset first).
    pub fn top_k(&self, k: usize) -> Vec<&EvaluatedSubset> {
        let mut attributable: Vec<&EvaluatedSubset> =
            self.evaluated.iter().filter(|s| s.rho > 0.0).collect();
        attributable.sort_by(|a, b| {
            b.rho
                .total_cmp(&a.rho)
                .then(a.level.cmp(&b.level))
                .then(a.support.total_cmp(&b.support))
        });
        attributable.truncate(k);
        attributable
    }
}

/// Runs the level-wise search over `data`'s training rows.
///
/// This is the search skeleton of the paper's Algorithm 1: generate level
/// 1, then per level — Rule 2 support filtering, attribution estimation
/// for in-range nodes, Rules 4/5 expansion gating — until the
/// interpretability cap `η` (Rule 3), an empty frontier, or too few nodes
/// left to merge.
pub fn search<E: BatchEvaluator>(
    data: &Dataset,
    params: &SearchParams,
    evaluator: &E,
) -> SearchOutcome {
    let _span = fume_obs::span!(
        "lattice.search",
        eta = params.max_literals,
        rows = data.num_rows()
    );
    let n = data.num_rows();
    let mut evaluated = Vec::new();
    let mut levels = Vec::new();
    let mut evaluations = 0usize;

    let mut frontier =
        level1_nodes_with(data, &params.exclude_attrs, params.literal_gen);
    let mut possible = frontier.len();
    let mut pruned_rule1 = 0usize;
    let mut pruned_redundant = 0usize;

    for level in 1..=params.max_literals {
        let _level_span = fume_obs::span!("lattice.level", level = level);
        let mut stats = LevelStats {
            level,
            possible,
            pruned_rule1,
            pruned_redundant,
            ..LevelStats::default()
        };
        stats.generated = frontier.len();

        // --- Rule 2: support filtering ---
        let mut in_range: Vec<LatticeNode> = Vec::new();
        let mut expandable: Vec<LatticeNode> = Vec::new();
        for node in frontier {
            let support = node.support(n);
            if support < params.support.min {
                stats.pruned_support_low += 1;
            } else if support > params.support.max {
                stats.oversized += 1;
                expandable.push(node); // expanded, never evaluated/reported
            } else {
                in_range.push(node);
            }
        }

        // --- estimate attribution of in-range nodes (the expensive step) ---
        let items: Vec<EvalItem<'_>> = in_range
            .iter()
            .map(|nd| EvalItem { predicate: &nd.predicate, rows: &nd.rows })
            .collect();
        let rhos = if items.is_empty() {
            Vec::new()
        } else {
            let _eval_span = fume_obs::span!("lattice.evaluate", batch = items.len());
            evaluator.evaluate(&items)
        };
        assert_eq!(rhos.len(), items.len(), "evaluator must align with its input");
        stats.explored = in_range.len();
        evaluations += in_range.len();

        // --- Rules 4 & 5: expansion gating (evaluated nodes are always
        //     reported; the rules only decide who gets children) ---
        for (mut node, rho) in in_range.into_iter().zip(rhos) {
            node.rho = Some(rho);
            evaluated.push(EvaluatedSubset {
                predicate: node.predicate.clone(),
                rows: node.rows.clone(),
                support: node.support(n),
                rho,
                level,
            });
            if params.toggles.rule5_positive_only && rho <= 0.0 {
                stats.pruned_rule5 += 1;
                continue;
            }
            if params.toggles.rule4_parent_dominance && rho < node.parent_floor {
                stats.pruned_rule4 += 1;
                continue;
            }
            expandable.push(node);
        }

        // Counters are emitted unconditionally (zero deltas included) so a
        // trace always carries one data point per rule per level.
        fume_obs::counter!("lattice.generated", stats.generated);
        fume_obs::counter!("lattice.explored", stats.explored);
        fume_obs::counter!("lattice.pruned.rule1", stats.pruned_rule1);
        fume_obs::counter!(
            "lattice.pruned.rule2",
            stats.pruned_support_low + stats.oversized
        );
        // Rule 3 is the interpretability cap η: nodes that survived rules
        // 4/5 but are never expanded because the level limit was reached.
        fume_obs::counter!(
            "lattice.pruned.rule3",
            if level == params.max_literals { expandable.len() } else { 0 }
        );
        fume_obs::counter!("lattice.pruned.rule4", stats.pruned_rule4);
        fume_obs::counter!("lattice.pruned.rule5", stats.pruned_rule5);
        fume_obs::counter!("lattice.pruned.redundant", stats.pruned_redundant);
        levels.push(stats);

        if level == params.max_literals || expandable.len() < 2 {
            break;
        }

        // --- merge to the next level (Rule 1 inside) ---
        let expansion = expand_level_with(
            data,
            &expandable,
            params.toggles.rule1_satisfiability,
            params.toggles.prune_redundant,
        );
        possible = expansion.possible;
        pruned_rule1 = expansion.pruned_rule1;
        pruned_redundant = expansion.pruned_redundant;
        frontier = expansion.children;
        if frontier.is_empty() {
            break;
        }
    }

    SearchOutcome { evaluated, levels, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Literal;
    use crate::params::{RuleToggles, SupportRange};
    use fume_tabular::{Attribute, Schema};
    use std::sync::Arc;

    /// 3 binary attributes, 64 rows, uniform marginals.
    fn data() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("a", vec!["0".into(), "1".into()]),
                Attribute::categorical("b", vec!["0".into(), "1".into()]),
                Attribute::categorical("c", vec!["0".into(), "1".into()]),
            ])
            .unwrap(),
        );
        let mut cols = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut labels = Vec::new();
        for i in 0..64usize {
            cols[0].push((i % 2) as u16);
            cols[1].push(((i / 2) % 2) as u16);
            cols[2].push(((i / 4) % 2) as u16);
            labels.push(i % 3 == 0);
        }
        Dataset::new(schema, cols, labels).unwrap()
    }

    fn params(min: f64, max: f64, eta: usize) -> SearchParams {
        SearchParams::new(SupportRange::new(min, max).unwrap(), eta).unwrap()
    }

    /// ρ = best contained literal weight minus a per-literal complexity
    /// penalty; predicates without a rewarding literal score −1. With
    /// weights (a=1 → 0.5, b=1 → 0.4, c=1 → 0.3) every level-2 node scores
    /// strictly below both parents, so Rule 4 stops expansion at level 2.
    fn toy_eval(pred: &Predicate, _rows: &[u32]) -> f64 {
        let w = |l: &Literal| match (l.attr, l.value) {
            (0, 1) => 0.5,
            (1, 1) => 0.4,
            (2, 1) => 0.3,
            _ => f64::NEG_INFINITY,
        };
        let best = pred.literals().iter().map(w).fold(f64::NEG_INFINITY, f64::max);
        if best.is_finite() {
            best - 0.1 * (pred.len() as f64 - 1.0)
        } else {
            -1.0
        }
    }

    #[test]
    fn level1_only_when_eta_is_one() {
        let d = data();
        let out = search(&d, &params(0.0, 1.0, 1), &toy_eval);
        assert_eq!(out.levels.len(), 1);
        assert!(out.evaluated.iter().all(|s| s.level == 1));
        // 3 binary attrs → 6 level-1 nodes, all in [0,1] support.
        assert_eq!(out.levels[0].explored, 6);
        assert_eq!(out.evaluations, 6);
    }

    #[test]
    fn top_k_ranks_by_rho() {
        let d = data();
        let out = search(&d, &params(0.0, 1.0, 2), &toy_eval);
        let top = out.top_k(3);
        assert!(!top.is_empty());
        // Best is the level-1 node `a = 1` with ρ = 1.0.
        assert_eq!(top[0].predicate.literals(), &[Literal::eq(0, 1)]);
        assert!(top.windows(2).all(|w| w[0].rho >= w[1].rho));
        // All reported are attributable.
        assert!(top.iter().all(|s| s.rho > 0.0));
    }

    #[test]
    fn rule5_blocks_expansion_of_nonattributable_nodes() {
        let d = data();
        let out = search(&d, &params(0.0, 1.0, 2), &toy_eval);
        // Level-1: the three `x = 0` nodes score −1 → pruned by rule 5.
        assert_eq!(out.levels[0].pruned_rule5, 3);
        // Level-2 children exist and descend only from rewarding literals.
        let level2: Vec<_> = out.evaluated.iter().filter(|s| s.level == 2).collect();
        assert_eq!(level2.len(), 3);
        for s in &level2 {
            assert!(
                s.predicate.literals().iter().all(|l| l.value == 1),
                "{:?}",
                s.predicate
            );
        }
    }

    #[test]
    fn rule4_prunes_children_below_parent_rho() {
        let d = data();
        // Every level-2 node scores below both parents: with η=3 no
        // level-3 node may exist when rule 4 is on.
        let out = search(&d, &params(0.0, 1.0, 3), &toy_eval);
        assert!(out.evaluated.iter().all(|s| s.level <= 2));
        assert_eq!(out.levels[1].pruned_rule4, 3);

        // With rule 4 off, level 3 is reached.
        let mut p = params(0.0, 1.0, 3);
        p.toggles = RuleToggles { rule4_parent_dominance: false, ..RuleToggles::default() };
        let out = search(&d, &p, &toy_eval);
        assert!(out.evaluated.iter().any(|s| s.level == 3));
    }

    #[test]
    fn support_range_gates_evaluation_but_not_expansion() {
        let d = data();
        // Level-1 nodes all have support 0.5 (> max 0.3): oversized,
        // expanded but unevaluated. Level-2 nodes have support 0.25.
        let out = search(&d, &params(0.1, 0.3, 2), &toy_eval);
        assert_eq!(out.levels[0].explored, 0);
        assert_eq!(out.levels[0].oversized, 6);
        assert!(out.levels[1].explored > 0);
        assert!(out.evaluated.iter().all(|s| s.level == 2));
    }

    #[test]
    fn below_min_support_kills_subtree() {
        let d = data();
        // min 0.6: every level-1 node (support .5) is dropped; search ends.
        let out = search(&d, &params(0.6, 1.0, 3), &toy_eval);
        assert!(out.evaluated.is_empty());
        assert_eq!(out.levels[0].pruned_support_low, 6);
        assert_eq!(out.levels.len(), 1);
    }

    #[test]
    fn excluded_attributes_never_appear() {
        let d = data();
        let mut p = params(0.0, 1.0, 2);
        p.exclude_attrs = vec![0];
        let out = search(&d, &p, &|_: &Predicate, _: &[u32]| 1.0);
        assert!(out
            .evaluated
            .iter()
            .all(|s| s.predicate.literals().iter().all(|l| l.attr != 0)));
    }

    #[test]
    fn evaluations_counter_matches_explored_sum() {
        let d = data();
        let out = search(&d, &params(0.0, 1.0, 3), &|_: &Predicate, _: &[u32]| 1.0);
        let explored: usize = out.levels.iter().map(|l| l.explored).sum();
        assert_eq!(out.evaluations, explored);
    }

    #[test]
    fn search_with_range_literals_evaluates_interval_subsets() {
        use crate::expand::LiteralGen;
        use crate::literal::Op;
        use fume_tabular::AttrKind;
        // Dataset with an ordinal attribute of 4 bins.
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::ordinal(
                    "age",
                    vec!["a".into(), "b".into(), "c".into(), "d".into()],
                ),
                Attribute::categorical("x", vec!["0".into(), "1".into()]),
            ])
            .unwrap(),
        );
        assert_eq!(schema.attribute(0).unwrap().kind(), AttrKind::Ordinal);
        let n = 80usize;
        let cols = vec![
            (0..n).map(|i| (i % 4) as u16).collect(),
            (0..n).map(|i| ((i / 4) % 2) as u16).collect(),
        ];
        let labels = (0..n).map(|i| i % 2 == 0).collect();
        let d = Dataset::new(schema, cols, labels).unwrap();

        let mut p = params(0.0, 1.0, 2);
        p.literal_gen = LiteralGen::WithRanges;
        p.toggles.prune_redundant = true;
        let out = search(&d, &p, &|_: &Predicate, _: &[u32]| 1.0);
        let has_range = out.evaluated.iter().any(|s| {
            s.predicate
                .literals()
                .iter()
                .any(|l| matches!(l.op, Op::Le | Op::Ge))
        });
        assert!(has_range, "range literals must be searched");
        // Redundant range conjunctions never surface.
        for s in &out.evaluated {
            let lits = s.predicate.literals();
            if lits.len() == 2 && lits[0].attr == lits[1].attr {
                // Same-attribute pairs must genuinely narrow the selection
                // relative to each constituent literal.
                let a = Predicate::single(lits[0]).select(&d).len();
                let b = Predicate::single(lits[1]).select(&d).len();
                assert!(s.rows.len() < a && s.rows.len() < b, "{:?}", s.predicate);
            }
        }
    }

    #[test]
    fn pruned_percent_formula() {
        let s = LevelStats { possible: 200, explored: 50, ..Default::default() };
        assert!((s.pruned_percent() - 75.0).abs() < 1e-12);
        assert_eq!(LevelStats::default().pruned_percent(), 0.0);
    }
}
