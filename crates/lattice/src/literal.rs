//! Single-attribute literals: the atoms of predicate-based subsets.

use fume_tabular::{AttrKind, Schema};

/// Comparison operator of a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl Op {
    /// Evaluates `code op value`.
    #[inline]
    pub fn eval(self, code: u16, value: u16) -> bool {
        match self {
            Op::Eq => code == value,
            Op::Ne => code != value,
            Op::Lt => code < value,
            Op::Le => code <= value,
            Op::Gt => code > value,
            Op::Ge => code >= value,
        }
    }

    /// Display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
        }
    }
}

/// A literal `attribute op value` over coded data, e.g. `Housing = Rent`
/// or (for ordinal attributes) `Age >= [45, 60)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// Attribute index.
    pub attr: u16,
    /// Comparison operator.
    pub op: Op,
    /// Code the attribute is compared against.
    pub value: u16,
}

impl Literal {
    /// Equality literal.
    pub fn eq(attr: u16, value: u16) -> Self {
        Self { attr, op: Op::Eq, value }
    }

    /// Whether `code` satisfies the literal.
    #[inline]
    pub fn matches(&self, code: u16) -> bool {
        self.op.eval(code, self.value)
    }

    /// Renders against a schema, e.g. `Housing = Rent`.
    /// Ordinal attributes comparing with inequality render the bin label.
    pub fn render(&self, schema: &Schema) -> String {
        let attr = match schema.attribute(self.attr as usize) {
            Ok(a) => a,
            Err(_) => return format!("attr#{} {} {}", self.attr, self.op.symbol(), self.value),
        };
        let value = attr
            .value_label(self.value)
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{}", self.value));
        format!("{} {} {}", attr.name(), self.op.symbol(), value)
    }

    /// Whether the literal can be satisfied by any code of an attribute
    /// with the given cardinality.
    pub fn satisfiable(&self, cardinality: u16) -> bool {
        (0..cardinality).any(|c| self.matches(c))
    }

    /// Whether inequality operators make sense for this attribute
    /// (ordering is only meaningful for ordinal/binned attributes).
    pub fn op_fits_kind(&self, kind: AttrKind) -> bool {
        matches!(self.op, Op::Eq | Op::Ne) || kind == AttrKind::Ordinal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::Attribute;

    #[test]
    fn op_semantics() {
        assert!(Op::Eq.eval(3, 3) && !Op::Eq.eval(3, 4));
        assert!(Op::Ne.eval(3, 4) && !Op::Ne.eval(3, 3));
        assert!(Op::Lt.eval(2, 3) && !Op::Lt.eval(3, 3));
        assert!(Op::Le.eval(3, 3) && !Op::Le.eval(4, 3));
        assert!(Op::Gt.eval(4, 3) && !Op::Gt.eval(3, 3));
        assert!(Op::Ge.eval(3, 3) && !Op::Ge.eval(2, 3));
    }

    #[test]
    fn literal_ordering_is_by_attr_first() {
        let a = Literal::eq(0, 5);
        let b = Literal::eq(1, 0);
        assert!(a < b);
    }

    #[test]
    fn render_uses_schema_labels() {
        let schema = Schema::with_default_label(vec![Attribute::categorical(
            "Housing",
            vec!["Rent".into(), "Own".into()],
        )])
        .unwrap();
        assert_eq!(Literal::eq(0, 0).render(&schema), "Housing = Rent");
        let out_of_domain = Literal::eq(0, 9).render(&schema);
        assert!(out_of_domain.contains("#9"));
    }

    #[test]
    fn satisfiability_over_domain() {
        // attr with 3 codes: 0,1,2
        assert!(Literal { attr: 0, op: Op::Lt, value: 1 }.satisfiable(3));
        assert!(!Literal { attr: 0, op: Op::Lt, value: 0 }.satisfiable(3));
        assert!(!Literal { attr: 0, op: Op::Gt, value: 2 }.satisfiable(3));
        assert!(Literal { attr: 0, op: Op::Ne, value: 0 }.satisfiable(3));
        assert!(!Literal { attr: 0, op: Op::Ne, value: 0 }.satisfiable(1));
    }

    #[test]
    fn op_kind_compatibility() {
        use fume_tabular::AttrKind::*;
        assert!(Literal::eq(0, 0).op_fits_kind(Categorical));
        assert!(!Literal { attr: 0, op: Op::Le, value: 1 }.op_fits_kind(Categorical));
        assert!(Literal { attr: 0, op: Op::Le, value: 1 }.op_fits_kind(Ordinal));
    }
}
