//! Lattice node generation: level-1 literals and the apriori join.

use fume_tabular::cast::{code_u16, row_u32};
use fume_tabular::{AttrKind, Dataset};

use crate::literal::{Literal, Op};
use crate::predicate::{intersect_sorted, Predicate};

/// How level-1 literals are generated.
///
/// The paper's lattice uses equality literals only (`d × p` level-1
/// nodes); `WithRanges` additionally generates `≤ v` / `≥ v` literals for
/// *ordinal* (binned numeric) attributes — an extension that lets
/// explanations express intervals like `Age >= [45, 60)` directly instead
/// of unions of bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LiteralGen {
    /// Equality literals only (the paper's scheme).
    #[default]
    EqOnly,
    /// Equality literals plus `≤`/`≥` range literals on ordinal attributes.
    WithRanges,
}

/// A node of the search lattice: a predicate, the rows it selects, and —
/// once evaluated — its parity reduction `ρ` (the negated subset
/// attribution `−φ`; positive means removing the subset reduces bias).
#[derive(Debug, Clone, PartialEq)]
pub struct LatticeNode {
    /// The predicate this node represents.
    pub predicate: Predicate,
    /// Sorted training-row ids selected by the predicate.
    pub rows: Vec<u32>,
    /// Parity reduction, `None` until evaluated (oversized nodes are
    /// expanded without evaluation, see Rule 2).
    pub rho: Option<f64>,
    /// The larger of the parents' parity reductions — Rule 4's quality
    /// floor: once this node's own `ρ` is known, the node is only expanded
    /// if `ρ` reaches the floor. Level-1 nodes and children of unevaluated
    /// (oversized) parents have `-∞`.
    pub parent_floor: f64,
}

impl LatticeNode {
    /// Support of the node within a training set of `n` rows.
    pub fn support(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.rows.len() as f64 / n as f64
        }
    }
}

/// Generates every level-1 node: one `attr = value` literal per
/// attribute/value pair of the schema (the paper's `d × p` leaves of the
/// lattice root), excluding `exclude_attrs`. Selections are computed with
/// one scan per attribute.
pub fn level1_nodes(data: &Dataset, exclude_attrs: &[u16]) -> Vec<LatticeNode> {
    level1_nodes_with(data, exclude_attrs, LiteralGen::EqOnly)
}

/// [`level1_nodes`] with an explicit literal-generation strategy.
pub fn level1_nodes_with(
    data: &Dataset,
    exclude_attrs: &[u16],
    gen: LiteralGen,
) -> Vec<LatticeNode> {
    let mut nodes = Vec::new();
    for attr in 0..code_u16(data.num_attributes()) {
        if exclude_attrs.contains(&attr) {
            continue;
        }
        let Ok(attribute) = data.schema().attribute(attr as usize) else {
            continue;
        };
        let card = attribute.cardinality();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); card as usize];
        for (row, &code) in data.column(attr as usize).iter().enumerate() {
            buckets[code as usize].push(row_u32(row));
        }

        if gen == LiteralGen::WithRanges
            && attribute.kind() == AttrKind::Ordinal
            && card >= 3
        {
            // Prefix/suffix unions of the equality buckets give the range
            // selections in one extra pass.
            for v in 0..card - 1 {
                let mut rows: Vec<u32> = buckets[..=v as usize].concat();
                rows.sort_unstable();
                nodes.push(LatticeNode {
                    predicate: Predicate::single(Literal { attr, op: Op::Le, value: v }),
                    rows,
                    rho: None,
                    parent_floor: f64::NEG_INFINITY,
                });
            }
            for v in 1..card {
                let mut rows: Vec<u32> = buckets[v as usize..].concat();
                rows.sort_unstable();
                nodes.push(LatticeNode {
                    predicate: Predicate::single(Literal { attr, op: Op::Ge, value: v }),
                    rows,
                    rho: None,
                    parent_floor: f64::NEG_INFINITY,
                });
            }
        }

        for (value, rows) in buckets.into_iter().enumerate() {
            nodes.push(LatticeNode {
                predicate: Predicate::single(Literal::eq(attr, code_u16(value))),
                rows,
                rho: None,
                parent_floor: f64::NEG_INFINITY,
            });
        }
    }
    nodes
}

/// The outcome of expanding one level.
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    /// The surviving child nodes (satisfiable, with selections).
    pub children: Vec<LatticeNode>,
    /// Number of parent pairs considered (`C(|frontier|, 2)` — the
    /// paper's "possible subsets" accounting of Table 9).
    pub possible: usize,
    /// Candidates discarded by Rule 1 (contradictory predicates).
    pub pruned_rule1: usize,
    /// Candidates discarded as *redundant*: the child selects exactly the
    /// same rows as one of its parents, so it explains nothing the
    /// (simpler) parent doesn't. Only arises with overlapping literals,
    /// e.g. `Age <= 2 ∧ Age <= 3` or a literal subsumed by another
    /// attribute's selection.
    pub pruned_redundant: usize,
}

/// Expands a frontier of level-`l` nodes into level-`l+1` children via the
/// apriori join (shared `l−1`-literal prefix). Each child's selection is
/// the intersection of its parents'. When `check_satisfiability` is set
/// (Rule 1), contradictory children are dropped without materializing
/// selections.
pub fn expand_level(
    data: &Dataset,
    frontier: &[LatticeNode],
    check_satisfiability: bool,
) -> Expansion {
    // The paper's rule set has no redundancy pruning; it is opt-in via
    // [`expand_level_with`] / `RuleToggles::prune_redundant`.
    expand_level_with(data, frontier, check_satisfiability, false)
}

/// [`expand_level`] with explicit redundancy pruning control.
pub fn expand_level_with(
    data: &Dataset,
    frontier: &[LatticeNode],
    check_satisfiability: bool,
    prune_redundant: bool,
) -> Expansion {
    let n = frontier.len();
    let possible = n * n.saturating_sub(1) / 2;
    let mut children = Vec::new();
    let mut pruned_rule1 = 0;
    let mut pruned_redundant = 0;

    // Canonical join requires sorted frontier predicates; joins only fire
    // for pairs sharing their (l−1)-prefix, so sort and sweep prefix groups.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| frontier[a].predicate.cmp(&frontier[b].predicate));

    let mut group_start = 0;
    while group_start < n {
        let prefix_of = |idx: usize| {
            let lits = frontier[order[idx]].predicate.literals();
            &lits[..lits.len() - 1]
        };
        let mut group_end = group_start + 1;
        while group_end < n && prefix_of(group_end) == prefix_of(group_start) {
            group_end += 1;
        }
        for i in group_start..group_end {
            for j in (i + 1)..group_end {
                let (a, b) = (&frontier[order[i]], &frontier[order[j]]);
                let Some(child) = a.predicate.join(&b.predicate) else {
                    continue;
                };
                if check_satisfiability && !child.is_satisfiable(data.schema()) {
                    pruned_rule1 += 1;
                    continue;
                }
                let rows = intersect_sorted(&a.rows, &b.rows);
                // A child selecting exactly a parent's rows adds literals
                // without changing the subset — keep the simpler parent.
                if prune_redundant
                    && (rows.len() == a.rows.len() || rows.len() == b.rows.len())
                {
                    pruned_redundant += 1;
                    continue;
                }
                let parent_floor = match (a.rho, b.rho) {
                    (Some(x), Some(y)) => x.max(y),
                    (Some(x), None) | (None, Some(x)) => x,
                    (None, None) => f64::NEG_INFINITY,
                };
                children.push(LatticeNode {
                    predicate: child,
                    rows,
                    rho: None,
                    parent_floor,
                });
            }
        }
        group_start = group_end;
    }
    Expansion { children, possible, pruned_rule1, pruned_redundant }
}

/// Expands a frontier consisting of a *single* level-`l` node by
/// conjoining it with every fresh level-1 literal. The apriori join of
/// [`expand_level_with`] needs two parents sharing an `l−1`-literal
/// prefix, so a lone survivor has no join partner — yet its sub-lattice
/// is not exhausted: `T ∧ (X = v)` is a legitimate level-`l+1` subset
/// for any literal not already in `T`.
///
/// Children carry the node's own `ρ` as their `parent_floor`, matching
/// the `(Some, None)` evaluated/unevaluated parent case of the pairwise
/// join (the fresh literal's ρ at this point is unknown).
pub fn expand_singleton_with(
    data: &Dataset,
    node: &LatticeNode,
    exclude_attrs: &[u16],
    gen: LiteralGen,
    check_satisfiability: bool,
    prune_redundant: bool,
) -> Expansion {
    let mut children = Vec::new();
    let mut possible = 0;
    let mut pruned_rule1 = 0;
    let mut pruned_redundant = 0;
    for fresh in level1_nodes_with(data, exclude_attrs, gen) {
        let lit = fresh.predicate.literals()[0];
        if node.predicate.literals().contains(&lit) {
            continue; // already part of the conjunction: no new candidate
        }
        possible += 1;
        let mut lits = node.predicate.literals().to_vec();
        lits.push(lit);
        let child = Predicate::new(lits);
        if check_satisfiability && !child.is_satisfiable(data.schema()) {
            pruned_rule1 += 1;
            continue;
        }
        let rows = intersect_sorted(&node.rows, &fresh.rows);
        if prune_redundant
            && (rows.len() == node.rows.len() || rows.len() == fresh.rows.len())
        {
            pruned_redundant += 1;
            continue;
        }
        children.push(LatticeNode {
            predicate: child,
            rows,
            rho: None,
            parent_floor: node.rho.unwrap_or(f64::NEG_INFINITY),
        });
    }
    Expansion { children, possible, pruned_rule1, pruned_redundant }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::{Attribute, Schema};
    use std::sync::Arc;

    fn data() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("a", vec!["x".into(), "y".into()]),
                // Ordinal so the range-literal generation tests have a
                // rangeable attribute.
                Attribute::ordinal("b", vec!["p".into(), "q".into(), "r".into()]),
            ])
            .unwrap(),
        );
        Dataset::new(
            schema,
            vec![vec![0, 0, 1, 1], vec![0, 1, 2, 0]],
            vec![true, false, true, false],
        )
        .unwrap()
    }

    #[test]
    fn level1_enumerates_attr_value_pairs() {
        let d = data();
        let nodes = level1_nodes(&d, &[]);
        assert_eq!(nodes.len(), 5); // 2 + 3 values
        // Selections partition the rows per attribute.
        let total_attr0: usize =
            nodes.iter().take(2).map(|n| n.rows.len()).sum();
        assert_eq!(total_attr0, d.num_rows());
        // a = x selects rows 0, 1.
        assert_eq!(nodes[0].rows, vec![0, 1]);
    }

    #[test]
    fn level1_respects_exclusions() {
        let d = data();
        let nodes = level1_nodes(&d, &[0]);
        assert_eq!(nodes.len(), 3);
        assert!(nodes.iter().all(|n| n.predicate.literals()[0].attr == 1));
    }

    #[test]
    fn expansion_counts_and_prunes_contradictions() {
        let d = data();
        let frontier = level1_nodes(&d, &[]);
        let exp = expand_level(&d, &frontier, true);
        assert_eq!(exp.possible, 5 * 4 / 2);
        // Same-attribute equality pairs are contradictory:
        // 1 pair within attr a, 3 pairs within attr b.
        assert_eq!(exp.pruned_rule1, 4);
        // Cross-attribute children: 2 × 3.
        assert_eq!(exp.children.len(), 6);
        for c in &exp.children {
            assert_eq!(c.predicate.len(), 2);
            // Selection equals a fresh scan.
            assert_eq!(c.rows, c.predicate.select(&d));
        }
    }

    #[test]
    fn without_rule1_contradictions_survive_with_empty_selections() {
        let d = data();
        let frontier = level1_nodes(&d, &[]);
        let exp = expand_level(&d, &frontier, false);
        assert_eq!(exp.pruned_rule1, 0);
        assert_eq!(exp.children.len(), 10);
        // 4 contradictory children plus 2 satisfiable-but-empty ones
        // (value combinations absent from this tiny dataset).
        let empties = exp.children.iter().filter(|c| c.rows.is_empty()).count();
        assert_eq!(empties, 6);
    }

    #[test]
    fn level3_join_requires_shared_prefix() {
        let d = data();
        let l1 = level1_nodes(&d, &[]);
        let l2 = expand_level(&d, &l1, true).children;
        let exp = expand_level(&d, &l2, true);
        // Only 2 attributes exist, so every 3-literal candidate repeats an
        // attribute and is contradictory.
        assert!(exp.children.is_empty());
        assert!(exp.pruned_rule1 > 0);
    }

    #[test]
    fn range_literals_generated_for_ordinal_attributes() {
        let d = data(); // "a" categorical(2), "b" ordinal(3)
        let nodes = level1_nodes_with(&d, &[], LiteralGen::WithRanges);
        // Eq: 2 + 3; ranges on "b" (card 3): Le{0,1} + Ge{1,2} = 4.
        assert_eq!(nodes.len(), 9);
        let ranges: Vec<&LatticeNode> = nodes
            .iter()
            .filter(|n| n.predicate.literals()[0].op != crate::literal::Op::Eq)
            .collect();
        assert_eq!(ranges.len(), 4);
        for node in ranges {
            assert_eq!(node.predicate.literals()[0].attr, 1, "only ordinal attr");
            // Selection consistent with a fresh scan.
            assert_eq!(node.rows, node.predicate.select(&d));
            // Ranges are proper subsets of everything — never empty, never all
            // (card 3, cuts strictly inside).
            assert!(!node.rows.is_empty());
        }
        // Binary ordinal / categorical attributes get no ranges.
        let eq_only = level1_nodes_with(&d, &[], LiteralGen::EqOnly);
        assert_eq!(eq_only.len(), 5);
    }

    #[test]
    fn redundancy_pruning_drops_subsumed_children() {
        let d = data();
        let frontier = level1_nodes_with(&d, &[], LiteralGen::WithRanges);
        let with = expand_level_with(&d, &frontier, true, true);
        let without = expand_level_with(&d, &frontier, true, false);
        assert!(with.pruned_redundant > 0);
        assert_eq!(
            with.children.len() + with.pruned_redundant,
            without.children.len(),
            "redundancy pruning only removes, never adds"
        );
        // The canonical redundancy: (b <= 0) ∧ (b <= 1) ≡ (b <= 0); it must
        // have been pruned.
        use crate::literal::Op;
        let subsumed = Predicate::new(vec![
            Literal { attr: 1, op: Op::Le, value: 0 },
            Literal { attr: 1, op: Op::Le, value: 1 },
        ]);
        assert!(with.children.iter().all(|c| c.predicate != subsumed));
        assert!(without.children.iter().any(|c| c.predicate == subsumed));
    }

    #[test]
    fn singleton_expansion_conjoins_fresh_literals() {
        let d = data(); // "a" categorical(2), "b" ordinal(3)
        let nodes = level1_nodes(&d, &[]);
        // Take `a = x` (rows 0, 1) as the lone survivor, with a known ρ.
        let mut node = nodes[0].clone();
        node.rho = Some(0.7);
        let exp = expand_singleton_with(&d, &node, &[], LiteralGen::EqOnly, true, false);
        // Candidates: the 4 other literals (a = y, b = p/q/r); a = y is
        // contradictory with a = x under Rule 1.
        assert_eq!(exp.possible, 4);
        assert_eq!(exp.pruned_rule1, 1);
        assert_eq!(exp.children.len(), 3);
        for c in &exp.children {
            assert_eq!(c.predicate.len(), 2);
            assert_eq!(c.rows, c.predicate.select(&d));
            // The lone parent's ρ becomes the child's Rule-4 floor.
            assert!((c.parent_floor - 0.7).abs() < 1e-12);
        }
        // An unevaluated (oversized) lone parent leaves the floor open.
        let mut oversized = nodes[0].clone();
        oversized.rho = None;
        let exp = expand_singleton_with(&d, &oversized, &[], LiteralGen::EqOnly, true, false);
        assert!(exp.children.iter().all(|c| c.parent_floor == f64::NEG_INFINITY));
        // Exclusions hold: excluding attr 1 leaves only the contradictory
        // same-attribute candidate.
        let exp = expand_singleton_with(&d, &node, &[1], LiteralGen::EqOnly, true, false);
        assert!(exp.children.is_empty());
        assert_eq!(exp.pruned_rule1, 1);
    }

    #[test]
    fn singleton_expansion_prunes_redundant_children() {
        let d = data();
        // `b <= 1` (rows 0, 1, 3) joined with `b <= 0`-style range
        // literals produces subsumed conjunctions; redundancy pruning
        // must drop children selecting exactly a parent's rows.
        let frontier = level1_nodes_with(&d, &[], LiteralGen::WithRanges);
        let node = frontier
            .iter()
            .find(|n| {
                let l = n.predicate.literals()[0];
                l.attr == 1 && l.op == Op::Le && l.value == 1
            })
            .unwrap()
            .clone();
        let with = expand_singleton_with(&d, &node, &[], LiteralGen::WithRanges, true, true);
        let without = expand_singleton_with(&d, &node, &[], LiteralGen::WithRanges, true, false);
        assert!(with.pruned_redundant > 0);
        assert_eq!(
            with.children.len() + with.pruned_redundant,
            without.children.len()
        );
    }

    #[test]
    fn node_support() {
        let node = LatticeNode {
            predicate: Predicate::single(Literal::eq(0, 0)),
            rows: vec![1, 2],
            rho: None,
            parent_floor: f64::NEG_INFINITY,
        };
        assert!((node.support(4) - 0.5).abs() < 1e-12);
        assert_eq!(node.support(0), 0.0);
    }
}
