//! # fume-lattice
//!
//! The predicate search space of FUME (EDBT 2025): conjunctive
//! [predicates](predicate::Predicate) over discretized attributes,
//! organized as a hierarchically ordered lattice in the style of the
//! apriori frequent-itemset algorithm, with the paper's five pruning
//! rules (§4):
//!
//! 1. contradictory predicates are never generated
//!    ([`Predicate::is_satisfiable`](predicate::Predicate::is_satisfiable));
//! 2. a support range `[τ_min, τ_max]` gates evaluation — undersized
//!    subtrees are abandoned, oversized nodes expand but aren't reported
//!    ([`SupportRange`]);
//! 3. an interpretability cap `η` bounds the number of literals;
//! 4. a node is only expanded if its parity reduction reaches both
//!    parents';
//! 5. only bias-*reducing* nodes are expanded.
//!
//! The [`search`](search::search) driver is generic over a
//! [`BatchEvaluator`], so the same Algorithm-1
//! skeleton runs with machine-unlearning attribution (FUME core), naive
//! retraining, or toy closures in tests:
//!
//! ```
//! use fume_lattice::{search, Predicate, SearchParams, SupportRange};
//! use fume_tabular::datasets::planted_toy;
//!
//! let (data, _) = planted_toy().generate_scaled(0.1, 1).unwrap();
//! let params = SearchParams::new(SupportRange::new(0.05, 0.5).unwrap(), 2).unwrap();
//! // Toy attribution: reward small subsets. `search` errs only if the
//! // evaluator produces a non-finite ρ.
//! let outcome = search(&data, &params, &|_: &Predicate, rows: &[u32]| {
//!     1.0 - rows.len() as f64 / data.num_rows() as f64
//! })
//! .unwrap();
//! assert!(!outcome.top_k(5).is_empty());
//! assert!(outcome.levels.iter().all(|l| l.explored <= l.possible));
//! ```
//!
//! For checkpointable, step-at-a-time searches, [`SearchDriver`] exposes
//! the same loop one level per call with its [`SearchState`] inspectable
//! (and reinjectable) at every level boundary.

#![warn(missing_docs)]

pub mod expand;
pub mod literal;
pub mod params;
pub mod predicate;
pub mod search;

pub use expand::{
    expand_level, expand_level_with, expand_singleton_with, level1_nodes, level1_nodes_with,
    LatticeNode, LiteralGen,
};
pub use literal::{Literal, Op};
pub use params::{LatticeError, RuleToggles, SearchParams, SupportRange};
pub use predicate::{intersect_sorted, Predicate};
pub use search::{
    search, BatchEvaluator, EvalItem, EvaluatedSubset, LevelStats, SearchDriver, SearchOutcome,
    SearchState,
};
