//! Conjunctive predicates over coded datasets.

use fume_tabular::cast::row_u32;
use fume_tabular::{Dataset, Schema};

use crate::literal::Literal;

/// A conjunction of [`Literal`]s in canonical (sorted, deduplicated) order —
/// the paper's predicate-based training-data subsets `T = ⋀ⱼ (Xⱼ op vⱼ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    literals: Vec<Literal>,
}

impl Predicate {
    /// Builds a predicate, canonicalizing literal order and removing exact
    /// duplicates.
    pub fn new(mut literals: Vec<Literal>) -> Self {
        literals.sort_unstable();
        literals.dedup();
        Self { literals }
    }

    /// A single-literal predicate.
    pub fn single(literal: Literal) -> Self {
        Self { literals: vec![literal] }
    }

    /// The literals in canonical order.
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// Number of literals (the paper's interpretability measure, Rule 3).
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether the predicate has no literals (matches everything).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Whether `row` of `data` satisfies every literal.
    pub fn matches(&self, data: &Dataset, row: usize) -> bool {
        self.literals
            .iter()
            .all(|l| l.matches(data.code(row, l.attr as usize)))
    }

    /// Sorted row ids of `data` satisfying the predicate.
    pub fn select(&self, data: &Dataset) -> Vec<u32> {
        (0..row_u32(data.num_rows()))
            .filter(|&r| self.matches(data, r as usize))
            .collect()
    }

    /// Fraction of `data`'s rows satisfying the predicate
    /// (the paper's `sup(T) = |T| / |D|`).
    pub fn support(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        self.select(data).len() as f64 / data.num_rows() as f64
    }

    /// Whether some assignment of codes (within the schema's cardinalities)
    /// satisfies every literal — Rule 1's "irrelevant subset" check, e.g.
    /// `(Age < 50) ∧ (Age > 70)` is unsatisfiable. Per-attribute domains
    /// are scanned exhaustively; cardinalities are small by construction.
    pub fn is_satisfiable(&self, schema: &Schema) -> bool {
        let mut i = 0;
        while i < self.literals.len() {
            let attr = self.literals[i].attr;
            let mut j = i;
            while j < self.literals.len() && self.literals[j].attr == attr {
                j += 1;
            }
            let group = &self.literals[i..j];
            let card = schema
                .attribute(attr as usize)
                .map(|a| a.cardinality())
                .unwrap_or(0);
            if !(0..card).any(|code| group.iter().all(|l| l.matches(code))) {
                return false;
            }
            i = j;
        }
        true
    }

    /// Apriori join: merges two canonical predicates of equal length `l`
    /// that share their first `l − 1` literals, producing their length-
    /// `l + 1` union — the paper's "merging two nodes of level l−1 having
    /// exactly (l−2) literals in common". Returns `None` when the shapes
    /// don't join or the result would repeat a literal.
    pub fn join(&self, other: &Predicate) -> Option<Predicate> {
        let l = self.literals.len();
        if l == 0 || other.literals.len() != l {
            return None;
        }
        let (head_a, last_a) = self.literals.split_at(l - 1);
        let (head_b, last_b) = other.literals.split_at(l - 1);
        if head_a != head_b || last_a[0] >= last_b[0] {
            return None;
        }
        let mut literals = self.literals.clone();
        literals.push(last_b[0]);
        Some(Predicate { literals })
    }

    /// Renders against a schema, e.g.
    /// `Housing = Rent AND Status and sex = Female divorced/separated/married`.
    pub fn render(&self, schema: &Schema) -> String {
        if self.literals.is_empty() {
            return "<all rows>".into();
        }
        self.literals
            .iter()
            .map(|l| l.render(schema))
            .collect::<Vec<_>>()
            .join(" AND ")
    }
}

/// Intersects two sorted id slices (ascending, unique) — used to derive a
/// child node's selection from its parents'.
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::literal::Op;
    use fume_tabular::Attribute;
    use std::sync::Arc;

    fn data() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("a", vec!["x".into(), "y".into()]),
                Attribute::ordinal("b", vec!["lo".into(), "mid".into(), "hi".into()]),
            ])
            .unwrap(),
        );
        Dataset::new(
            schema,
            vec![vec![0, 0, 1, 1, 0], vec![0, 1, 2, 0, 2]],
            vec![true, false, true, false, true],
        )
        .unwrap()
    }

    #[test]
    fn canonicalization_sorts_and_dedupes() {
        let p = Predicate::new(vec![
            Literal::eq(1, 0),
            Literal::eq(0, 1),
            Literal::eq(1, 0),
        ]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.literals()[0].attr, 0);
    }

    #[test]
    fn selection_and_support() {
        let d = data();
        let p = Predicate::single(Literal::eq(0, 0));
        assert_eq!(p.select(&d), vec![0, 1, 4]);
        assert!((p.support(&d) - 0.6).abs() < 1e-12);

        let q = Predicate::new(vec![Literal::eq(0, 0), Literal::eq(1, 2)]);
        assert_eq!(q.select(&d), vec![4]);

        let empty = Predicate::new(vec![]);
        assert_eq!(empty.select(&d).len(), 5, "empty predicate matches all");
    }

    #[test]
    fn satisfiability_detects_contradictions() {
        let d = data();
        let schema = d.schema();
        // a = x AND a = y is contradictory.
        let p = Predicate::new(vec![Literal::eq(0, 0), Literal::eq(0, 1)]);
        assert!(!p.is_satisfiable(schema));
        // b < mid AND b > mid is the paper's Age example.
        let q = Predicate::new(vec![
            Literal { attr: 1, op: Op::Lt, value: 1 },
            Literal { attr: 1, op: Op::Gt, value: 1 },
        ]);
        assert!(!q.is_satisfiable(schema));
        // b >= mid AND b <= mid pins b = mid: satisfiable.
        let r = Predicate::new(vec![
            Literal { attr: 1, op: Op::Ge, value: 1 },
            Literal { attr: 1, op: Op::Le, value: 1 },
        ]);
        assert!(r.is_satisfiable(schema));
    }

    #[test]
    fn join_requires_shared_prefix() {
        let ab = Predicate::new(vec![Literal::eq(0, 0), Literal::eq(1, 0)]);
        let ac = Predicate::new(vec![Literal::eq(0, 0), Literal::eq(1, 2)]);
        let joined = ab.join(&ac).unwrap();
        assert_eq!(joined.len(), 3);
        // Reversed order does not join (canonical pairing only once).
        assert!(ac.join(&ab).is_none());
        // Different prefixes do not join.
        let bd = Predicate::new(vec![Literal::eq(0, 1), Literal::eq(1, 0)]);
        assert!(ab.join(&bd).is_none());
        // Identical predicates do not join.
        assert!(ab.join(&ab).is_none());
    }

    #[test]
    fn level1_joins_any_two_distinct_literals() {
        let a = Predicate::single(Literal::eq(0, 0));
        let b = Predicate::single(Literal::eq(1, 1));
        assert_eq!(a.join(&b).unwrap().len(), 2);
    }

    #[test]
    fn render_readable() {
        let d = data();
        let p = Predicate::new(vec![Literal::eq(0, 1), Literal::eq(1, 0)]);
        assert_eq!(p.render(d.schema()), "a = y AND b = lo");
        assert_eq!(Predicate::new(vec![]).render(d.schema()), "<all rows>");
    }

    #[test]
    fn intersect_sorted_works() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn join_preserves_selection_intersection() {
        let d = data();
        let a = Predicate::single(Literal::eq(0, 0));
        let b = Predicate::single(Literal::eq(1, 2));
        let child = a.join(&b).unwrap();
        assert_eq!(
            child.select(&d),
            intersect_sorted(&a.select(&d), &b.select(&d))
        );
    }
}
