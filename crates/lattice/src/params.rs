//! Search-space parameters: support range (Rule 2), interpretability cap
//! (Rule 3) and ablation toggles for the attribution-based rules.

use std::fmt;

/// Errors from invalid lattice parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum LatticeError {
    /// `min`/`max` do not describe a valid sub-range of `[0, 1]`.
    InvalidSupportRange {
        /// Requested minimum.
        min: f64,
        /// Requested maximum.
        max: f64,
    },
    /// `max_literals` must be at least 1.
    ZeroMaxLiterals,
    /// A [`BatchEvaluator`](crate::search::BatchEvaluator) returned a
    /// NaN or infinite attribution. Non-finite ρ silently corrupts the
    /// search — Rule 5's `ρ ≤ 0` is false for NaN, a NaN `parent_floor`
    /// defeats every Rule-4 comparison, and `total_cmp` ranks NaN above
    /// every real subset — so the evaluator boundary rejects it outright.
    NonFiniteAttribution {
        /// The offending subset's predicate, rendered against the schema.
        predicate: String,
        /// The offending value (`NaN`, `inf`, `-inf`).
        value: String,
    },
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSupportRange { min, max } => {
                write!(f, "invalid support range [{min}, {max}]: need 0 <= min < max <= 1")
            }
            Self::ZeroMaxLiterals => write!(f, "max_literals must be at least 1"),
            Self::NonFiniteAttribution { predicate, value } => write!(
                f,
                "evaluator returned non-finite attribution {value} for subset `{predicate}`"
            ),
        }
    }
}

impl std::error::Error for LatticeError {}

/// The support range `[τ_min, τ_max]` of Rule 2, as fractions of the
/// training set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupportRange {
    /// Minimum support (subsets below are dropped and never expanded).
    pub min: f64,
    /// Maximum support (subsets above are not reported but still expanded,
    /// since their children may re-enter the range).
    pub max: f64,
}

impl SupportRange {
    /// Validates and builds a support range.
    pub fn new(min: f64, max: f64) -> Result<Self, LatticeError> {
        if !(0.0..=1.0).contains(&min) || !(0.0..=1.0).contains(&max) || min >= max {
            return Err(LatticeError::InvalidSupportRange { min, max });
        }
        Ok(Self { min, max })
    }

    /// The paper's default medium range, 5–15 %.
    pub fn medium() -> Self {
        Self { min: 0.05, max: 0.15 }
    }

    /// The paper's small range, 0–5 %.
    pub fn small() -> Self {
        Self { min: 0.0, max: 0.05 }
    }

    /// The paper's large range, ≥ 30 %.
    pub fn large() -> Self {
        Self { min: 0.30, max: 1.0 }
    }

    /// Whether `support` lies inside `[min, max]`, tolerating
    /// [`float::EPSILON`](fume_tabular::float::EPSILON) of accumulated
    /// error at either bound — the same gate Rule 2 applies during the
    /// search, so `contains` and the search never disagree about a
    /// boundary value.
    pub fn contains(&self, support: f64) -> bool {
        !fume_tabular::float::approx_lt(support, self.min)
            && !fume_tabular::float::approx_gt(support, self.max)
    }
}

/// Ablation switches for the pruning rules that depend on computed
/// attributions. Rules 2 and 3 are inherent search parameters
/// ([`SupportRange`], `max_literals`) and cannot be disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleToggles {
    /// Rule 1: skip contradictory (unsatisfiable) predicates at merge time.
    pub rule1_satisfiability: bool,
    /// Rule 4: expand a node only if its attribution is at least both
    /// parents'.
    pub rule4_parent_dominance: bool,
    /// Rule 5: expand a node only if its attribution is positive.
    pub rule5_positive_only: bool,
    /// Extension (not in the paper's rule set, default off): skip children
    /// that select exactly the same rows as one of their parents — they
    /// add literals without changing the subset. Worth enabling together
    /// with range literals, which create many subsumed conjunctions.
    pub prune_redundant: bool,
}

impl Default for RuleToggles {
    fn default() -> Self {
        Self {
            rule1_satisfiability: true,
            rule4_parent_dominance: true,
            rule5_positive_only: true,
            prune_redundant: false,
        }
    }
}

/// All parameters of a lattice search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchParams {
    /// Rule 2's support range.
    pub support: SupportRange,
    /// Rule 3's interpretability cap `η`: maximum literals per subset.
    pub max_literals: usize,
    /// Rule ablation switches.
    pub toggles: RuleToggles,
    /// Attributes never used in literals (e.g. to exclude the sensitive
    /// attribute itself from explanations, if desired).
    pub exclude_attrs: Vec<u16>,
    /// Level-1 literal generation strategy.
    pub literal_gen: crate::expand::LiteralGen,
}

impl SearchParams {
    /// Builds validated parameters with default toggles.
    pub fn new(support: SupportRange, max_literals: usize) -> Result<Self, LatticeError> {
        if max_literals == 0 {
            return Err(LatticeError::ZeroMaxLiterals);
        }
        Ok(Self {
            support,
            max_literals,
            toggles: RuleToggles::default(),
            exclude_attrs: Vec::new(),
            literal_gen: crate::expand::LiteralGen::EqOnly,
        })
    }

    /// The paper's defaults: 5–15 % support, 2-literal subsets.
    pub fn paper_defaults() -> Self {
        // fume-lint: allow(F001) -- constant arguments: SupportRange::medium() and eta=2 satisfy every validation rule, checked by the params tests
        Self::new(SupportRange::medium(), 2).expect("static params valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_range_validation() {
        assert!(SupportRange::new(0.05, 0.15).is_ok());
        assert!(SupportRange::new(0.15, 0.05).is_err());
        assert!(SupportRange::new(0.1, 0.1).is_err());
        assert!(SupportRange::new(-0.1, 0.5).is_err());
        assert!(SupportRange::new(0.0, 1.5).is_err());
    }

    #[test]
    fn support_range_contains_is_inclusive() {
        let r = SupportRange::medium();
        assert!(r.contains(0.05));
        assert!(r.contains(0.15));
        assert!(!r.contains(0.0499));
        assert!(!r.contains(0.1501));
    }

    #[test]
    fn contains_tolerates_error_at_the_bounds() {
        // A τ_min that arrived through arithmetic overshoots its decimal
        // value (0.1 + 0.2 > 0.3); a support of exactly 0.3 still counts.
        let r = SupportRange::new(0.1 + 0.2, 0.9).unwrap();
        assert!(r.contains(0.3));
        // Sub-epsilon overshoot at τ_max is likewise absorbed.
        let r = SupportRange::new(0.05, 0.25 - 1e-12).unwrap();
        assert!(r.contains(0.25));
        // Genuine violations are still out of range.
        assert!(!r.contains(0.26));
    }

    #[test]
    fn named_ranges_match_paper() {
        assert_eq!(SupportRange::small(), SupportRange { min: 0.0, max: 0.05 });
        assert_eq!(SupportRange::medium(), SupportRange { min: 0.05, max: 0.15 });
        assert_eq!(SupportRange::large(), SupportRange { min: 0.30, max: 1.0 });
    }

    #[test]
    fn params_reject_zero_literals() {
        assert_eq!(
            SearchParams::new(SupportRange::medium(), 0).unwrap_err(),
            LatticeError::ZeroMaxLiterals
        );
        assert_eq!(SearchParams::paper_defaults().max_literals, 2);
    }
}
