//! Regression gate for the journal/rollback engine under
//! `FUME_DEEPCHECK=1`: after every journaled delete and every rollback,
//! the full forest must re-validate with zero violations, and the
//! rolled-back forest must compare equal to the pre-delete snapshot.
//!
//! This file is its own integration-test binary so the environment
//! variable can be set before anything reads (and caches) it.

use fume_forest::validate::validate_forest;
use fume_forest::{DareConfig, DareForest};
use fume_tabular::datasets::planted_toy;

#[test]
fn journaled_delete_and_rollback_stay_valid_under_deepcheck() {
    // Must run before the first `deepcheck::enabled()` call in this
    // process: the gate caches the answer in a OnceLock.
    std::env::set_var("FUME_DEEPCHECK", "1");
    assert!(
        fume_forest::deepcheck::enabled() || !cfg!(debug_assertions),
        "deepcheck must be active in debug/test builds once the env var is set"
    );

    let (data, _) = planted_toy().generate_scaled(0.6, 91).unwrap();
    let n = data.num_rows() as u32;
    assert!(n > 512, "need enough rows for the 256-id subset");

    let cfg = DareConfig { n_trees: 9, max_depth: 6, seed: 91, ..DareConfig::default() };
    let mut forest = DareForest::fit(&data, cfg);
    let snapshot = forest.clone();

    for subset_size in [1usize, 16, 256] {
        let del: Vec<u32> = (0..n).step_by(n as usize / subset_size).take(subset_size).collect();
        assert_eq!(del.len(), subset_size);

        // delete_journaled runs the deep check internally (and would
        // panic on any violation); verify explicitly as well so the test
        // also guards release-profile runs where the hook is compiled out.
        let journal = forest.delete_journaled(&del, &data);
        let after_delete = validate_forest(&forest, &data);
        assert!(
            after_delete.is_empty(),
            "violations after deleting {subset_size} ids: {after_delete:?}"
        );

        let restored = forest.rollback(journal);
        assert!(restored > 0, "rollback of {subset_size} ids restored nothing");
        let after_rollback = validate_forest(&forest, &data);
        assert!(
            after_rollback.is_empty(),
            "violations after rolling back {subset_size} ids: {after_rollback:?}"
        );
        assert_eq!(
            forest, snapshot,
            "rollback of {subset_size} ids must restore the byte-identical snapshot"
        );
    }
}
