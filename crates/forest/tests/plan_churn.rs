//! Property test for plan coherence under unlearning churn: a compiled
//! [`PredictPlan`] that is patched through an arbitrary interleaving of
//! journaled deletes, rollbacks and full prediction passes must stay
//! bitwise identical to the pointer walk after **every** step — the plan
//! is only useful if it never needs a recompile to stay honest.
//!
//! The churn schedule is seeded and deterministic (fume-lint F003: the
//! subsets are derived from fixed affine sequences, not an ambient RNG),
//! and the test also cross-checks the arena against a fresh compile at
//! each step, which is a stronger claim than prediction equality: the
//! patched plan must be *the* plan, not just an equivalent one.

use fume_forest::{DareConfig, DareForest, PredictPlan};
use fume_tabular::datasets::planted_toy;
use fume_tabular::split::train_test_split;
use fume_tabular::{Classifier, Dataset};

/// Asserts every plan prediction carries the exact bits of the pointer
/// walk — the invariant each churn step must preserve.
fn assert_bitwise(plan: &PredictPlan, forest: &DareForest, data: &Dataset, step: usize) {
    let fast = plan.predict_proba(data);
    for (row, p) in fast.iter().enumerate() {
        assert_eq!(
            p.to_bits(),
            forest.predict_row(data, row).to_bits(),
            "plan diverged from the pointer walk at step {step}, row {row}"
        );
    }
}

/// A deterministic pseudo-random subset of `0..n`: multiples of two
/// coprime strides folded into range, sorted and deduplicated. Different
/// `(step, salt)` pairs give different, overlapping subsets — overlap is
/// the interesting case for cone patching (repeated edits to the same
/// region of the arena).
fn churn_subset(step: usize, salt: usize, n: u32) -> Vec<u32> {
    let size = 3 + (step * 5 + salt) % 40;
    let mut ids: Vec<u32> = (0..size)
        .map(|j| ((j * 97 + step * 131 + salt * 53) % n as usize) as u32)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[test]
fn plan_stays_bitwise_coherent_under_delete_rollback_churn() {
    let (data, _) = planted_toy().generate_scaled(0.4, 71).unwrap();
    let (train, test) = train_test_split(&data, 0.3, 71).unwrap();
    let n = train.num_rows() as u32;
    let cfg = DareConfig { n_trees: 7, max_depth: 6, seed: 71, ..DareConfig::default() };
    let mut forest = DareForest::fit(&train, cfg);

    let mut plan = PredictPlan::compile(&forest);
    let pristine = plan.clone();
    assert_bitwise(&plan, &forest, &test, 0);

    for step in 1..=12 {
        // Delete a churn subset and patch the plan from its journal.
        let del = churn_subset(step, 0, n);
        let journal = forest.delete_journaled(&del, &train);
        let cones = plan.patch(&journal, &forest);
        assert_eq!(
            plan,
            PredictPlan::compile(&forest),
            "step {step}: patched plan is not the fresh compile of the mutated forest"
        );
        assert_bitwise(&plan, &forest, &test, step);

        // Every third step, pile a second deletion on top before
        // rolling back — nested journals exercise cone patches against
        // an arena that was already patched once.
        if step % 3 == 0 {
            // Ids still present in the forest only: deleting an already-
            // deleted id is outside the delete contract.
            let mut more = churn_subset(step, 1, n);
            more.retain(|id| !del.contains(id));
            let inner = forest.delete_journaled(&more, &train);
            let inner_cones = plan.patch(&inner, &forest);
            assert_bitwise(&plan, &forest, &test, step);
            forest.rollback(inner);
            plan.patch_cones(&inner_cones, &forest);
            assert_bitwise(&plan, &forest, &test, step);
        }

        // Roll the outer deletion back and replay its cones: the arena
        // must return to the pristine compile bit for bit.
        forest.rollback(journal);
        plan.patch_cones(&cones, &forest);
        assert_eq!(
            plan, pristine,
            "step {step}: rollback replay did not restore the pristine arena"
        );
        assert_bitwise(&plan, &forest, &test, step);
    }
}
