//! Forest hyperparameters.

/// How many attributes a greedy node considers (the paper's `p̃`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxFeatures {
    /// All attributes.
    All,
    /// `⌈√p⌉` attributes — the usual random-forest default.
    Sqrt,
    /// An explicit count (clamped to `p`).
    Count(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete count for `p` attributes (at least 1).
    pub fn resolve(self, p: usize) -> usize {
        match self {
            Self::All => p.max(1),
            Self::Sqrt => (p as f64).sqrt().ceil() as usize,
            Self::Count(c) => c.clamp(1, p.max(1)),
        }
    }
}

/// Configuration of a [`DareForest`](crate::forest::DareForest).
///
/// Defaults follow the DaRE-RF paper's mid-range settings: 100 trees,
/// depth 10, √p features per greedy node, k′ = 5 candidate thresholds per
/// attribute, and one random layer at the top of every tree (`d_rand = 1`)
/// so that deletions rarely invalidate the upper structure.
#[derive(Debug, Clone, PartialEq)]
pub struct DareConfig {
    /// Number of trees in the forest.
    pub n_trees: usize,
    /// Maximum tree depth (root at depth 0).
    pub max_depth: usize,
    /// Depth of the random upper layers (`d_rand`): nodes shallower than
    /// this split on a uniformly random attribute/threshold and therefore
    /// almost never need retraining on deletion. `0` disables random
    /// layers (a plain greedy forest — the paper's "exact" extreme).
    pub random_depth: usize,
    /// Number of candidate thresholds sampled per attribute at greedy
    /// nodes (the paper's `k'`). All candidates' statistics are cached.
    pub n_thresholds: usize,
    /// Attributes considered per greedy node.
    pub max_features: MaxFeatures,
    /// A node with fewer instances becomes a leaf.
    pub min_samples_split: u32,
    /// Every split must leave at least this many instances on each side.
    pub min_samples_leaf: u32,
    /// Seed for all structural randomness. Tree `i` derives its own
    /// deterministic stream from `seed` and `i`.
    pub seed: u64,
    /// Worker threads for fitting/unlearning across trees
    /// (`None` = all available cores).
    pub n_jobs: Option<usize>,
}

impl Default for DareConfig {
    fn default() -> Self {
        Self {
            n_trees: 100,
            max_depth: 10,
            random_depth: 1,
            n_thresholds: 5,
            max_features: MaxFeatures::Sqrt,
            min_samples_split: 2,
            min_samples_leaf: 1,
            seed: 0,
            n_jobs: None,
        }
    }
}

impl DareConfig {
    /// A small, fast configuration for tests and examples.
    pub fn small(seed: u64) -> Self {
        Self { n_trees: 20, max_depth: 6, seed, ..Self::default() }
    }

    /// Builder-style setter for the number of trees.
    pub fn with_trees(mut self, n: usize) -> Self {
        self.n_trees = n;
        self
    }

    /// Builder-style setter for the maximum depth.
    pub fn with_max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder-style setter for the random-layer depth.
    pub fn with_random_depth(mut self, d: usize) -> Self {
        self.random_depth = d;
        self
    }

    /// Builder-style setter for `k'`.
    pub fn with_thresholds(mut self, k: usize) -> Self {
        self.n_thresholds = k;
        self
    }

    /// Builder-style setter for the per-node feature budget.
    pub fn with_max_features(mut self, m: MaxFeatures) -> Self {
        self.max_features = m;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the thread count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.n_jobs = Some(jobs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(16), 16);
        assert_eq!(MaxFeatures::Sqrt.resolve(16), 4);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4); // ceil(3.16)
        assert_eq!(MaxFeatures::Count(3).resolve(16), 3);
        assert_eq!(MaxFeatures::Count(99).resolve(16), 16);
        assert_eq!(MaxFeatures::Count(0).resolve(16), 1);
        assert_eq!(MaxFeatures::All.resolve(0), 1);
    }

    #[test]
    fn builders_compose() {
        let c = DareConfig::default()
            .with_trees(7)
            .with_max_depth(3)
            .with_random_depth(2)
            .with_thresholds(9)
            .with_max_features(MaxFeatures::All)
            .with_seed(42)
            .with_jobs(2);
        assert_eq!(c.n_trees, 7);
        assert_eq!(c.max_depth, 3);
        assert_eq!(c.random_depth, 2);
        assert_eq!(c.n_thresholds, 9);
        assert_eq!(c.max_features, MaxFeatures::All);
        assert_eq!(c.seed, 42);
        assert_eq!(c.n_jobs, Some(2));
    }
}
