//! An extremely-randomized-trees (ERT) variant, in the spirit of the
//! HedgeCut substrate the paper cites as the other tree-based unlearning
//! option.
//!
//! An ERT splits every node on a randomly drawn attribute/threshold pair
//! instead of a greedy search. In the DaRE framework this is exactly a
//! forest whose *random layers* extend all the way down — such nodes carry
//! no candidate statistics and only retrain when a deletion empties a
//! side, making unlearning extremely cheap at some cost in accuracy. The
//! variant is used by the ablation benches to quantify that trade-off.

use fume_tabular::{Classifier, Dataset};

use crate::config::DareConfig;
use crate::delete::DeleteReport;
use crate::forest::{DareForest, ForestError};

/// An extremely randomized forest with cheap unlearning.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtraForest {
    inner: DareForest,
}

impl ExtraForest {
    /// Trains an ERT forest: `cfg` is reinterpreted with fully random
    /// splits (`random_depth = max_depth`).
    pub fn fit(data: &Dataset, cfg: DareConfig) -> Self {
        let cfg = DareConfig { random_depth: cfg.max_depth, ..cfg };
        Self { inner: DareForest::fit(data, cfg) }
    }

    /// Unlearns training instances; see [`DareForest::delete`].
    pub fn delete(&mut self, ids: &[u32], data: &Dataset) -> Result<DeleteReport, ForestError> {
        self.inner.delete(ids, data)
    }

    /// The underlying forest.
    pub fn as_dare(&self) -> &DareForest {
        &self.inner
    }

    /// Number of training instances currently learned.
    pub fn num_instances(&self) -> u32 {
        self.inner.num_instances()
    }
}

impl Classifier for ExtraForest {
    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        self.inner.predict_proba(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_forest;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    #[test]
    fn all_nodes_are_random() {
        let (data, _) = planted_toy().generate_scaled(0.2, 51).unwrap();
        let f = ExtraForest::fit(&data, DareConfig::small(51));
        fn assert_random(node: &crate::node::Node) {
            if let crate::node::Node::Internal(i) = node {
                assert!(i.is_random);
                assert_random(&i.left);
                assert_random(&i.right);
            }
        }
        for t in f.as_dare().trees() {
            assert_random(t.root());
        }
    }

    #[test]
    fn ert_learns_something_and_unlearns_cheaply() {
        let (data, _) = planted_toy().generate_full(52).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 52).unwrap();
        let mut f = ExtraForest::fit(&train, DareConfig::small(52));
        assert!(f.accuracy(&test) > 0.52, "{}", f.accuracy(&test));
        let report = f.delete(&(0..50).collect::<Vec<_>>(), &train).unwrap();
        // Random nodes carry no candidates; replenishment never happens.
        assert_eq!(report.candidates_replenished, 0);
        let v = validate_forest(f.as_dare(), &train);
        assert!(v.is_empty(), "{v:?}");
    }
}
