//! Undo journal for exact unlearning: record every statistic a deletion
//! mutates, so the tree can be rolled back byte-identically afterwards.
//!
//! FUME's hot loop asks "what would the bias be without subset T" for
//! hundreds of candidate subsets against the *same* deployed forest.
//! Cloning the forest per candidate makes every evaluation pay for the
//! full model; DaRE deletion itself only touches the nodes a deleted row
//! reaches. The journal confines the *evaluation* to the same footprint:
//! delete into a long-lived scratch forest while recording undo state,
//! measure, then [`DareTree::rollback`](crate::tree::DareTree::rollback)
//! — restoring node statistics, leaf instance lists, candidate pools,
//! retrained subtrees, and the tree's RNG stream exactly.
//!
//! Invariants:
//! * records are replayed in **reverse** order, so a node that was first
//!   updated in place and later replaced wholesale is restored correctly
//!   (the subtree swap first, then the in-place statistics on top);
//! * paths stay valid because deletion never restructures a node above a
//!   recorded mutation — a subtree rebuild terminates the recursion, so
//!   no record ever points below a replaced node;
//! * the RNG state is snapshotted before the delete, because subtree
//!   rebuilds and candidate replenishment consume the tree's stream.

use crate::node::{Candidate, Internal, Leaf, Node};
use fume_tabular::rng::StdRng;

/// Address of a node as a left(0)/right(1) bit path from the root.
/// Journaled trees must therefore be shallower than 64 levels — far above
/// any configurable [`DareConfig::max_depth`](crate::DareConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodePath {
    bits: u64,
    depth: u8,
}

impl NodePath {
    /// The root of the tree.
    pub const ROOT: NodePath = NodePath { bits: 0, depth: 0 };

    /// The path one step down from `self`.
    pub fn child(self, right: bool) -> NodePath {
        assert!(self.depth < 64, "journaled trees must be shallower than 64 levels");
        NodePath {
            bits: self.bits | (u64::from(right) << self.depth),
            depth: self.depth + 1,
        }
    }

    /// Whether this node lies in the subtree rooted at `ancestor`, i.e.
    /// `ancestor`'s bit path is a prefix of this one (every node is its
    /// own ancestor). The routing index uses this to map a `Subtree`
    /// undo record to the cached leaf addresses it invalidates.
    pub fn descends_from(self, ancestor: NodePath) -> bool {
        // `child` permits depths up to 64, so the prefix mask must not
        // shift by the full word width.
        let mask = if ancestor.depth >= 64 {
            u64::MAX
        } else {
            (1u64 << ancestor.depth) - 1
        };
        ancestor.depth <= self.depth && (self.bits & mask) == ancestor.bits
    }

    /// The raw left/right step sequence: bit `i` is the step taken at
    /// depth `i` (0 = left, 1 = right). The prediction plan walks its
    /// flattened arena with these bits instead of chasing child
    /// pointers.
    pub(crate) fn bits(self) -> u64 {
        self.bits
    }

    /// Number of steps from the root (the root itself has depth 0).
    pub(crate) fn depth(self) -> u8 {
        self.depth
    }

    /// Descends from `root` along this path (shared-reference twin of
    /// [`Self::locate_mut`], for read-only lookups like
    /// [`DareTree::proba_at`](crate::DareTree::proba_at)).
    pub(crate) fn locate(self, root: &Node) -> &Node {
        let mut node = root;
        for i in 0..self.depth {
            let right = self.bits >> i & 1 == 1;
            node = match node {
                Node::Internal(internal) => {
                    if right {
                        &internal.right
                    } else {
                        &internal.left
                    }
                }
                // fume-lint: allow(F001) -- path invariant: see locate_mut
                Node::Leaf(_) => unreachable!("journal path descends through a leaf"),
            };
        }
        node
    }

    /// Descends from `root` along this path.
    fn locate_mut(self, root: &mut Node) -> &mut Node {
        let mut node = root;
        for i in 0..self.depth {
            let right = self.bits >> i & 1 == 1;
            node = match node {
                Node::Internal(internal) => {
                    if right {
                        &mut internal.right
                    } else {
                        &mut internal.left
                    }
                }
                // fume-lint: allow(F001) -- path invariant: NodePath bits are recorded while descending this same tree, and structural records are replayed in reverse order, so every prefix resolves to the internal node it was recorded at
                Node::Leaf(_) => unreachable!("journal path descends through a leaf"),
            };
        }
        node
    }
}

/// One reversible mutation performed by a journaled deletion.
#[derive(Debug, Clone)]
pub(crate) enum UndoRecord {
    /// A leaf's instance list was edited: the pre-delete list and count.
    Leaf {
        /// Where the leaf sits.
        path: NodePath,
        /// Pre-delete instance ids.
        ids: Vec<u32>,
        /// Pre-delete positive count.
        n_pos: u32,
    },
    /// A decision node's statistics were updated in place: the pre-delete
    /// scalars plus each cached candidate's `(n_left, n_left_pos)` pair
    /// (attribute/threshold are untouched by in-place updates, so only
    /// the counts are saved).
    InternalStats {
        /// Where the node sits.
        path: NodePath,
        /// Pre-delete instance count.
        n: u32,
        /// Pre-delete positive count.
        n_pos: u32,
        /// Pre-delete `(n_left, n_left_pos)` per cached candidate.
        cand_stats: Vec<(u32, u32)>,
    },
    /// The candidate pool was restructured (replenishment): the full
    /// pre-replenish pool and chosen index.
    Candidates {
        /// Where the node sits.
        path: NodePath,
        /// Pre-replenish candidate pool.
        candidates: Vec<Candidate>,
        /// Pre-replenish chosen index.
        chosen: u32,
    },
    /// A whole subtree was rebuilt: the displaced subtree, moved (not
    /// cloned) out of the tree when the rebuild replaced it.
    Subtree {
        /// Where the subtree was rooted.
        path: NodePath,
        /// The displaced subtree.
        node: Node,
    },
}

impl UndoRecord {
    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + match self {
                Self::Leaf { ids, .. } => ids.len() * size_of::<u32>(),
                Self::InternalStats { cand_stats, .. } => {
                    cand_stats.len() * size_of::<(u32, u32)>()
                }
                Self::Candidates { candidates, .. } => {
                    candidates.len() * size_of::<Candidate>()
                }
                Self::Subtree { node, .. } => node.size() * size_of::<Internal>(),
            }
    }
}

/// Where a deletion pass sends its undo records: nowhere (the plain
/// destructive delete) or into a growing journal.
#[derive(Debug)]
pub(crate) enum JournalSink {
    /// Plain delete — mutations are not recorded.
    Off,
    /// Journaled delete — every mutation pushes an [`UndoRecord`].
    On(Vec<UndoRecord>),
}

impl JournalSink {
    /// Records a leaf's pre-delete state.
    pub(crate) fn record_leaf(&mut self, path: NodePath, leaf: &Leaf) {
        if let Self::On(records) = self {
            records.push(UndoRecord::Leaf {
                path,
                ids: leaf.ids.clone(),
                n_pos: leaf.n_pos,
            });
        }
    }

    /// Records a decision node's pre-delete scalar/candidate statistics.
    pub(crate) fn record_internal_stats(&mut self, path: NodePath, internal: &Internal) {
        if let Self::On(records) = self {
            records.push(UndoRecord::InternalStats {
                path,
                n: internal.n,
                n_pos: internal.n_pos,
                cand_stats: internal.candidate_stats(),
            });
        }
    }

    /// Records the full candidate pool before replenishment restructures
    /// it.
    pub(crate) fn record_candidates(&mut self, path: NodePath, internal: &Internal) {
        if let Self::On(records) = self {
            records.push(UndoRecord::Candidates {
                path,
                candidates: internal.candidates.clone(),
                chosen: internal.chosen,
            });
        }
    }

    /// Replaces `*node` with `new`, journaling the displaced subtree by
    /// move (the journaled path never clones what it can steal).
    pub(crate) fn replace_subtree(&mut self, path: NodePath, node: &mut Node, new: Node) {
        match self {
            Self::Off => *node = new,
            Self::On(records) => {
                let old = std::mem::replace(node, new);
                records.push(UndoRecord::Subtree { path, node: old });
            }
        }
    }

    /// Consumes the sink, yielding the recorded undo log.
    pub(crate) fn into_records(self) -> Vec<UndoRecord> {
        match self {
            Self::Off => Vec::new(),
            Self::On(records) => records,
        }
    }
}

/// The undo log of one journaled deletion on one tree.
#[derive(Debug, Clone)]
#[must_use = "dropping an undo log forfeits the only way to roll the tree back"]
pub struct TreeUndo {
    pub(crate) records: Vec<UndoRecord>,
    /// The tree's RNG state before the delete consumed it.
    pub(crate) rng: StdRng,
}

impl TreeUndo {
    /// Number of recorded node mutations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the deletion mutated nothing.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rough journal footprint in bytes (records plus their heap
    /// payloads).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.records.iter().map(UndoRecord::approx_bytes).sum::<usize>()
    }
}

/// Replays `records` in reverse against `root`, restoring the pre-delete
/// tree. Returns the number of node restorations applied.
pub(crate) fn rollback_records(root: &mut Node, records: Vec<UndoRecord>) -> usize {
    let restored = records.len();
    for record in records.into_iter().rev() {
        match record {
            UndoRecord::Leaf { path, ids, n_pos } => match path.locate_mut(root) {
                Node::Leaf(leaf) => {
                    leaf.ids = ids;
                    leaf.n_pos = n_pos;
                }
                // fume-lint: allow(F001) -- record-kind invariant: a Leaf record is only emitted for a node that was a leaf, and later Subtree restores cannot change a node's kind before its own record replays
                Node::Internal(_) => unreachable!("leaf record points at a decision node"),
            },
            UndoRecord::InternalStats { path, n, n_pos, cand_stats } => {
                match path.locate_mut(root) {
                    Node::Internal(internal) => {
                        internal.n = n;
                        internal.n_pos = n_pos;
                        internal.restore_candidate_stats(&cand_stats);
                    }
                    // fume-lint: allow(F001) -- record-kind invariant: InternalStats records are emitted only at internal nodes, and reverse-order replay restores structure before stats
                    Node::Leaf(_) => unreachable!("stats record points at a leaf"),
                }
            }
            UndoRecord::Candidates { path, candidates, chosen } => {
                match path.locate_mut(root) {
                    Node::Internal(internal) => {
                        internal.candidates = candidates;
                        internal.chosen = chosen;
                    }
                    // fume-lint: allow(F001) -- record-kind invariant: Candidates records are emitted only at greedy internal nodes, preserved by reverse-order replay
                    Node::Leaf(_) => unreachable!("candidate record points at a leaf"),
                }
            }
            UndoRecord::Subtree { path, node } => {
                *path.locate_mut(root) = node;
            }
        }
    }
    restored
}

/// The undo log of one journaled deletion across a whole forest:
/// per-tree records plus the forest-level instance count delta.
#[derive(Debug, Clone)]
#[must_use = "dropping the journal forfeits the only way to roll the forest back"]
pub struct UndoJournal {
    pub(crate) trees: Vec<TreeUndo>,
    pub(crate) n_deleted: u32,
    /// What the journaled deletion did, tree reports merged (identical to
    /// what the destructive [`DareForest::delete`](crate::DareForest::delete)
    /// would have reported).
    pub report: crate::delete::DeleteReport,
}

impl UndoJournal {
    /// An empty journal (the deletion was a no-op).
    pub(crate) fn empty() -> Self {
        Self {
            trees: Vec::new(),
            n_deleted: 0,
            report: crate::delete::DeleteReport::default(),
        }
    }

    /// Number of instances the journaled deletion removed.
    pub fn n_deleted(&self) -> u32 {
        self.n_deleted
    }

    /// Total recorded node mutations across all trees.
    pub fn nodes_recorded(&self) -> usize {
        self.trees.iter().map(TreeUndo::len).sum()
    }

    /// Rough journal footprint in bytes across all trees.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.trees.iter().map(TreeUndo::approx_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_address_children_uniquely() {
        let root = NodePath::ROOT;
        let l = root.child(false);
        let r = root.child(true);
        assert_ne!(l, r);
        assert_ne!(l.child(true), r.child(false));
        // Left-left and left differ by depth even though the bits agree.
        assert_ne!(l, l.child(false));
    }

    #[test]
    fn descendance_is_prefix_matching() {
        let root = NodePath::ROOT;
        let l = root.child(false);
        let lr = l.child(true);
        let r = root.child(true);
        assert!(lr.descends_from(root));
        assert!(lr.descends_from(l));
        assert!(lr.descends_from(lr), "every node is its own ancestor");
        assert!(!lr.descends_from(r));
        assert!(!l.descends_from(lr), "ancestry is not symmetric");
        // Same bits, shallower depth: left-left descends from left, and a
        // right branch below does not leak into the left prefix.
        assert!(l.child(false).descends_from(l));
        assert!(!r.child(false).descends_from(l));
        // Deep chains exercise the mask at high depths.
        let mut deep = root;
        for i in 0..63 {
            deep = deep.child(i % 2 == 0);
        }
        assert!(deep.descends_from(root));
        assert!(deep.child(true).descends_from(deep));
    }

    #[test]
    fn locate_walks_the_recorded_path() {
        let leaf = |ids: Vec<u32>| Node::Leaf(Leaf { n_pos: 0, ids });
        let mut tree = Node::Internal(Box::new(Internal {
            attr: 0,
            threshold: 0,
            is_random: true,
            n: 3,
            n_pos: 0,
            candidates: Vec::new(),
            chosen: 0,
            left: leaf(vec![0]),
            right: Node::Internal(Box::new(Internal {
                attr: 1,
                threshold: 0,
                is_random: true,
                n: 2,
                n_pos: 0,
                candidates: Vec::new(),
                chosen: 0,
                left: leaf(vec![1]),
                right: leaf(vec![2]),
            })),
        }));
        let p = NodePath::ROOT.child(true).child(false);
        match p.locate_mut(&mut tree) {
            Node::Leaf(l) => assert_eq!(l.ids, vec![1]),
            Node::Internal(_) => panic!("expected the right-left leaf"),
        }
    }

    #[test]
    fn sink_off_records_nothing_but_still_replaces() {
        let mut sink = JournalSink::Off;
        let mut node = Node::Leaf(Leaf { ids: vec![1, 2], n_pos: 1 });
        sink.replace_subtree(
            NodePath::ROOT,
            &mut node,
            Node::Leaf(Leaf { ids: vec![], n_pos: 0 }),
        );
        assert_eq!(node.n(), 0);
        assert!(sink.into_records().is_empty());
    }

    #[test]
    fn sink_on_steals_the_replaced_subtree() {
        let mut sink = JournalSink::On(Vec::new());
        let mut node = Node::Leaf(Leaf { ids: vec![1, 2], n_pos: 1 });
        sink.replace_subtree(
            NodePath::ROOT,
            &mut node,
            Node::Leaf(Leaf { ids: vec![], n_pos: 0 }),
        );
        let records = sink.into_records();
        assert_eq!(records.len(), 1);
        let restored = rollback_records(&mut node, records);
        assert_eq!(restored, 1);
        assert_eq!(node.n(), 2);
    }
}
