//! A single DaRE tree: construction, prediction, unlearning and
//! structural introspection.

use fume_tabular::Dataset;
use fume_tabular::rng::{SeedableRng, StdRng};

use crate::builder::build_node;
use crate::config::DareConfig;
use crate::delete::{delete_from_node, DeletePass, DeleteReport};
use crate::insert::{insert_into_node, InsertReport};
use crate::journal::{rollback_records, JournalSink, NodePath, TreeUndo};
use crate::node::Node;

/// A decision tree supporting exact unlearning of training instances.
///
/// The tree owns a deterministic RNG stream that is consumed both at build
/// time and by deletion-triggered subtree retrains, so a cloned tree
/// replays identically.
#[derive(Debug, Clone, PartialEq)]
pub struct DareTree {
    root: Node,
    rng: StdRng,
}

impl DareTree {
    /// Trains a tree on the instances `ids` of `data`.
    pub fn fit(data: &Dataset, ids: Vec<u32>, cfg: &DareConfig, seed: u64) -> Self {
        // fume-lint: allow(F003) -- seed provenance: derived by DareForest::fit_on from config.seed and the tree index, so the stream is reproducible per (config, tree)
        let mut rng = StdRng::seed_from_u64(seed);
        let root = build_node(data, ids, 0, &mut rng, cfg);
        Self { root, rng }
    }

    /// Reconstructs a tree from a persisted root. The RNG stream restarts
    /// from a seed derived deterministically from the forest seed and the
    /// tree's `index` (see `persist` module docs for the reseeding
    /// caveat).
    pub(crate) fn from_saved(root: Node, cfg: &DareConfig, index: usize) -> Self {
        let seed = cfg
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(index as u64)
            .rotate_left(17);
        // fume-lint: allow(F003) -- seed provenance: reseeded deterministically from (config.seed, tree index); see the persist module's reseeding caveat
        Self { root, rng: StdRng::seed_from_u64(seed) }
    }

    /// Positive-class probability for `row` of `data`.
    pub fn predict_row(&self, data: &Dataset, row: usize) -> f64 {
        self.root.predict_row(data, row)
    }

    /// The probability at the leaf addressed by `path` — the vote of
    /// every row routed there, in the bits a full walk would produce.
    /// Incremental evaluators use this to refresh all rows cached at a
    /// journal-edited leaf with a single lookup instead of one walk per
    /// row. Panics if `path` names an internal node: callers pass leaf
    /// addresses recorded by this tree's own journal, outside any
    /// rebuilt subtree, so the address still resolves to that leaf.
    pub fn proba_at(&self, path: NodePath) -> f64 {
        match path.locate(&self.root) {
            Node::Leaf(leaf) => leaf.proba(),
            // fume-lint: allow(F001) -- contract documented above: journal Leaf records only ever address leaves, and rebuilt cones are excluded by the caller; reaching an internal node means a corrupted journal, not a recoverable state
            Node::Internal(_) => panic!("proba_at: {path:?} addresses an internal node"),
        }
    }

    /// Unlearns the training instances `del` (must be sorted, deduplicated
    /// and present in the tree). Statistics are updated in place; subtrees
    /// are rebuilt from surviving instances only where the cached
    /// statistics prove it necessary.
    pub fn delete(&mut self, del: &[u32], data: &Dataset, cfg: &DareConfig) -> DeleteReport {
        debug_assert!(del.windows(2).all(|w| w[0] < w[1]), "ids must be sorted unique");
        let mut report = DeleteReport::default();
        delete_from_node(&mut self.root, del, data, 0, &mut self.rng, cfg, &mut report);
        report
    }

    /// [`Self::delete`] with an undo journal: performs the same deletion
    /// while recording every mutated statistic, edited leaf, displaced
    /// subtree, and the pre-delete RNG state, so that
    /// [`Self::rollback`] restores the tree byte-identically.
    pub fn delete_journaled(
        &mut self,
        del: &[u32],
        data: &Dataset,
        cfg: &DareConfig,
    ) -> (DeleteReport, TreeUndo) {
        debug_assert!(del.windows(2).all(|w| w[0] < w[1]), "ids must be sorted unique");
        let rng_before = self.rng.clone();
        let mut report = DeleteReport::default();
        let mut pass =
            DeletePass::new(data, cfg, &mut self.rng, &mut report, JournalSink::On(Vec::new()));
        pass.delete(&mut self.root, del, 0, NodePath::ROOT);
        let records = pass.into_records();
        (report, TreeUndo { records, rng: rng_before })
    }

    /// Undoes a journaled deletion, restoring the tree — structure,
    /// statistics, candidate pools, leaf instance lists and RNG stream —
    /// to exactly its pre-delete state. Returns the number of node
    /// restorations applied.
    ///
    /// `undo` must come from this tree's most recent
    /// [`Self::delete_journaled`]; replaying a foreign or stale journal
    /// corrupts the tree.
    pub fn rollback(&mut self, undo: TreeUndo) -> usize {
        let restored = rollback_records(&mut self.root, undo.records);
        self.rng = undo.rng;
        restored
    }

    /// Incrementally learns the additional training instances `ins`
    /// (sorted, deduplicated, not already present). Leaves grow and split
    /// as the builder would have; greedy nodes rebuild when a cached
    /// candidate overtakes the chosen split.
    pub fn insert(&mut self, ins: &[u32], data: &Dataset, cfg: &DareConfig) -> InsertReport {
        debug_assert!(ins.windows(2).all(|w| w[0] < w[1]), "ids must be sorted unique");
        let mut report = InsertReport::default();
        insert_into_node(&mut self.root, ins, data, 0, &mut self.rng, cfg, &mut report);
        report
    }

    /// The root node, for read-only structural walks (path mining,
    /// validation).
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Number of training instances currently in the tree.
    pub fn num_instances(&self) -> u32 {
        self.root.n()
    }

    /// All training-instance ids currently in the tree, sorted.
    pub fn instance_ids(&self) -> Vec<u32> {
        let mut ids = Vec::with_capacity(self.root.n() as usize);
        self.root.collect_ids(&mut ids);
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MaxFeatures;
    use fume_tabular::datasets::planted_toy;

    fn cfg() -> DareConfig {
        DareConfig {
            max_depth: 6,
            random_depth: 1,
            max_features: MaxFeatures::All,
            ..DareConfig::default()
        }
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let (data, _) = planted_toy().generate_scaled(0.2, 1).unwrap();
        let a = DareTree::fit(&data, data.all_row_ids(), &cfg(), 5);
        let b = DareTree::fit(&data, data.all_row_ids(), &cfg(), 5);
        assert_eq!(a, b);
        let c = DareTree::fit(&data, data.all_row_ids(), &cfg(), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn instance_ids_track_deletions() {
        let (data, _) = planted_toy().generate_scaled(0.2, 2).unwrap();
        let mut t = DareTree::fit(&data, data.all_row_ids(), &cfg(), 5);
        assert_eq!(t.num_instances() as usize, data.num_rows());
        let del = vec![0u32, 5, 10, 15];
        t.delete(&del, &data, &cfg());
        assert_eq!(t.num_instances() as usize, data.num_rows() - 4);
        let ids = t.instance_ids();
        for d in del {
            assert!(ids.binary_search(&d).is_err());
        }
    }

    #[test]
    fn predictions_stay_in_unit_interval() {
        let (data, _) = planted_toy().generate_scaled(0.2, 3).unwrap();
        let t = DareTree::fit(&data, data.all_row_ids(), &cfg(), 8);
        for row in 0..data.num_rows() {
            let p = t.predict_row(&data, row);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
