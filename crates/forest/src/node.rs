//! Tree node structures with the cached statistics that make exact
//! unlearning possible.
//!
//! DaRE trees store, at every node, the counts needed to re-evaluate
//! split decisions without touching the training data:
//! * decision nodes: `n`, `n_pos`, and for every cached candidate split
//!   the pair `(n_left, n_left_pos)`;
//! * leaves: the list of training-instance ids plus the positive count.
//!
//! Splits are of the form `code(attr) <= threshold → left`.

use fume_tabular::cast::row_u32;
use fume_tabular::Dataset;

use crate::journal::NodePath;

/// A cached candidate split with its sufficient statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Attribute index.
    pub attr: u16,
    /// Split threshold: codes `<= threshold` go left.
    pub threshold: u16,
    /// Number of node instances on the left side.
    pub n_left: u32,
    /// Number of positive node instances on the left side.
    pub n_left_pos: u32,
}

/// A leaf: the instances it holds and their positive count.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaf {
    /// Training-instance ids contained in this leaf.
    pub ids: Vec<u32>,
    /// Number of those with a positive label.
    pub n_pos: u32,
}

impl Leaf {
    /// Probability of the positive class in this leaf; an empty leaf is
    /// maximally uncertain (0.5).
    #[inline]
    pub fn proba(&self) -> f64 {
        if self.ids.is_empty() {
            0.5
        } else {
            self.n_pos as f64 / self.ids.len() as f64
        }
    }
}

/// An internal decision node.
#[derive(Debug, Clone, PartialEq)]
pub struct Internal {
    /// Splitting attribute.
    pub attr: u16,
    /// Codes `<= threshold` go to `left`.
    pub threshold: u16,
    /// Whether this is one of the tree's random upper-layer nodes
    /// (chosen uniformly, no cached candidates, rarely retrained).
    pub is_random: bool,
    /// Instances under this node.
    pub n: u32,
    /// Positive instances under this node.
    pub n_pos: u32,
    /// Cached candidate splits (greedy nodes only; empty for random nodes).
    pub candidates: Vec<Candidate>,
    /// Index into `candidates` of the currently chosen split
    /// (greedy nodes only).
    pub chosen: u32,
    /// Left child (`code <= threshold`).
    pub left: Node,
    /// Right child.
    pub right: Node,
}

impl Internal {
    /// The `(n_left, n_left_pos)` pair of every cached candidate, in pool
    /// order — the sufficient statistics an in-place delete mutates.
    /// Snapshotting these (rather than cloning whole [`Candidate`]s) is
    /// what keeps undo-journal records small: attribute and threshold are
    /// untouched by in-place updates.
    pub fn candidate_stats(&self) -> Vec<(u32, u32)> {
        self.candidates.iter().map(|c| (c.n_left, c.n_left_pos)).collect()
    }

    /// Writes a [`Self::candidate_stats`] snapshot back over the pool.
    /// The pool must have the shape it had when the snapshot was taken.
    pub fn restore_candidate_stats(&mut self, stats: &[(u32, u32)]) {
        debug_assert_eq!(
            self.candidates.len(),
            stats.len(),
            "candidate pool shape must match the snapshot"
        );
        for (cand, &(n_left, n_left_pos)) in self.candidates.iter_mut().zip(stats) {
            cand.n_left = n_left;
            cand.n_left_pos = n_left_pos;
        }
    }
}

/// A tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf node.
    Leaf(Leaf),
    /// An internal decision node.
    Internal(Box<Internal>),
}

impl Node {
    /// Instances under this node.
    pub fn n(&self) -> u32 {
        match self {
            Node::Leaf(l) => row_u32(l.ids.len()),
            Node::Internal(i) => i.n,
        }
    }

    /// Positive instances under this node.
    pub fn n_pos(&self) -> u32 {
        match self {
            Node::Leaf(l) => l.n_pos,
            Node::Internal(i) => i.n_pos,
        }
    }

    /// Collects all training-instance ids under this node (ascending order
    /// is *not* guaranteed).
    pub fn collect_ids(&self, out: &mut Vec<u32>) {
        match self {
            Node::Leaf(l) => out.extend_from_slice(&l.ids),
            Node::Internal(i) => {
                i.left.collect_ids(out);
                i.right.collect_ids(out);
            }
        }
    }

    /// Walks to the leaf for `row` of `data` and returns its positive-class
    /// probability.
    pub fn predict_row(&self, data: &Dataset, row: usize) -> f64 {
        let mut node = self;
        loop {
            match node {
                Node::Leaf(l) => return l.proba(),
                Node::Internal(i) => {
                    node = if data.code(row, i.attr as usize) <= i.threshold {
                        &i.left
                    } else {
                        &i.right
                    };
                }
            }
        }
    }

    /// Like [`Self::predict_row`], but also returns the [`NodePath`] of
    /// the leaf the row lands in — the address the routing index stores
    /// so a journaled deletion can name exactly which cached predictions
    /// it invalidated.
    pub fn route_row(&self, data: &Dataset, row: usize) -> (NodePath, f64) {
        let mut node = self;
        let mut path = NodePath::ROOT;
        loop {
            match node {
                Node::Leaf(l) => return (path, l.proba()),
                Node::Internal(i) => {
                    let right = data.code(row, i.attr as usize) > i.threshold;
                    path = path.child(right);
                    node = if right { &i.right } else { &i.left };
                }
            }
        }
    }

    /// Number of nodes in this subtree (internal + leaves).
    pub fn size(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(i) => 1 + i.left.size() + i.right.size(),
        }
    }

    /// Depth of this subtree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Internal(i) => 1 + i.left.depth().max(i.right.depth()),
        }
    }

    /// Number of leaves in this subtree.
    pub fn num_leaves(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(i) => i.left.num_leaves() + i.right.num_leaves(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tree() -> Node {
        // split on attr 0 at threshold 0: code 0 → left leaf, 1.. → right.
        Node::Internal(Box::new(Internal {
            attr: 0,
            threshold: 0,
            is_random: false,
            n: 5,
            n_pos: 3,
            candidates: vec![Candidate { attr: 0, threshold: 0, n_left: 2, n_left_pos: 0 }],
            chosen: 0,
            left: Node::Leaf(Leaf { ids: vec![0, 3], n_pos: 0 }),
            right: Node::Leaf(Leaf { ids: vec![1, 2, 4], n_pos: 3 }),
        }))
    }

    #[test]
    fn structural_accessors() {
        let t = tiny_tree();
        assert_eq!(t.n(), 5);
        assert_eq!(t.n_pos(), 3);
        assert_eq!(t.size(), 3);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.num_leaves(), 2);
        let mut ids = Vec::new();
        t.collect_ids(&mut ids);
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn leaf_probability() {
        assert_eq!(Leaf { ids: vec![], n_pos: 0 }.proba(), 0.5);
        assert_eq!(Leaf { ids: vec![1, 2], n_pos: 2 }.proba(), 1.0);
        assert_eq!(Leaf { ids: vec![1, 2, 3, 4], n_pos: 1 }.proba(), 0.25);
    }

    #[test]
    fn prediction_routes_by_threshold() {
        use fume_tabular::{Attribute, Schema};
        use std::sync::Arc;
        let schema = Arc::new(
            Schema::with_default_label(vec![Attribute::categorical(
                "x",
                vec!["a".into(), "b".into()],
            )])
            .unwrap(),
        );
        let data =
            Dataset::new(schema, vec![vec![0, 1]], vec![false, true]).unwrap();
        let t = tiny_tree();
        assert_eq!(t.predict_row(&data, 0), 0.0); // goes left
        assert_eq!(t.predict_row(&data, 1), 1.0); // goes right
    }
}
