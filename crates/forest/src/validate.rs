//! Structural invariant checking for DaRE trees.
//!
//! Exact unlearning hinges on cached statistics staying equal to what a
//! from-scratch pass over the surviving data would compute. This module
//! verifies that property and is used heavily by the workspace's tests
//! (including property-based tests).

use fume_tabular::cast::row_u32;
use fume_tabular::Dataset;

use crate::builder::candidate_valid;
use crate::config::DareConfig;
use crate::forest::DareForest;
use crate::gini::gini_gain;
use crate::node::Node;
use crate::tree::DareTree;

/// A violated invariant, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn check_node(
    node: &Node,
    data: &Dataset,
    cfg: &DareConfig,
    depth: usize,
    out: &mut Vec<Violation>,
) {
    match node {
        Node::Leaf(leaf) => {
            let pos = row_u32(
                leaf.ids.iter().filter(|&&id| data.label(id as usize)).count(),
            );
            if pos != leaf.n_pos {
                out.push(Violation(format!(
                    "leaf at depth {depth}: cached n_pos {} != recomputed {pos}",
                    leaf.n_pos
                )));
            }
        }
        Node::Internal(i) => {
            if i.n != i.left.n() + i.right.n() {
                out.push(Violation(format!(
                    "node at depth {depth}: n {} != children {}",
                    i.n,
                    i.left.n() + i.right.n()
                )));
            }
            if i.n_pos != i.left.n_pos() + i.right.n_pos() {
                out.push(Violation(format!(
                    "node at depth {depth}: n_pos {} != children {}",
                    i.n_pos,
                    i.left.n_pos() + i.right.n_pos()
                )));
            }
            // Routing: every id under `left` must satisfy the split.
            let mut ids = Vec::new();
            i.left.collect_ids(&mut ids);
            for id in &ids {
                if data.code(*id as usize, i.attr as usize) > i.threshold {
                    out.push(Violation(format!(
                        "node at depth {depth}: id {id} routed left violates split"
                    )));
                    break;
                }
            }
            ids.clear();
            i.right.collect_ids(&mut ids);
            for id in &ids {
                if data.code(*id as usize, i.attr as usize) <= i.threshold {
                    out.push(Violation(format!(
                        "node at depth {depth}: id {id} routed right violates split"
                    )));
                    break;
                }
            }

            if depth >= cfg.max_depth {
                out.push(Violation(format!(
                    "internal node at depth {depth} exceeds max_depth {}",
                    cfg.max_depth
                )));
            }

            if i.is_random {
                if !i.candidates.is_empty() {
                    out.push(Violation(format!(
                        "random node at depth {depth} carries candidates"
                    )));
                }
                if depth >= cfg.random_depth {
                    out.push(Violation(format!(
                        "random node at depth {depth} below random_depth {}",
                        cfg.random_depth
                    )));
                }
            } else {
                check_greedy_candidates(node, i, data, cfg, depth, out);
            }

            check_node(&i.left, data, cfg, depth + 1, out);
            check_node(&i.right, data, cfg, depth + 1, out);
        }
    }
}

fn check_greedy_candidates(
    node: &Node,
    i: &crate::node::Internal,
    data: &Dataset,
    cfg: &DareConfig,
    depth: usize,
    out: &mut Vec<Violation>,
) {
    if i.candidates.is_empty() {
        out.push(Violation(format!("greedy node at depth {depth} has no candidates")));
        return;
    }
    let chosen = match i.candidates.get(i.chosen as usize) {
        Some(c) => c,
        None => {
            out.push(Violation(format!(
                "greedy node at depth {depth}: chosen index {} out of range",
                i.chosen
            )));
            return;
        }
    };
    if (chosen.attr, chosen.threshold) != (i.attr, i.threshold) {
        out.push(Violation(format!(
            "greedy node at depth {depth}: chosen candidate does not match split"
        )));
    }

    let mut ids = Vec::new();
    node.collect_ids(&mut ids);
    let chosen_gain = gini_gain(i.n, i.n_pos, chosen.n_left, chosen.n_left_pos);
    for (ci, c) in i.candidates.iter().enumerate() {
        let column = data.column(c.attr as usize);
        let n_left =
            row_u32(ids.iter().filter(|&&id| column[id as usize] <= c.threshold).count());
        let n_left_pos = row_u32(
            ids.iter()
                .filter(|&&id| {
                    column[id as usize] <= c.threshold && data.label(id as usize)
                })
                .count(),
        );
        if (c.n_left, c.n_left_pos) != (n_left, n_left_pos) {
            out.push(Violation(format!(
                "greedy node at depth {depth}: candidate {ci} stats ({}, {}) != recomputed ({n_left}, {n_left_pos})",
                c.n_left, c.n_left_pos
            )));
        }
        if !candidate_valid(c, i.n, cfg) {
            out.push(Violation(format!(
                "greedy node at depth {depth}: candidate {ci} invalid but retained"
            )));
        }
        let gain = gini_gain(i.n, i.n_pos, c.n_left, c.n_left_pos);
        if gain > chosen_gain + 1e-9 {
            out.push(Violation(format!(
                "greedy node at depth {depth}: candidate {ci} gain {gain} beats chosen {chosen_gain}"
            )));
        }
    }
}

/// Checks every invariant of `tree` against `data`, returning all
/// violations (empty = valid).
pub fn validate_tree(tree: &DareTree, data: &Dataset, cfg: &DareConfig) -> Vec<Violation> {
    let mut out = Vec::new();
    check_node(tree.root(), data, cfg, 0, &mut out);
    out
}

/// Checks every tree of `forest`; returns all violations across trees.
pub fn validate_forest(forest: &DareForest, data: &Dataset) -> Vec<Violation> {
    let mut out = Vec::new();
    for (ti, tree) in forest.trees().iter().enumerate() {
        for v in validate_tree(tree, data, forest.config()) {
            out.push(Violation(format!("tree {ti}: {v}")));
        }
        if tree.num_instances() != forest.num_instances() {
            out.push(Violation(format!(
                "tree {ti}: holds {} instances, forest says {}",
                tree.num_instances(),
                forest.num_instances()
            )));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DareConfig;
    use fume_tabular::datasets::planted_toy;

    #[test]
    fn fresh_forest_is_valid() {
        let (data, _) = planted_toy().generate_scaled(0.2, 31).unwrap();
        let forest = DareForest::fit(&data, DareConfig::small(31));
        let v = validate_forest(&forest, &data);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn forest_stays_valid_under_batch_deletions() {
        let (data, _) = planted_toy().generate_scaled(0.3, 32).unwrap();
        let mut forest = DareForest::fit(&data, DareConfig::small(32));
        // Three waves of deletions, including a coherent block.
        let waves: Vec<Vec<u32>> = vec![
            (0..40).collect(),
            (100..160).step_by(2).collect(),
            (200..230).collect(),
        ];
        for wave in waves {
            forest.delete(&wave, &data).unwrap();
            let v = validate_forest(&forest, &data);
            assert!(v.is_empty(), "{v:?}");
        }
    }

    #[test]
    fn forest_stays_valid_under_many_single_deletions() {
        let (data, _) = planted_toy().generate_scaled(0.15, 33).unwrap();
        let mut forest = DareForest::fit(&data, DareConfig::small(33).with_trees(5));
        for id in (0..120u32).step_by(3) {
            forest.delete(&[id], &data).unwrap();
        }
        let v = validate_forest(&forest, &data);
        assert!(v.is_empty(), "{v:?}");
    }
}
