//! Forest persistence: a compact, versioned binary format.
//!
//! A deployed unlearnable model must outlive the process that trained it —
//! deletion requests (GDPR-style or FUME's what-if probes) arrive long
//! after training. This module serializes a [`DareForest`] including all
//! cached statistics, so a reloaded forest unlearns exactly as the saved
//! one would.
//!
//! One caveat, stated loudly: the per-tree RNG **stream position** is not
//! preserved (`StdRng` is deliberately opaque). A reloaded tree reseeds
//! deterministically from `(config.seed, tree index, generation)`, so
//! save→load→save is stable and reloaded behavior is reproducible, but a
//! reloaded forest's *future* retrain draws differ from the never-saved
//! original's. Both are draws from the same distribution — the exactness
//! guarantee is unaffected.

use std::path::Path;

use fume_tabular::cast::{code_u16, row_u32};

use crate::config::{DareConfig, MaxFeatures};
use crate::forest::DareForest;
use crate::node::{Candidate, Internal, Leaf, Node};
use crate::tree::DareTree;

/// Magic header bytes.
const MAGIC: &[u8; 4] = b"DARE";
/// Format version.
const VERSION: u16 = 1;
/// Hard recursion guard while decoding untrusted input.
const MAX_DECODE_DEPTH: usize = 512;

/// Errors from encoding/decoding forests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The input does not start with the expected magic bytes.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// The input ended prematurely or a field is malformed.
    Corrupt(&'static str),
    /// An I/O error, stringified.
    Io(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a DaRE forest file (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            Self::Corrupt(what) => write!(f, "corrupt forest data: {what}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Little-endian write cursor: the `bytes::BufMut` subset this format
/// uses, implemented directly on `Vec<u8>` so the crate stays
/// dependency-free.
trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_slice(&mut self, v: &[u8]) {
        self.extend_from_slice(v);
    }
}

/// Read cursor over a byte slice, advancing the slice in place. Getters
/// assume length was already checked via [`need`] — exactly the
/// discipline the decoder follows (`bytes` would panic identically).
trait Buf {
    fn remaining(&self) -> usize;
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
    #[inline]
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        // fume-lint: allow(F001) -- split_at(2) always yields a 2-byte head; the conversion cannot fail
        u16::from_le_bytes(head.try_into().expect("split_at(2)"))
    }
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        // fume-lint: allow(F001) -- split_at(4) always yields a 4-byte head; the conversion cannot fail
        u32::from_le_bytes(head.try_into().expect("split_at(4)"))
    }
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        // fume-lint: allow(F001) -- split_at(8) always yields an 8-byte head; the conversion cannot fail
        u64::from_le_bytes(head.try_into().expect("split_at(8)"))
    }
    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

fn need(buf: &&[u8], n: usize, what: &'static str) -> Result<(), PersistError> {
    if buf.remaining() < n {
        Err(PersistError::Corrupt(what))
    } else {
        Ok(())
    }
}

fn encode_config(out: &mut Vec<u8>, cfg: &DareConfig) {
    out.put_u32_le(row_u32(cfg.n_trees));
    out.put_u32_le(row_u32(cfg.max_depth));
    out.put_u32_le(row_u32(cfg.random_depth));
    out.put_u32_le(row_u32(cfg.n_thresholds));
    match cfg.max_features {
        MaxFeatures::All => {
            out.put_u8(0);
            out.put_u32_le(0);
        }
        MaxFeatures::Sqrt => {
            out.put_u8(1);
            out.put_u32_le(0);
        }
        MaxFeatures::Count(c) => {
            out.put_u8(2);
            out.put_u32_le(row_u32(c));
        }
    }
    out.put_u32_le(cfg.min_samples_split);
    out.put_u32_le(cfg.min_samples_leaf);
    out.put_u64_le(cfg.seed);
    match cfg.n_jobs {
        None => {
            out.put_u8(0);
            out.put_u32_le(0);
        }
        Some(j) => {
            out.put_u8(1);
            out.put_u32_le(row_u32(j));
        }
    }
}

fn decode_config(buf: &mut &[u8]) -> Result<DareConfig, PersistError> {
    need(buf, 4 * 4 + 1 + 4 + 4 + 4 + 8 + 1 + 4, "config")?;
    let n_trees = buf.get_u32_le() as usize;
    let max_depth = buf.get_u32_le() as usize;
    let random_depth = buf.get_u32_le() as usize;
    let n_thresholds = buf.get_u32_le() as usize;
    let mf_tag = buf.get_u8();
    let mf_val = buf.get_u32_le() as usize;
    let max_features = match mf_tag {
        0 => MaxFeatures::All,
        1 => MaxFeatures::Sqrt,
        2 => MaxFeatures::Count(mf_val),
        _ => return Err(PersistError::Corrupt("max_features tag")),
    };
    let min_samples_split = buf.get_u32_le();
    let min_samples_leaf = buf.get_u32_le();
    let seed = buf.get_u64_le();
    let jobs_tag = buf.get_u8();
    let jobs_val = buf.get_u32_le() as usize;
    let n_jobs = match jobs_tag {
        0 => None,
        1 => Some(jobs_val),
        _ => return Err(PersistError::Corrupt("n_jobs tag")),
    };
    Ok(DareConfig {
        n_trees,
        max_depth,
        random_depth,
        n_thresholds,
        max_features,
        min_samples_split,
        min_samples_leaf,
        seed,
        n_jobs,
    })
}

fn encode_node(out: &mut Vec<u8>, node: &Node) {
    match node {
        Node::Leaf(l) => {
            out.put_u8(0);
            out.put_u32_le(row_u32(l.ids.len()));
            for &id in &l.ids {
                out.put_u32_le(id);
            }
            out.put_u32_le(l.n_pos);
        }
        Node::Internal(i) => {
            out.put_u8(1);
            out.put_u16_le(i.attr);
            out.put_u16_le(i.threshold);
            out.put_u8(u8::from(i.is_random));
            out.put_u32_le(i.n);
            out.put_u32_le(i.n_pos);
            out.put_u32_le(i.chosen);
            out.put_u16_le(code_u16(i.candidates.len()));
            for c in &i.candidates {
                out.put_u16_le(c.attr);
                out.put_u16_le(c.threshold);
                out.put_u32_le(c.n_left);
                out.put_u32_le(c.n_left_pos);
            }
            encode_node(out, &i.left);
            encode_node(out, &i.right);
        }
    }
}

fn decode_node(buf: &mut &[u8], depth: usize) -> Result<Node, PersistError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(PersistError::Corrupt("node nesting too deep"));
    }
    need(buf, 1, "node tag")?;
    match buf.get_u8() {
        0 => {
            need(buf, 4, "leaf id count")?;
            let n = buf.get_u32_le() as usize;
            need(buf, n * 4 + 4, "leaf body")?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(buf.get_u32_le());
            }
            let n_pos = buf.get_u32_le();
            if (n_pos as usize) > n {
                return Err(PersistError::Corrupt("leaf n_pos exceeds n"));
            }
            Ok(Node::Leaf(Leaf { ids, n_pos }))
        }
        1 => {
            need(buf, 2 + 2 + 1 + 4 + 4 + 4 + 2, "internal header")?;
            let attr = buf.get_u16_le();
            let threshold = buf.get_u16_le();
            let is_random = buf.get_u8() != 0;
            let n = buf.get_u32_le();
            let n_pos = buf.get_u32_le();
            let chosen = buf.get_u32_le();
            let n_cands = buf.get_u16_le() as usize;
            need(buf, n_cands * (2 + 2 + 4 + 4), "candidates")?;
            let mut candidates = Vec::with_capacity(n_cands);
            for _ in 0..n_cands {
                candidates.push(Candidate {
                    attr: buf.get_u16_le(),
                    threshold: buf.get_u16_le(),
                    n_left: buf.get_u32_le(),
                    n_left_pos: buf.get_u32_le(),
                });
            }
            if !is_random && (chosen as usize) >= candidates.len() {
                return Err(PersistError::Corrupt("chosen index out of range"));
            }
            let left = decode_node(buf, depth + 1)?;
            let right = decode_node(buf, depth + 1)?;
            if left.n() + right.n() != n || left.n_pos() + right.n_pos() != n_pos {
                return Err(PersistError::Corrupt("node counts disagree with children"));
            }
            Ok(Node::Internal(Box::new(Internal {
                attr,
                threshold,
                is_random,
                n,
                n_pos,
                candidates,
                chosen,
                left,
                right,
            })))
        }
        _ => Err(PersistError::Corrupt("unknown node tag")),
    }
}

/// Serializes a forest to bytes.
pub fn to_bytes(forest: &DareForest) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 << 16);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    encode_config(&mut out, forest.config());
    out.put_u32_le(forest.num_instances());
    out.put_u32_le(row_u32(forest.trees().len()));
    for tree in forest.trees() {
        encode_node(&mut out, tree.root());
    }
    out
}

/// Deserializes a forest from bytes.
pub fn from_bytes(mut data: &[u8]) -> Result<DareForest, PersistError> {
    let buf = &mut data;
    need(buf, 4 + 2, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let config = decode_config(buf)?;
    need(buf, 8, "tree counts")?;
    let n_instances = buf.get_u32_le();
    let n_trees = buf.get_u32_le() as usize;
    // A corrupted count must not drive allocation: every tree needs at
    // least one node tag byte, so more trees than remaining bytes is
    // impossible in well-formed input.
    if n_trees > buf.remaining() {
        return Err(PersistError::Corrupt("tree count exceeds input size"));
    }
    let mut trees = Vec::with_capacity(n_trees);
    for index in 0..n_trees {
        let root = decode_node(buf, 0)?;
        if root.n() != n_instances {
            return Err(PersistError::Corrupt("tree instance count mismatch"));
        }
        trees.push(DareTree::from_saved(root, &config, index));
    }
    if buf.has_remaining() {
        return Err(PersistError::Corrupt("trailing bytes"));
    }
    DareForest::from_saved(trees, config, n_instances)
        .ok_or(PersistError::Corrupt("tree count disagrees with config"))
}

/// Encodes a [`DareConfig`] into `out` using this format's field layout.
/// Exposed so sibling formats (e.g. `fume-core`'s search checkpoints)
/// embed configs byte-compatibly instead of inventing a second encoding.
pub fn encode_config_into(out: &mut Vec<u8>, cfg: &DareConfig) {
    encode_config(out, cfg);
}

/// Decodes a [`DareConfig`] previously written by [`encode_config_into`],
/// advancing `buf` past it.
pub fn decode_config_from(buf: &mut &[u8]) -> Result<DareConfig, PersistError> {
    decode_config(buf)
}

/// Saves a forest to a file.
pub fn save(forest: &DareForest, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let _span = fume_obs::span!("forest.persist.save", trees = forest.trees().len());
    let bytes = to_bytes(forest);
    fume_obs::gauge!("forest.persist.bytes", bytes.len() as f64);
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Saves a forest atomically: the bytes land in a `.tmp` sibling first
/// and are renamed over `path`, so a crash mid-write can never leave a
/// truncated file where a loadable forest used to be.
pub fn save_atomic(forest: &DareForest, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let _span = fume_obs::span!("forest.persist.save", trees = forest.trees().len());
    let bytes = to_bytes(forest);
    fume_obs::gauge!("forest.persist.bytes", bytes.len() as f64);
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a forest from a file.
pub fn load(path: impl AsRef<Path>) -> Result<DareForest, PersistError> {
    let _span = fume_obs::span!("forest.persist.load");
    let data = std::fs::read(path)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_forest;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::Classifier;

    fn forest() -> (DareForest, fume_tabular::Dataset) {
        let (data, _) = planted_toy().generate_scaled(0.15, 81).unwrap();
        let cfg = DareConfig { n_trees: 6, max_depth: 6, seed: 81, ..DareConfig::default() };
        (DareForest::fit(&data, cfg), data)
    }

    #[test]
    fn roundtrip_preserves_structure_and_predictions() {
        let (f, data) = forest();
        let bytes = to_bytes(&f);
        let g = from_bytes(&bytes).unwrap();
        assert_eq!(g.num_instances(), f.num_instances());
        assert_eq!(g.config(), f.config());
        assert_eq!(g.trees().len(), f.trees().len());
        for (a, b) in f.trees().iter().zip(g.trees()) {
            assert_eq!(a.root(), b.root());
        }
        assert_eq!(f.predict_proba(&data), g.predict_proba(&data));
        let v = validate_forest(&g, &data);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn reloaded_forest_still_unlearns_exactly() {
        let (f, data) = forest();
        let mut g = from_bytes(&to_bytes(&f)).unwrap();
        g.delete(&[0, 3, 9, 27], &data).unwrap();
        assert_eq!(g.num_instances() + 4, f.num_instances());
        let v = validate_forest(&g, &data);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn save_load_save_is_stable() {
        let (f, _) = forest();
        let b1 = to_bytes(&f);
        let g = from_bytes(&b1).unwrap();
        let b2 = to_bytes(&g);
        assert_eq!(b1, b2);
    }

    #[test]
    fn corrupt_inputs_are_rejected_not_panicked() {
        let (f, _) = forest();
        let good = to_bytes(&f);
        assert_eq!(from_bytes(b"nope!!"), Err(PersistError::BadMagic));
        assert_eq!(from_bytes(b"hi"), Err(PersistError::Corrupt("header")));
        assert!(matches!(
            from_bytes(&good[..10]),
            Err(PersistError::Corrupt(_)) | Err(PersistError::UnsupportedVersion(_))
        ));
        // Flip a version byte.
        let mut bad = good.clone();
        bad[4] = 0xFF;
        assert!(matches!(from_bytes(&bad), Err(PersistError::UnsupportedVersion(_))));
        // Truncate mid-tree.
        assert!(from_bytes(&good[..good.len() - 5]).is_err());
        // Trailing garbage.
        let mut long = good.clone();
        long.push(7);
        assert_eq!(from_bytes(&long), Err(PersistError::Corrupt("trailing bytes")));
    }

    #[test]
    fn nondefault_config_variants_roundtrip() {
        let (data, _) = planted_toy().generate_scaled(0.1, 82).unwrap();
        let cfg = DareConfig {
            n_trees: 2,
            max_depth: 4,
            random_depth: 2,
            n_thresholds: 3,
            max_features: crate::config::MaxFeatures::Count(2),
            min_samples_split: 6,
            min_samples_leaf: 2,
            seed: 123,
            n_jobs: Some(1),
        };
        let f = DareForest::fit(&data, cfg.clone());
        let g = from_bytes(&to_bytes(&f)).unwrap();
        assert_eq!(g.config(), &cfg);
        // And the All/Sqrt variants.
        for mf in [crate::config::MaxFeatures::All, crate::config::MaxFeatures::Sqrt] {
            let cfg2 = DareConfig { max_features: mf, n_jobs: None, ..cfg.clone() };
            let f2 = DareForest::fit(&data, cfg2.clone());
            let g2 = from_bytes(&to_bytes(&f2)).unwrap();
            assert_eq!(g2.config(), &cfg2);
        }
    }

    #[test]
    fn file_roundtrip() {
        let (f, data) = forest();
        let dir = std::env::temp_dir().join("fume_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.dare");
        save(&f, &path).unwrap();
        let g = load(&path).unwrap();
        assert_eq!(f.predict_proba(&data), g.predict_proba(&data));
    }

    #[test]
    fn atomic_save_replaces_and_leaves_no_tmp() {
        let (f, data) = forest();
        let dir = std::env::temp_dir().join("fume_persist_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.dare");
        // Seed the path with garbage: the rename must replace it whole.
        std::fs::write(&path, b"stale junk").unwrap();
        save_atomic(&f, &path).unwrap();
        let g = load(&path).unwrap();
        assert_eq!(f.predict_proba(&data), g.predict_proba(&data));
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists(), "tmp file must not linger");
    }

    #[test]
    fn config_codec_hooks_roundtrip() {
        let cfg = DareConfig {
            n_trees: 3,
            max_depth: 5,
            random_depth: 1,
            n_thresholds: 7,
            max_features: crate::config::MaxFeatures::Count(4),
            min_samples_split: 9,
            min_samples_leaf: 3,
            seed: 0xDEAD_BEEF,
            n_jobs: Some(2),
        };
        let mut bytes = Vec::new();
        encode_config_into(&mut bytes, &cfg);
        let mut cursor = bytes.as_slice();
        assert_eq!(decode_config_from(&mut cursor).unwrap(), cfg);
        assert!(cursor.is_empty(), "decode must consume exactly the config");
    }
}
