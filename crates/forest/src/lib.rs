//! # fume-forest
//!
//! **DaRE random forests** — Data Removal-Enabled random forests with
//! *exact* machine unlearning (Brophy & Lowd, ICML 2021) — built from
//! scratch as the model substrate for FUME (EDBT 2025).
//!
//! A [`DareForest`] is a binary random-forest classifier whose trees cache
//! sufficient statistics at every node:
//! * the top `random_depth` layers split on uniformly random
//!   attribute/threshold pairs, so they almost never depend on any single
//!   training instance;
//! * deeper *greedy* nodes cache `k'` candidate thresholds per sampled
//!   attribute together with their label counts;
//! * leaves store their training-instance ids.
//!
//! [`DareForest::delete`] removes training instances by updating those
//! statistics top-down and rebuilding exactly the subtrees whose cached
//! split decision is no longer one the builder could have made — yielding
//! a model from the same distribution as a full retrain on the surviving
//! data, at a fraction of the cost.
//!
//! The [`validate`] module exposes the invariant checker used to test
//! exactness, and [`extra_trees`] provides a HedgeCut-style extremely
//! randomized variant for comparison.
//!
//! For evaluation loops that unlearn a subset only to measure the
//! resulting model, [`DareForest::delete_journaled`] records every
//! mutation into an [`UndoJournal`] and [`DareForest::rollback`] restores
//! the forest byte-identically — the substrate for FUME's zero-clone
//! scratch-forest pool (see the [`journal`] module).
//!
//! Full prediction passes over a deployed forest run through a
//! [`PredictPlan`]: a read-optimized struct-of-arrays arena compiled from
//! the pointer trees, traversed by a blocked kernel that is bitwise
//! identical to the pointer walk and patchable from the same journals
//! (see the [`plan`] module).

#![warn(missing_docs)]

mod builder;
pub mod config;
pub mod deepcheck;
pub mod delete;
pub mod extra_trees;
pub mod forest;
pub mod gbdt;
pub mod gini;
pub mod insert;
pub mod journal;
pub mod node;
pub mod persist;
pub mod plan;
pub mod routing;
pub mod tree;
pub mod validate;

pub use config::{DareConfig, MaxFeatures};
pub use delete::DeleteReport;
pub use forest::{DareForest, ForestError};
pub use gbdt::{Gbdt, GbdtConfig};
pub use insert::InsertReport;
pub use journal::{TreeUndo, UndoJournal};
pub use plan::{PlanCones, PredictPlan, BLOCK_ROWS, PLAN_FULL_PASS_MIN_ROWS};
pub use routing::{DirtyRows, RoutingIndex};
pub use tree::DareTree;
