//! Per-tree routing index: which leaf does each evaluation row land in?
//!
//! FUME's unlearn-eval loop measures a fairness metric on the *same*
//! held-out rows after every journaled deletion. A deletion only changes
//! the prediction of a row whose root-to-leaf walk passes through a node
//! the deletion actually mutated *structurally*:
//!
//! * a [`Leaf` record](crate::journal::UndoRecord) means that leaf's
//!   instance list (and therefore its probability) was edited in place —
//!   rows cached at exactly that leaf are dirty;
//! * a [`Subtree` record](crate::journal::UndoRecord) means a whole
//!   subtree was rebuilt — rows cached at any leaf *under* that path are
//!   dirty (routing above the subtree root is untouched, so the set of
//!   rows entering it is unchanged);
//! * `InternalStats` and `Candidates` records touch only cached
//!   sufficient statistics, never the `(attr, threshold)` pair a walk
//!   consults — they invalidate nothing. A delete pass that *does* need
//!   to change a split decision always goes through a subtree rebuild.
//!
//! So the exact dirty set of an [`UndoJournal`] falls straight out of a
//! prebuilt map from each leaf to the rows cached under it, *per tree*:
//! the journal names edited leaves and rebuilt subtree roots, the index
//! answers with the affected rows directly — no per-row scan. Rows clean
//! in a tree provably keep that tree's cached probability, and rows at
//! an edited leaf all share its one new probability, so dirty detection
//! refreshes each edited leaf with a single lookup, re-walks only the
//! rows under rebuilt subtrees, and filters any contribution that comes
//! out bit-identical (a pure leaf stays pure when rows are deleted from
//! it — the common case). An evaluator then re-sums just the votes that
//! moved against cached per-tree contributions — bitwise identical to a
//! full prediction pass.

use std::collections::{HashMap, HashSet};

use fume_tabular::Dataset;

use crate::forest::DareForest;
use crate::journal::{NodePath, UndoJournal, UndoRecord};
use crate::plan::PredictPlan;

/// Maps each leaf of a fixed forest to the rows of a fixed evaluation
/// dataset cached under it (and each `(tree, row)` pair to its leaf
/// probability), so [`Self::dirty_rows`] can name exactly which cached
/// predictions a journaled deletion invalidated.
///
/// The index describes the forest *as it was at build time*; it stays
/// valid across `delete_journaled` → `rollback` cycles (the forest is
/// restored byte-identically) but not across destructive deletes or
/// inserts — rebuild it after those.
#[derive(Debug, Clone)]
pub struct RoutingIndex {
    /// `rows_by_leaf[tree]`: leaf path → rows cached there, ascending.
    rows_by_leaf: Vec<HashMap<NodePath, Vec<u32>>>,
    /// `probas[tree * n_rows + row]`: the leaf probability `row` reaches
    /// in `tree` — the tree's exact contribution to the ensemble vote.
    /// Tree-major, so one tree's contributions are a contiguous slice
    /// and a trees-outer re-sum streams through cache lines.
    probas: Vec<f64>,
    n_trees: usize,
    n_rows: usize,
}

/// The output of [`RoutingIndex::dirty_rows`]: exactly which cached
/// per-tree contributions a journaled deletion *changed*, with their
/// replacement values. Contributions that come out bit-identical — a
/// pure leaf staying pure after an edit, a rebuilt subtree routing a row
/// to an equal-probability leaf — are filtered at the source, so
/// consumers re-sum only votes that genuinely moved.
#[derive(Debug, Clone, Default)]
pub struct DirtyRows {
    /// `fresh[tree]`: `(row, new contribution)` pairs ascending by row —
    /// only pairs whose contribution differs bitwise from the cached
    /// one. Rows of an edited leaf share its one freshly-looked-up
    /// probability; rows under a rebuilt subtree carry a fresh walk.
    pub fresh: Vec<Vec<(u32, f64)>>,
    /// Union across trees, ascending and duplicate-free: the rows with
    /// at least one changed contribution — the only rows whose ensemble
    /// vote needs re-summing. Rows absent here keep every cached
    /// contribution (and therefore their prediction) bit-for-bit.
    pub rows: Vec<u32>,
}

impl RoutingIndex {
    /// Routes every row of `data` through every tree of `forest`, via a
    /// throwaway [`PredictPlan`] compile. Callers that already hold a
    /// compiled plan should use [`Self::build_with_plan`] directly and
    /// share the plan with their prediction passes.
    pub fn build(forest: &DareForest, data: &Dataset) -> Self {
        Self::build_with_plan(&PredictPlan::compile(forest), data)
    }

    /// Routes every row of `data` through every tree of `plan`'s
    /// flattened arenas. The arena records each slot's [`NodePath`] and
    /// leaf probability, so one arena walk per `(tree, row)` yields both
    /// the leaf table entry and the cached contribution — the same
    /// addresses and bits a pointer [`route_row`](crate::node::Node::route_row)
    /// walk produces, without the pointer chasing.
    pub fn build_with_plan(plan: &PredictPlan, data: &Dataset) -> Self {
        let _span = fume_obs::span!(
            "forest.routing_index.build",
            trees = plan.num_trees(),
            rows = data.num_rows()
        );
        let n_rows = data.num_rows();
        let n_trees = plan.num_trees();
        let mut rows_by_leaf = Vec::with_capacity(n_trees);
        let mut probas = Vec::with_capacity(n_rows * n_trees);
        for tree in plan.tree_plans() {
            let mut by_leaf: HashMap<NodePath, Vec<u32>> = HashMap::new();
            for row in 0..n_rows {
                let slot = tree.route_row(data, row);
                by_leaf
                    .entry(tree.path_of(slot))
                    .or_default()
                    .push(fume_tabular::cast::row_u32(row));
                probas.push(tree.proba_of(slot));
            }
            rows_by_leaf.push(by_leaf);
        }
        Self { rows_by_leaf, probas, n_trees, n_rows }
    }

    /// Number of indexed rows.
    pub fn num_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of indexed trees.
    pub fn num_trees(&self) -> usize {
        self.n_trees
    }

    /// The build-time probability contribution of `tree` for `row` —
    /// exactly the value a fresh walk of the unmutated tree produces.
    #[inline]
    pub fn tree_proba(&self, tree: usize, row: usize) -> f64 {
        self.probas[tree * self.n_rows + row]
    }

    /// All of `tree`'s per-row contributions, indexed by row — one
    /// contiguous slice per tree, for streaming re-sums.
    #[inline]
    pub fn tree_probas(&self, tree: usize) -> &[f64] {
        &self.probas[tree * self.n_rows..(tree + 1) * self.n_rows]
    }

    /// The contributions the journaled deletion changed, with their
    /// replacement values, against `mutated` — the forest *after* the
    /// deletion the journal records (e.g. the scratch forest between
    /// `delete_journaled` and `rollback`). `data` must be the dataset
    /// this index was built on. Every row *not* in [`DirtyRows::rows`]
    /// is guaranteed to keep its pre-delete probability in every tree
    /// (see the module docs for why), so a caller may reuse cached
    /// predictions for the complement verbatim — and within a dirty row,
    /// every tree without a [`DirtyRows::fresh`] entry keeps its cached
    /// contribution.
    pub fn dirty_rows(
        &self,
        journal: &UndoJournal,
        mutated: &DareForest,
        data: &Dataset,
    ) -> DirtyRows {
        assert!(
            journal.trees.is_empty() || journal.trees.len() == self.rows_by_leaf.len(),
            "journal covers {} trees but the index covers {}",
            journal.trees.len(),
            self.rows_by_leaf.len()
        );
        debug_assert_eq!(mutated.trees().len(), self.n_trees, "mutated forest shape");
        let mut union = vec![false; self.n_rows];
        let mut fresh_out = vec![Vec::new(); self.n_trees];
        let mut edited: HashSet<NodePath> = HashSet::new();
        let mut rebuilt: Vec<NodePath> = Vec::new();
        for (t, (undo, by_leaf)) in
            journal.trees.iter().zip(&self.rows_by_leaf).enumerate()
        {
            edited.clear();
            rebuilt.clear();
            for record in &undo.records {
                match record {
                    UndoRecord::Leaf { path, .. } => {
                        edited.insert(*path);
                    }
                    UndoRecord::Subtree { path, .. } => rebuilt.push(*path),
                    UndoRecord::InternalStats { .. } | UndoRecord::Candidates { .. } => {}
                }
            }
            if edited.is_empty() && rebuilt.is_empty() {
                continue;
            }
            let tree = &mutated.trees()[t];
            let cached = self.tree_probas(t);
            let mut fresh: Vec<(u32, f64)> = Vec::new();
            for &path in &edited {
                // A leaf inside a rebuilt cone no longer exists at its
                // recorded address; its rows are picked up by the cone
                // scan below instead.
                if rebuilt.iter().any(|&root| path.descends_from(root)) {
                    continue;
                }
                if let Some(rows) = by_leaf.get(&path) {
                    // One lookup refreshes the whole group: an in-place
                    // edit leaves routing untouched, so every row cached
                    // here still lands on this leaf and votes its new
                    // probability — which is often bit-identical (a pure
                    // leaf stays pure when rows are deleted from it), in
                    // which case nothing is dirty.
                    let p = tree.proba_at(path);
                    if p.to_bits() == cached[rows[0] as usize].to_bits() {
                        continue;
                    }
                    fresh.extend(rows.iter().map(|&row| (row, p)));
                }
            }
            if !rebuilt.is_empty() {
                // Rebuilds are rare; one scan of the tree's leaf table
                // resolves every root's cone at once. Rows the rebuilt
                // subtree routes to an equal-probability leaf are
                // filtered like unchanged edits.
                for (leaf, rows) in by_leaf {
                    if rebuilt.iter().any(|&root| leaf.descends_from(root)) {
                        for &row in rows {
                            let p = tree.predict_row(data, row as usize);
                            if p.to_bits() != cached[row as usize].to_bits() {
                                fresh.push((row, p));
                            }
                        }
                    }
                }
            }
            fresh.sort_unstable_by_key(|&(row, _)| row);
            for &(row, _) in &fresh {
                union[row as usize] = true;
            }
            fresh_out[t] = fresh;
        }
        let rows = (0..self.n_rows)
            .filter(|&r| union[r])
            .map(fume_tabular::cast::row_u32)
            .collect();
        DirtyRows { fresh: fresh_out, rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DareConfig;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;
    use fume_tabular::Classifier;

    fn setup(seed: u64) -> (Dataset, Dataset, DareForest) {
        let (data, _) = planted_toy().generate_scaled(0.2, seed).unwrap();
        let (train, test) = train_test_split(&data, 0.3, seed).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(seed));
        (train, test, forest)
    }

    #[test]
    fn index_addresses_match_prediction_walks() {
        let (_, test, forest) = setup(41);
        let idx = RoutingIndex::build(&forest, &test);
        assert_eq!(idx.num_rows(), test.num_rows());
        assert_eq!(idx.num_trees(), forest.trees().len());
        for (t, tree) in forest.trees().iter().enumerate() {
            let mut seen = 0;
            for row in 0..test.num_rows() {
                let (walked, proba) = tree.root().route_row(&test, row);
                // The cached contribution is the walk's, to the bit, and
                // the leaf table files the row under the walked path.
                assert_eq!(idx.tree_proba(t, row).to_bits(), proba.to_bits());
                assert_eq!(proba.to_bits(), tree.predict_row(&test, row).to_bits());
                let rows = idx.rows_by_leaf[t].get(&walked).expect("leaf indexed");
                assert!(rows.binary_search(&(row as u32)).is_ok());
                seen += 1;
            }
            let filed: usize = idx.rows_by_leaf[t].values().map(Vec::len).sum();
            assert_eq!(filed, seen, "every row filed under exactly one leaf");
        }
    }

    #[test]
    fn clean_rows_keep_their_predictions_dirty_rows_cover_all_changes() {
        let (train, test, forest) = setup(42);
        let idx = RoutingIndex::build(&forest, &test);
        let before = forest.predict_proba(&test);
        let mut scratch = forest.clone();
        for subset in [vec![0u32, 1, 2], (0..40).step_by(3).collect::<Vec<u32>>()] {
            let journal = scratch.delete_journaled(&subset, &train);
            let after = scratch.predict_proba(&test);
            let dirty = idx.dirty_rows(&journal, &scratch, &test);
            assert!(dirty.rows.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            // Soundness: every row whose ensemble proba changed is in the
            // dirty union.
            for (row, (a, b)) in before.iter().zip(&after).enumerate() {
                if a.to_bits() != b.to_bits() {
                    assert!(
                        dirty.rows.binary_search(&(row as u32)).is_ok(),
                        "row {row} changed ({a} -> {b}) but was not flagged dirty"
                    );
                }
            }
            // Per-tree exactness, both directions: every contribution
            // that changed has a fresh entry carrying the walk's bits,
            // and every fresh entry is a genuine change.
            for (t, tree) in scratch.trees().iter().enumerate() {
                let fresh = &dirty.fresh[t];
                assert!(fresh.windows(2).all(|w| w[0].0 < w[1].0), "sorted unique");
                for row in 0..test.num_rows() {
                    let walked = tree.predict_row(&test, row);
                    let cached = idx.tree_proba(t, row);
                    let entry = fresh
                        .binary_search_by_key(&(row as u32), |&(r, _)| r)
                        .ok()
                        .map(|i| fresh[i].1);
                    match entry {
                        Some(p) => {
                            assert_eq!(
                                p.to_bits(),
                                walked.to_bits(),
                                "tree {t} row {row}: fresh entry is not the walk's value"
                            );
                            assert_ne!(
                                p.to_bits(),
                                cached.to_bits(),
                                "tree {t} row {row}: unchanged contribution not filtered"
                            );
                        }
                        None => assert_eq!(
                            walked.to_bits(),
                            cached.to_bits(),
                            "tree {t} row {row}: contribution changed but not flagged"
                        ),
                    }
                }
            }
            scratch.rollback(journal);
            assert_eq!(scratch, forest);
        }
    }

    #[test]
    fn empty_journal_flags_nothing() {
        let (train, test, forest) = setup(43);
        let idx = RoutingIndex::build(&forest, &test);
        let mut scratch = forest.clone();
        let journal = scratch.delete_journaled(&[], &train);
        let dirty = idx.dirty_rows(&journal, &scratch, &test);
        assert!(dirty.rows.is_empty());
        assert!(dirty.fresh.iter().all(Vec::is_empty));
    }

    #[test]
    #[should_panic(expected = "journal covers")]
    fn journal_from_a_different_forest_shape_is_rejected() {
        let (train, test, forest) = setup(44);
        let idx = RoutingIndex::build(&forest, &test);
        let other_cfg = DareConfig { n_trees: 3, ..DareConfig::small(44) };
        let mut other = DareForest::fit(&train, other_cfg);
        let journal = other.delete_journaled(&[0, 1], &train);
        idx.dirty_rows(&journal, &other, &test);
    }
}
