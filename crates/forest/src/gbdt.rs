//! Gradient-boosted decision trees (binary log-loss), built from scratch
//! as a second non-parametric model family.
//!
//! The paper's §5.1 notes FUME extends to any model by swapping the
//! removal method behind `EstimateAttribution`. GBDTs are the canonical
//! "harder" case the related work tackles (Lin et al., KDD 2023): trees
//! are *sequential* — each fits the previous ensemble's gradients — so a
//! deletion invalidates every later tree and exact unlearning degenerates
//! to retraining. This module provides the model; `fume-core` plugs it
//! into FUME through the model-agnostic retraining removal, demonstrating
//! the extensibility claim end-to-end.

use fume_tabular::cast::{code_u16, row_u32};
use fume_tabular::rng::{SeedableRng, SliceRandom, StdRng};
use fume_tabular::{Classifier, Dataset};

/// GBDT hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Minimum instances per leaf.
    pub min_samples_leaf: u32,
    /// Attributes sampled per split (`None` = all).
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 50,
            max_depth: 3,
            learning_rate: 0.2,
            min_samples_leaf: 5,
            max_features: None,
            seed: 0,
        }
    }
}

/// A node of a regression tree over coded attributes.
#[derive(Debug, Clone, PartialEq)]
enum RegNode {
    Leaf {
        value: f64,
    },
    Split {
        attr: u16,
        threshold: u16,
        left: Box<RegNode>,
        right: Box<RegNode>,
    },
}

impl RegNode {
    fn predict(&self, data: &Dataset, row: usize) -> f64 {
        match self {
            RegNode::Leaf { value } => *value,
            RegNode::Split { attr, threshold, left, right } => {
                if data.code(row, *attr as usize) <= *threshold {
                    left.predict(data, row)
                } else {
                    right.predict(data, row)
                }
            }
        }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Builds a regression tree on Newton gradients/hessians.
fn build_reg_node(
    data: &Dataset,
    ids: &[u32],
    grad: &[f64],
    hess: &[f64],
    depth: usize,
    cfg: &GbdtConfig,
    rng: &mut StdRng,
) -> RegNode {
    let sum_g: f64 = ids.iter().map(|&i| grad[i as usize]).sum();
    let sum_h: f64 = ids.iter().map(|&i| hess[i as usize]).sum();
    let leaf = || RegNode::Leaf { value: sum_g / (sum_h + 1e-9) };
    if depth >= cfg.max_depth || row_u32(ids.len()) < 2 * cfg.min_samples_leaf {
        return leaf();
    }

    // Gain of splitting: standard XGBoost-style score without
    // regularization terms.
    let score = |g: f64, h: f64| g * g / (h + 1e-9);
    let parent_score = score(sum_g, sum_h);

    let p = data.num_attributes();
    let mut attrs: Vec<u16> = (0..code_u16(p)).collect();
    attrs.shuffle(rng);
    attrs.truncate(cfg.max_features.unwrap_or(p).clamp(1, p));

    let mut best: Option<(f64, u16, u16)> = None;
    for &attr in &attrs {
        let card = data
            .schema()
            .attribute(attr as usize)
            .map(|a| a.cardinality() as usize)
            .unwrap_or(0);
        // Per-code gradient/hessian/count histogram.
        let mut hist = vec![(0.0f64, 0.0f64, 0u32); card];
        let column = data.column(attr as usize);
        for &i in ids {
            let c = column[i as usize] as usize;
            hist[c].0 += grad[i as usize];
            hist[c].1 += hess[i as usize];
            hist[c].2 += 1;
        }
        let (mut gl, mut hl, mut nl) = (0.0, 0.0, 0u32);
        for (cut, &(g, h, n_bucket)) in
            hist.iter().enumerate().take(card.saturating_sub(1))
        {
            gl += g;
            hl += h;
            nl += n_bucket;
            let nr = row_u32(ids.len()) - nl;
            if nl < cfg.min_samples_leaf || nr < cfg.min_samples_leaf {
                continue;
            }
            let gain =
                score(gl, hl) + score(sum_g - gl, sum_h - hl) - parent_score;
            if best.map(|(bg, _, _)| gain > bg + 1e-12).unwrap_or(gain > 1e-12) {
                best = Some((gain, attr, code_u16(cut)));
            }
        }
    }

    match best {
        None => leaf(),
        Some((_, attr, threshold)) => {
            let column = data.column(attr as usize);
            let (left_ids, right_ids): (Vec<u32>, Vec<u32>) =
                ids.iter().partition(|&&i| column[i as usize] <= threshold);
            RegNode::Split {
                attr,
                threshold,
                left: Box::new(build_reg_node(
                    data, &left_ids, grad, hess, depth + 1, cfg, rng,
                )),
                right: Box::new(build_reg_node(
                    data, &right_ids, grad, hess, depth + 1, cfg, rng,
                )),
            }
        }
    }
}

/// A gradient-boosted tree ensemble for binary classification.
#[derive(Debug, Clone, PartialEq)]
pub struct Gbdt {
    base_score: f64,
    trees: Vec<RegNode>,
    config: GbdtConfig,
    n_instances: u32,
}

impl Gbdt {
    /// Fits on all rows of `data`.
    pub fn fit(data: &Dataset, config: GbdtConfig) -> Self {
        Self::fit_on(data, data.all_row_ids(), config)
    }

    /// Fits on the rows `ids` of `data`.
    pub fn fit_on(data: &Dataset, ids: Vec<u32>, config: GbdtConfig) -> Self {
        let n = data.num_rows();
        let labels = data.labels();
        let pos = ids.iter().filter(|&&i| labels[i as usize]).count() as f64;
        let rate = (pos / ids.len().max(1) as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (rate / (1.0 - rate)).ln();

        let mut margin = vec![base_score; n];
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];
        // fume-lint: allow(F003) -- seed provenance: taken directly from GbdtConfig::seed, so boosting is reproducible per config
    let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.n_rounds);
        for _ in 0..config.n_rounds {
            for &i in &ids {
                let p = sigmoid(margin[i as usize]);
                let y = f64::from(u8::from(labels[i as usize]));
                grad[i as usize] = y - p;
                hess[i as usize] = p * (1.0 - p);
            }
            let tree = build_reg_node(data, &ids, &grad, &hess, 0, &config, &mut rng);
            for &i in &ids {
                margin[i as usize] +=
                    config.learning_rate * tree.predict(data, i as usize);
            }
            trees.push(tree);
        }
        Self { base_score, trees, config, n_instances: row_u32(ids.len()) }
    }

    /// Number of training instances.
    pub fn num_instances(&self) -> u32 {
        self.n_instances
    }

    /// The configuration.
    pub fn config(&self) -> &GbdtConfig {
        &self.config
    }

    /// Number of boosted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for Gbdt {
    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        (0..data.num_rows())
            .map(|row| {
                let margin: f64 = self.base_score
                    + self.config.learning_rate
                        * self
                            .trees
                            .iter()
                            .map(|t| t.predict(data, row))
                            .sum::<f64>();
                sigmoid(margin)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    #[test]
    fn gbdt_learns_the_toy_task() {
        let (data, _) = planted_toy().generate_full(61).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 61).unwrap();
        let model = Gbdt::fit(&train, GbdtConfig::default());
        let acc = model.accuracy(&test);
        let majority = test.base_rate().max(1.0 - test.base_rate());
        assert!(acc > majority + 0.03, "acc {acc} vs majority {majority}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, _) = planted_toy().generate_scaled(0.2, 62).unwrap();
        let a = Gbdt::fit(&data, GbdtConfig::default());
        let b = Gbdt::fit(&data, GbdtConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn fit_on_subset_ignores_other_rows() {
        let (data, _) = planted_toy().generate_scaled(0.2, 63).unwrap();
        let half: Vec<u32> = (0..(data.num_rows() / 2) as u32).collect();
        let model = Gbdt::fit_on(&data, half.clone(), GbdtConfig::default());
        assert_eq!(model.num_instances() as usize, half.len());
        assert_eq!(model.num_trees(), GbdtConfig::default().n_rounds);
        for p in model.predict_proba(&data) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let (data, _) = planted_toy().generate_scaled(0.1, 64).unwrap();
        let positives: Vec<u32> = (0..data.num_rows() as u32)
            .filter(|&r| data.label(r as usize))
            .collect();
        let model = Gbdt::fit_on(&data, positives, GbdtConfig::default());
        for p in model.predict_proba(&data) {
            assert!(p > 0.9, "{p}");
        }
    }

    #[test]
    fn more_rounds_fit_training_data_better() {
        let (data, _) = planted_toy().generate_scaled(0.3, 65).unwrap();
        let short = Gbdt::fit(&data, GbdtConfig { n_rounds: 3, ..GbdtConfig::default() });
        let long = Gbdt::fit(&data, GbdtConfig { n_rounds: 80, ..GbdtConfig::default() });
        assert!(long.accuracy(&data) >= short.accuracy(&data));
    }
}
