//! Incremental *addition* of training instances — the other half of the
//! DaRE paper's adaptivity (deletions and additions share the same
//! statistics machinery).
//!
//! Insertion mirrors deletion top-down:
//! * decision nodes absorb the new instances into their cached counts;
//! * a greedy node rebuilds its subtree when some cached candidate now has
//!   a strictly better Gini gain than the chosen split (the same
//!   criterion deletion uses);
//! * a leaf that the builder would now have split (big enough, impure,
//!   depth available) is rebuilt into a subtree.
//!
//! One documented approximation: random upper-layer nodes keep their
//! threshold even when new instances extend an attribute's observed
//! range, so the threshold's distribution can become slightly stale under
//! heavy insertion (deletion does not have this issue — an emptied side
//! always triggers a redraw). Greedy nodes, which carry all predictive
//! structure, are re-checked exactly.

use fume_tabular::cast::row_u32;
use fume_tabular::rng::StdRng;
use fume_tabular::Dataset;

use crate::builder::{build_node, partition};
use crate::config::DareConfig;
use crate::node::{Internal, Node};

/// Counters describing what one insertion did to a tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertReport {
    /// Decision nodes whose statistics were updated in place.
    pub nodes_updated: usize,
    /// Subtrees (including grown leaves) that were rebuilt.
    pub subtrees_rebuilt: usize,
    /// Leaves that absorbed instances without structural change.
    pub leaves_updated: usize,
}

impl InsertReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: &InsertReport) {
        self.nodes_updated += other.nodes_updated;
        self.subtrees_rebuilt += other.subtrees_rebuilt;
        self.leaves_updated += other.leaves_updated;
    }
}

/// Whether the builder would split a leaf with these statistics at `depth`.
fn leaf_should_split(n: u32, n_pos: u32, depth: usize, cfg: &DareConfig) -> bool {
    n >= cfg.min_samples_split && n_pos > 0 && n_pos < n && depth < cfg.max_depth
}

/// Inserts the sorted id set `ins` into the subtree rooted at `node`.
pub(crate) fn insert_into_node(
    node: &mut Node,
    ins: &[u32],
    data: &Dataset,
    depth: usize,
    rng: &mut StdRng,
    cfg: &DareConfig,
    report: &mut InsertReport,
) {
    if ins.is_empty() {
        return;
    }
    let labels = data.labels();
    let ins_pos = row_u32(ins.iter().filter(|&&id| labels[id as usize]).count());

    match node {
        Node::Leaf(leaf) => {
            leaf.ids.extend_from_slice(ins);
            leaf.n_pos += ins_pos;
            let (n, n_pos) = (row_u32(leaf.ids.len()), leaf.n_pos);
            if leaf_should_split(n, n_pos, depth, cfg) {
                let ids = std::mem::take(&mut leaf.ids);
                *node = build_node(data, ids, depth, rng, cfg);
                report.subtrees_rebuilt += usize::from(matches!(node, Node::Internal(_)));
                report.leaves_updated += usize::from(matches!(node, Node::Leaf(_)));
            } else {
                report.leaves_updated += 1;
            }
        }
        Node::Internal(internal) => {
            internal.n += row_u32(ins.len());
            internal.n_pos += ins_pos;
            report.nodes_updated += 1;

            let (ins_left, ins_right) =
                partition(data, ins, internal.attr, internal.threshold);

            if !internal.is_random {
                update_candidates_add(internal, ins, data);
                if greedy_split_beaten_after_insert(internal, cfg) {
                    let mut ids = Vec::with_capacity(internal.n as usize);
                    internal.left.collect_ids(&mut ids);
                    internal.right.collect_ids(&mut ids);
                    ids.extend_from_slice(ins);
                    *node = build_node(data, ids, depth, rng, cfg);
                    report.subtrees_rebuilt += 1;
                    return;
                }
            }

            insert_into_node(&mut internal.left, &ins_left, data, depth + 1, rng, cfg, report);
            insert_into_node(&mut internal.right, &ins_right, data, depth + 1, rng, cfg, report);
        }
    }
}

fn update_candidates_add(internal: &mut Internal, ins: &[u32], data: &Dataset) {
    let labels = data.labels();
    for cand in &mut internal.candidates {
        let column = data.column(cand.attr as usize);
        for &id in ins {
            if column[id as usize] <= cand.threshold {
                cand.n_left += 1;
                cand.n_left_pos += u32::from(labels[id as usize]);
            }
        }
    }
}

fn greedy_split_beaten_after_insert(internal: &Internal, cfg: &DareConfig) -> bool {
    use crate::builder::{best_candidate, candidate_valid, GAIN_EPS};
    use crate::gini::gini_gain;
    let chosen = &internal.candidates[internal.chosen as usize];
    if !candidate_valid(chosen, internal.n, cfg) {
        // Insertion only grows counts, but a chosen candidate can violate
        // the leaf minimum transiently if min_samples_leaf semantics
        // change; treat defensively.
        return true;
    }
    let chosen_gain =
        gini_gain(internal.n, internal.n_pos, chosen.n_left, chosen.n_left_pos);
    match best_candidate(&internal.candidates, internal.n, internal.n_pos, cfg) {
        None => true,
        Some(best) => {
            let b = &internal.candidates[best];
            gini_gain(internal.n, internal.n_pos, b.n_left, b.n_left_pos)
                > chosen_gain + GAIN_EPS
        }
    }
}

/// Dedicated leaf used when a forest is fitted on zero rows and instances
/// arrive later.
#[cfg(test)]
pub(crate) fn empty_leaf() -> Node {
    Node::Leaf(crate::node::Leaf { ids: Vec::new(), n_pos: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MaxFeatures;
    use crate::validate::validate_tree;
    use crate::DareTree;
    use fume_tabular::datasets::planted_toy;

    fn cfg() -> DareConfig {
        DareConfig {
            max_depth: 7,
            random_depth: 1,
            max_features: MaxFeatures::All,
            n_trees: 1,
            ..DareConfig::default()
        }
    }

    #[test]
    fn inserting_held_out_rows_keeps_statistics_exact() {
        let (data, _) = planted_toy().generate_scaled(0.2, 71).unwrap();
        let half: Vec<u32> = (0..(data.num_rows() / 2) as u32).collect();
        let rest: Vec<u32> = ((data.num_rows() / 2) as u32..data.num_rows() as u32).collect();
        let mut tree = DareTree::fit(&data, half, &cfg(), 71);
        let report = tree.insert(&rest, &data, &cfg());
        assert_eq!(tree.num_instances() as usize, data.num_rows());
        assert!(report.nodes_updated + report.leaves_updated > 0);
        let v = validate_tree(&tree, &data, &cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn leaves_split_as_they_grow() {
        let (data, _) = planted_toy().generate_scaled(0.25, 72).unwrap();
        // Start from a tiny seed set: mostly leaves.
        let seed_ids: Vec<u32> = (0..4).collect();
        let mut tree = DareTree::fit(&data, seed_ids, &cfg(), 72);
        let depth_before = tree.root().depth();
        let rest: Vec<u32> = (4..data.num_rows() as u32).collect();
        let report = tree.insert(&rest, &data, &cfg());
        assert!(report.subtrees_rebuilt > 0, "growth must split leaves");
        assert!(tree.root().depth() >= depth_before);
        let v = validate_tree(&tree, &data, &cfg());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn delete_then_insert_roundtrip_stays_valid() {
        let (data, _) = planted_toy().generate_scaled(0.2, 73).unwrap();
        let mut tree = DareTree::fit(&data, data.all_row_ids(), &cfg(), 73);
        let batch: Vec<u32> = (50..120).collect();
        tree.delete(&batch, &data, &cfg());
        tree.insert(&batch, &data, &cfg());
        assert_eq!(tree.num_instances() as usize, data.num_rows());
        let v = validate_tree(&tree, &data, &cfg());
        assert!(v.is_empty(), "{v:?}");
        // Roundtrip preserves the *id set* (the model itself may differ in
        // structure — both are draws from the same distribution).
        assert_eq!(tree.instance_ids(), data.all_row_ids());
    }

    #[test]
    fn empty_leaf_accepts_first_instances() {
        let (data, _) = planted_toy().generate_scaled(0.1, 74).unwrap();
        let mut node = empty_leaf();
        let mut rng = fume_tabular::rng::SeedableRng::seed_from_u64(74);
        let mut report = InsertReport::default();
        let ids: Vec<u32> = (0..40).collect();
        insert_into_node(&mut node, &ids, &data, 0, &mut rng, &cfg(), &mut report);
        assert_eq!(node.n(), 40);
    }
}
