//! Opt-in deep invariant checking (`FUME_DEEPCHECK=1`).
//!
//! The journal/rollback engine trades a full forest clone for an undo
//! log, which makes its correctness *load-bearing*: a single missed
//! [`UndoRecord`](crate::journal::UndoRecord) silently corrupts every ρ
//! score computed after the bad rollback. This module wires
//! [`validate::validate_forest`](crate::validate::validate_forest) into
//! the mutation hot path as an opt-in gate: with the `FUME_DEEPCHECK`
//! environment variable set to `1` (or `true`), debug and test builds
//! re-validate the full forest after every journaled delete and every
//! rollback, panicking with the violation list on the first
//! inconsistency.
//!
//! Release builds compile the check to a no-op regardless of the
//! environment, so production attribution runs pay nothing.

use fume_tabular::Dataset;

use crate::forest::DareForest;

/// Whether deep checking is enabled for this process.
///
/// Reads `FUME_DEEPCHECK` once and caches the answer: the gate sits on
/// the unlearning hot path, where even a `getenv` per delete would be
/// measurable. Always `false` in release builds.
#[inline]
pub fn enabled() -> bool {
    if cfg!(debug_assertions) {
        use std::sync::OnceLock;
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| {
            matches!(
                std::env::var("FUME_DEEPCHECK").as_deref(),
                Ok("1") | Ok("true") | Ok("TRUE")
            )
        })
    } else {
        false
    }
}

/// Validates `forest` against `data` if deep checking is enabled,
/// panicking with every violation when the forest is inconsistent.
///
/// `context` names the operation that just mutated the forest (e.g.
/// `"delete_journaled"`, `"rollback"`) so a failure pinpoints the
/// offending mutation, not just the detecting call site.
#[inline]
pub fn check_forest(forest: &DareForest, data: &Dataset, context: &str) {
    if !enabled() {
        return;
    }
    let violations = crate::validate::validate_forest(forest, data);
    fume_obs::counter!("forest.deepcheck_runs", 1);
    assert!(
        violations.is_empty(),
        "FUME_DEEPCHECK: forest inconsistent after {context}: {violations:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_is_stable_across_calls() {
        // Whatever the ambient environment says, the cached answer must
        // not flip between reads (OnceLock semantics).
        assert_eq!(enabled(), enabled());
    }
}
