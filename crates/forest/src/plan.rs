//! The flattened prediction plan: a read-optimized arena compiled from a
//! deployed [`DareForest`], plus the blocked batch-traversal kernel that
//! replaces the pointer walk in full prediction passes.
//!
//! A [`DareForest`] is built to *mutate*: every node carries the cached
//! statistics exact unlearning needs, children live behind `Box`es, and a
//! prediction walk chases one heap pointer per level. That layout is right
//! for `delete`/`insert` and wrong for the full passes FUME's pipeline
//! keeps paying — routing-index builds, baseline scoring, serve cold
//! paths — where the *same* static structure is traversed for thousands
//! of rows. DaRE-style systems (Brophy & Lowd; DynFrs) keep the mutable
//! training structure and serve inference from a compact read-only copy;
//! [`PredictPlan`] is that copy.
//!
//! ## Layout
//!
//! Each tree is flattened **preorder** into an arena of 16-byte packed
//! nodes — feature id, threshold, both child slots, and the leaf
//! probability — with node addresses in a parallel side array (cold data
//! for patching and routing only; the kernel never touches it). Preorder
//! gives two structural invariants the whole module leans on:
//!
//! * a node's **left child is the next slot** (`i + 1`) — stored anyway
//!   as `kids[0]` so a traversal step selects its successor by *indexing*
//!   (`kids[go_right]`), never by branching on the split direction;
//! * a **subtree occupies one contiguous range** `i..subtree_end(i)`, and
//!   no pointer from outside that range targets its interior — which is
//!   what makes cone splicing (below) a local operation.
//!
//! A **leaf points both children at itself**, so stepping a row that has
//! already landed is a harmless self-loop. That makes every descent a
//! fixed-length loop (the tree's maximum leaf depth) with *no data-
//! dependent branches at all*: split directions are coin flips that a
//! branch predictor loses every other step, so the kernel replaces the
//! leaf test and the direction jump with indexed loads.
//!
//! ## The kernel
//!
//! [`PredictPlan::predict_into`] processes rows in blocks, trees-outer /
//! rows-inner within each block, accumulating per-row sums and dividing
//! once — the **exact float sequence** of [`DareForest::predict_row`], so
//! plan predictions are bitwise identical to the pointer walk (not merely
//! close). Within a tree the kernel descends [`LANES`](self) rows at
//! once: one row's walk is a serial chain of dependent loads (node →
//! feature code → compare → child slot → next node), so a single descent
//! is latency-bound at roughly a dozen cycles per level no matter how the
//! node is packed. Eight *independent* descents in flight overlap those
//! chains and turn the walk throughput-bound — this, not the flat layout
//! alone, is where the speedup over the pointer walk comes from (the
//! pointer walk cannot interleave: each step chases a heap pointer and
//! the borrow of one tree's `Box` chain pins the whole traversal order).
//! `FUME_DEEPCHECK=1` cross-checks the bitwise claim per full pass in
//! debug builds, and `benches/predict_kernel.rs` asserts it at bench
//! scale before comparing speed.
//!
//! ## Staying coherent under unlearning
//!
//! The plan describes the forest *as compiled*. A journaled deletion
//! invalidates only what its [`UndoJournal`] proves it touched:
//! `InternalStats`/`Candidates` records never change the `(attr,
//! threshold)` pair a walk consults, a `Leaf` record changes one stored
//! probability in place, and a `Subtree` record replaces one contiguous
//! arena cone. [`PredictPlan::patch`] therefore re-reads exactly those
//! cones from the mutated forest, and [`PredictPlan::patch_cones`]
//! replays the same cone set after a rollback — each patch is
//! proportional to the edit, not to the forest. `plan.recompile` spans
//! and the `fume.plan.{compiles,cone_patches,bytes}` counters make the
//! compile/patch cost visible (see `docs/observability.md`).

use fume_tabular::{Classifier, Dataset};

use crate::forest::DareForest;
use crate::journal::{NodePath, UndoJournal, UndoRecord};
use crate::node::Node;

/// Rows per traversal block in [`PredictPlan::predict_into`]: the block's
/// accumulator (2 KiB of `f64`) stays L1-resident across all trees, while
/// each tree's arena stays hot across all rows of the block.
pub const BLOCK_ROWS: usize = 256;

/// Interleaved descents per kernel step: enough independent load chains
/// to keep the memory ports busy while each chain waits out its own
/// latency, few enough that the lane state stays in registers.
const LANES: usize = 8;

/// Full passes over at least this many rows route through a compiled
/// [`PredictPlan`] in [`DareForest::predict_proba`]; smaller passes walk
/// the pointer structure directly, where a compile would cost more than
/// it saves. Purely a performance threshold — both paths are bitwise
/// identical.
pub const PLAN_FULL_PASS_MIN_ROWS: usize = 512;

/// An arena index as `u32` — the plan-side sibling of
/// [`fume_tabular::cast::row_u32`]: arena sizes are bounded by node
/// counts, which the builder bounds by instance counts, which dataset
/// construction bounds to the `u32` row universe.
fn node_u32(i: usize) -> u32 {
    // fume-lint: allow(F001) -- audited narrowing: arena node counts are bounded by training-instance counts, which dataset construction caps at u32
    i.try_into().expect("plan arena exceeds the u32 node universe")
}

/// One arena slot: everything a traversal step consults, packed into 16
/// bytes (4 nodes per cache line). A leaf is any slot whose children
/// point back at itself — there is no sentinel feature, so a leaf's
/// `feat`/`thresh` are inert but *safe* to consult, and the kernel never
/// needs a leaf test.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct PackedNode {
    /// Splitting attribute; 0 (an ordinary, valid column) at leaves —
    /// harmless because both children loop back to the leaf itself.
    feat: u16,
    /// Split threshold (`code <= thresh` goes left); 0 at leaves.
    thresh: u16,
    /// Child slots, `kids[0]` left / `kids[1]` right, so a step is
    /// `kids[go_right]` — an indexed load, not a conditional jump. At a
    /// leaf both entries hold the leaf's own slot (the self-loop).
    kids: [u32; 2],
    /// Leaf probability; 0.0 at internal nodes. Embedded in the node so
    /// the terminal read of a walk comes from the line the final step
    /// already loaded.
    proba: f64,
}

/// One tree flattened into a preorder struct-of-arrays arena.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct TreePlan {
    /// The hot array: one packed node per slot, in preorder.
    nodes: Vec<PackedNode>,
    /// Each slot's address in the pointer tree — cold data for
    /// journal-driven invalidation and the routing index; the kernel
    /// never touches it.
    path: Vec<NodePath>,
    /// Maximum leaf depth: the fixed step count that lands *every* row on
    /// its leaf (shallower rows self-loop for the remaining steps).
    steps: u32,
}

impl TreePlan {
    fn from_root(root: &Node) -> Self {
        let n = root.size();
        let mut plan = Self {
            nodes: Vec::with_capacity(n),
            path: Vec::with_capacity(n),
            steps: 0,
        };
        plan.flatten(root, NodePath::ROOT);
        plan.steps = plan.max_depth();
        plan
    }

    /// Appends `node`'s subtree in preorder. The left child lands at the
    /// next slot (`kids[0]` is known immediately); the right child slot
    /// is patched in once the left subtree's extent is known. Leaves
    /// self-loop: both children point back at the leaf's own slot.
    fn flatten(&mut self, node: &Node, path: NodePath) {
        match node {
            Node::Leaf(leaf) => {
                let slot = node_u32(self.nodes.len());
                self.nodes.push(PackedNode {
                    feat: 0,
                    thresh: 0,
                    kids: [slot, slot],
                    proba: leaf.proba(),
                });
                self.path.push(path);
            }
            Node::Internal(internal) => {
                let slot = self.nodes.len();
                self.nodes.push(PackedNode {
                    feat: internal.attr,
                    thresh: internal.threshold,
                    kids: [node_u32(slot + 1), 0],
                    proba: 0.0,
                });
                self.path.push(path);
                self.flatten(&internal.left, path.child(false));
                self.nodes[slot].kids[1] = node_u32(self.nodes.len());
                self.flatten(&internal.right, path.child(true));
            }
        }
    }

    /// Whether arena slot `i` is a leaf — the self-loop test.
    #[inline]
    fn is_leaf(&self, i: usize) -> bool {
        self.nodes[i].kids[0] as usize == i
    }

    /// Maximum leaf depth, from the recorded pointer-tree addresses.
    fn max_depth(&self) -> u32 {
        self.path.iter().map(|p| u32::from(p.depth())).max().unwrap_or(0)
    }

    /// Positive-class probability of `row` — the arena twin of
    /// [`Node::predict_row`], bit for bit. Runs the fixed-length
    /// branch-free descent: exactly [`Self::steps`] indexed steps (a row
    /// that lands early self-loops on its leaf), then one probability
    /// read. No leaf test, no direction branch.
    #[inline]
    pub(crate) fn predict_row(&self, data: &Dataset, row: usize) -> f64 {
        let mut i = 0usize;
        for _ in 0..self.steps {
            let node = &self.nodes[i];
            let go = usize::from(data.code(row, node.feat as usize) > node.thresh);
            i = node.kids[go] as usize;
        }
        self.nodes[i].proba
    }

    /// Descends [`LANES`] consecutive rows (`first_row..first_row +
    /// LANES`) through this tree at once, returning their leaf
    /// probabilities. Each lane's walk is a serial chain of dependent
    /// loads; running the lanes in lockstep keeps that many independent
    /// chains in flight, which is what makes the kernel faster than any
    /// single-row walk can be. The self-looping leaves make lockstep
    /// trivially correct: lanes that land early just spin in place.
    #[inline]
    fn predict_lanes(&self, data: &Dataset, first_row: usize) -> [f64; LANES] {
        let mut idx = [0usize; LANES];
        for _ in 0..self.steps {
            for (lane, i) in idx.iter_mut().enumerate() {
                let node = &self.nodes[*i];
                let code = data.code(first_row + lane, node.feat as usize);
                *i = node.kids[usize::from(code > node.thresh)] as usize;
            }
        }
        let mut out = [0.0; LANES];
        for (lane, i) in idx.iter().enumerate() {
            out[lane] = self.nodes[*i].proba;
        }
        out
    }

    /// Arena slot of the leaf `row` lands in.
    #[inline]
    pub(crate) fn route_row(&self, data: &Dataset, row: usize) -> usize {
        let mut i = 0usize;
        for _ in 0..self.steps {
            let node = &self.nodes[i];
            let go = usize::from(data.code(row, node.feat as usize) > node.thresh);
            i = node.kids[go] as usize;
        }
        i
    }

    /// The leaf probability stored at `slot`.
    #[inline]
    pub(crate) fn proba_of(&self, slot: usize) -> f64 {
        self.nodes[slot].proba
    }

    /// The pointer-tree address of `slot`.
    #[inline]
    pub(crate) fn path_of(&self, slot: usize) -> NodePath {
        self.path[slot]
    }

    /// Number of arena slots.
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Arena slot of the node at `path`, walking the recorded step bits.
    /// `path` must address a node of this tree (journal paths always do:
    /// they were recorded while descending the same structure).
    fn locate(&self, path: NodePath) -> usize {
        let mut i = 0usize;
        for step in 0..path.depth() {
            debug_assert!(!self.is_leaf(i), "plan path descends through a leaf");
            i = self.nodes[i].kids[(path.bits() >> step & 1) as usize] as usize;
        }
        i
    }

    /// One past the last slot of the subtree rooted at `i`: preorder puts
    /// a subtree in the contiguous range `i..subtree_end(i)`, and the
    /// rightmost descent from `i` reaches its last slot (a self-looping
    /// leaf, where the descent sticks).
    fn subtree_end(&self, i: usize) -> usize {
        let mut j = i;
        while self.nodes[j].kids[1] as usize != j {
            j = self.nodes[j].kids[1] as usize;
        }
        j + 1
    }

    /// Replaces the cone rooted at `root` with a fresh flattening of the
    /// same address in `tree_root` (the live pointer tree), shifting the
    /// child slots of every surviving node that points past the cone.
    /// Cost is proportional to the cone plus one linear slot fixup — the
    /// rest of the arena is untouched. The caller refreshes
    /// [`Self::steps`] once all of a tree's cones are in (a rebuilt cone
    /// can change the tree's depth).
    fn splice_cone(&mut self, root: NodePath, tree_root: &Node) {
        let i = self.locate(root);
        let old_end = self.subtree_end(i);
        let mut frag = TreePlan::default();
        frag.flatten(root.locate(tree_root), root);
        let new_end = i + frag.nodes.len();
        // Rebase the fragment's child slots from fragment-relative to
        // arena-absolute (this also moves leaf self-loops to their final
        // slots — a fragment leaf at fragment slot `j` lands at `i + j`).
        for node in &mut frag.nodes {
            node.kids = node.kids.map(|k| node_u32(k as usize + i));
        }
        // Preorder guarantees no slot from outside the cone targets its
        // interior: the only external references are the parent's child
        // slot aimed at the cone root itself (slot `i`, unchanged) and
        // slots at `old_end` or beyond, which shift by the cone's size
        // delta (a surviving leaf's self-loop shifts with its own slot).
        for (j, node) in self.nodes.iter_mut().enumerate() {
            if j >= i && j < old_end {
                continue; // discarded with the old cone
            }
            for kid in &mut node.kids {
                let target = *kid as usize;
                debug_assert!(
                    target <= i || target >= old_end,
                    "external child slot into a cone interior"
                );
                if target >= old_end {
                    *kid = node_u32(target - old_end + new_end);
                }
            }
        }
        self.nodes.splice(i..old_end, frag.nodes);
        self.path.splice(i..old_end, frag.path);
    }

    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.len() * (size_of::<PackedNode>() + size_of::<NodePath>())
    }
}

/// An immutable, cache-friendly prediction kernel compiled from a
/// deployed [`DareForest`]: per-tree preorder struct-of-arrays arenas
/// plus a blocked batch-traversal pass that is bitwise identical to the
/// pointer walk (see the [module docs](self) for the layout and the
/// float-order argument).
///
/// ```
/// use fume_forest::{DareConfig, DareForest, PredictPlan};
/// use fume_tabular::datasets::planted_toy;
/// use fume_tabular::Classifier;
///
/// let (data, _) = planted_toy().generate_scaled(0.2, 7).unwrap();
/// let forest = DareForest::fit(&data, DareConfig::small(7));
/// let plan = PredictPlan::compile(&forest);
/// let fast = plan.predict_proba(&data);
/// for (row, p) in fast.iter().enumerate() {
///     assert_eq!(p.to_bits(), forest.predict_row(&data, row).to_bits());
/// }
/// ```
///
/// The plan describes the forest as it was at [`Self::compile`] (or last
/// patch) time. After `delete_journaled`, call [`Self::patch`] with the
/// journal; after the matching `rollback`, replay the returned
/// [`PlanCones`] with [`Self::patch_cones`]. Destructive deletes and
/// inserts have no journal — recompile after those.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictPlan {
    trees: Vec<TreePlan>,
}

impl PredictPlan {
    /// Flattens every tree of `forest` into its arena form. Emits a
    /// `plan.recompile` span and the `fume.plan.compiles` /
    /// `fume.plan.bytes` counters.
    pub fn compile(forest: &DareForest) -> Self {
        let _span = fume_obs::span!(
            "plan.recompile",
            trees = forest.trees().len(),
            full = true
        );
        let trees: Vec<TreePlan> =
            forest.trees().iter().map(|t| TreePlan::from_root(t.root())).collect();
        let plan = Self { trees };
        fume_obs::counter!("fume.plan.compiles", 1);
        fume_obs::counter!("fume.plan.bytes", plan.approx_bytes());
        plan
    }

    /// Number of flattened trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total arena slots across all trees (internal nodes plus leaves).
    pub fn num_nodes(&self) -> usize {
        self.trees.iter().map(TreePlan::len).sum()
    }

    /// Rough arena footprint in bytes (what `fume.plan.bytes` reports).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.trees.iter().map(TreePlan::approx_bytes).sum::<usize>()
    }

    /// The per-tree arenas, for consumers that need per-tree routing
    /// (the routing index reads leaf addresses and probabilities straight
    /// out of the arena).
    pub(crate) fn tree_plans(&self) -> &[TreePlan] {
        &self.trees
    }

    /// The blocked batch kernel: fills `out[row]` with the ensemble
    /// probability of every row of `data`, in blocks of [`BLOCK_ROWS`],
    /// trees-outer / rows-inner within each block — the exact
    /// accumulate-then-divide float order of [`DareForest::predict_row`],
    /// so the result is bitwise identical to the pointer walk. Emits a
    /// `plan.predict_block` span per pass.
    ///
    /// # Panics
    /// If `out.len() != data.num_rows()`.
    pub fn predict_into(&self, data: &Dataset, out: &mut [f64]) {
        assert_eq!(out.len(), data.num_rows(), "output slice must cover every row");
        if self.trees.is_empty() {
            // The empty ensemble is maximally uncertain, matching
            // `DareForest::predict_row`.
            out.fill(0.5);
            return;
        }
        let _span = fume_obs::span!(
            "plan.predict_block",
            rows = out.len(),
            trees = self.trees.len()
        );
        let k = self.trees.len() as f64;
        let mut start = 0usize;
        while start < data.num_rows() {
            let end = (start + BLOCK_ROWS).min(data.num_rows());
            let block = &mut out[start..end];
            block.fill(0.0);
            for tree in &self.trees {
                // Interleaved descents in LANES-row groups; the block
                // tail (and any short block) falls back to the scalar
                // walk, which lands on the same leaf and reads the same
                // probability — per-row sums stay one addend per tree in
                // tree order either way, so the interleave cannot
                // perturb the float sequence.
                let mut off = 0usize;
                while off + LANES <= block.len() {
                    let probas = tree.predict_lanes(data, start + off);
                    for (slot, p) in block[off..off + LANES].iter_mut().zip(probas) {
                        *slot += p;
                    }
                    off += LANES;
                }
                for (rest, slot) in block[off..].iter_mut().enumerate() {
                    *slot += tree.predict_row(data, start + off + rest);
                }
            }
            for slot in block.iter_mut() {
                *slot /= k;
            }
            start = end;
        }
    }

    /// Re-reads from `forest` exactly the arena cones a journaled
    /// deletion invalidated — edited leaves in place, rebuilt subtrees by
    /// splice — and returns the cone set so the caller can replay it
    /// after the matching rollback. `forest` must be the forest the
    /// journal's deletion just mutated (e.g. the scratch forest between
    /// `delete_journaled` and `rollback`); `journal` must come from a
    /// forest this plan was compiled from.
    ///
    /// Emits a `plan.recompile` span (field `cones`) and the
    /// `fume.plan.cone_patches` counter. Under `FUME_DEEPCHECK=1` the
    /// patched plan is verified equal to a fresh compile.
    ///
    /// # Panics
    /// If the journal's tree count disagrees with the plan's.
    pub fn patch(&mut self, journal: &UndoJournal, forest: &DareForest) -> PlanCones {
        assert!(
            journal.trees.is_empty() || journal.trees.len() == self.trees.len(),
            "journal covers {} trees but the plan covers {}",
            journal.trees.len(),
            self.trees.len()
        );
        let cones = Self::cones_of(journal);
        self.apply_cones(&cones, forest);
        cones
    }

    /// Replays a cone set from [`Self::patch`] against the forest's
    /// *current* nodes — the rollback twin: `rollback(journal)` consumes
    /// the journal, so the caller keeps the [`PlanCones`] and re-reads
    /// the same regions once the forest is restored, returning the plan
    /// to its pre-delete arena bit for bit.
    pub fn patch_cones(&mut self, cones: &PlanCones, forest: &DareForest) {
        self.apply_cones(cones, forest);
    }

    /// Derives the invalidated cone set from a journal's records:
    /// `Subtree` roots name rebuilt cones, `Leaf` paths name in-place
    /// probability edits (dropped when covered by a rebuilt cone — the
    /// splice re-reads them anyway), and `InternalStats`/`Candidates`
    /// records are ignored because in-place statistic updates never touch
    /// the `(attr, threshold)` pair a walk consults.
    fn cones_of(journal: &UndoJournal) -> PlanCones {
        let mut rebuilt = Vec::with_capacity(journal.trees.len());
        let mut edited = Vec::with_capacity(journal.trees.len());
        for undo in &journal.trees {
            let mut roots: Vec<NodePath> = Vec::new();
            let mut leaves: Vec<NodePath> = Vec::new();
            for record in &undo.records {
                match record {
                    UndoRecord::Subtree { path, .. } => {
                        if !roots.contains(path) {
                            roots.push(*path);
                        }
                    }
                    UndoRecord::Leaf { path, .. } => {
                        if !leaves.contains(path) {
                            leaves.push(*path);
                        }
                    }
                    UndoRecord::InternalStats { .. } | UndoRecord::Candidates { .. } => {}
                }
            }
            // A leaf edit under a rebuilt cone no longer exists at its
            // recorded address (the journal invariant makes this rare:
            // a rebuild terminates the delete recursion, so records
            // below it come only from earlier recursion branches).
            leaves.retain(|&leaf| !roots.iter().any(|&root| leaf.descends_from(root)));
            rebuilt.push(roots);
            edited.push(leaves);
        }
        PlanCones { rebuilt, edited }
    }

    fn apply_cones(&mut self, cones: &PlanCones, forest: &DareForest) {
        debug_assert_eq!(forest.trees().len(), self.trees.len(), "forest/plan shape");
        let n = cones.num_cones();
        fume_obs::counter!("fume.plan.cone_patches", n);
        if n == 0 {
            return;
        }
        let _span = fume_obs::span!("plan.recompile", cones = n);
        for (t, plan) in self.trees.iter_mut().enumerate() {
            let rebuilt = cones.rebuilt.get(t).map_or(&[][..], Vec::as_slice);
            let edited = cones.edited.get(t).map_or(&[][..], Vec::as_slice);
            if rebuilt.is_empty() && edited.is_empty() {
                continue;
            }
            let tree = &forest.trees()[t];
            for &root in rebuilt {
                plan.splice_cone(root, tree.root());
            }
            if !rebuilt.is_empty() {
                // A rebuilt cone can deepen or flatten the tree; the
                // fixed-step kernel must cover the new maximum depth.
                plan.steps = plan.max_depth();
            }
            for &leaf in edited {
                let i = plan.locate(leaf);
                debug_assert!(plan.is_leaf(i), "edited path addresses a leaf");
                plan.nodes[i].proba = tree.proba_at(leaf);
            }
        }
        if crate::deepcheck::enabled() {
            let fresh: Vec<TreePlan> =
                forest.trees().iter().map(|t| TreePlan::from_root(t.root())).collect();
            assert!(
                self.trees == fresh,
                "FUME_DEEPCHECK: patched plan diverged from a fresh compile"
            );
        }
    }
}

impl Classifier for PredictPlan {
    /// [`Self::predict_into`] against a fresh vector — so a compiled plan
    /// drops in anywhere a model is scored (`metric.bias(&plan, ..)`,
    /// `plan.accuracy(..)`).
    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        let mut out = vec![0.0f64; data.num_rows()];
        self.predict_into(data, &mut out);
        out
    }
}

/// The arena cones one journaled deletion invalidated, per tree — the
/// replayable half of [`PredictPlan::patch`]. Rollback consumes the
/// journal, so this is what survives to drive the post-rollback
/// [`PredictPlan::patch_cones`] re-read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanCones {
    /// `rebuilt[tree]`: rebuilt-subtree roots, deduplicated.
    rebuilt: Vec<Vec<NodePath>>,
    /// `edited[tree]`: in-place-edited leaves outside every rebuilt cone.
    edited: Vec<Vec<NodePath>>,
}

impl PlanCones {
    /// Whether the deletion invalidated nothing (an empty journal, or one
    /// with only in-place statistic records).
    pub fn is_empty(&self) -> bool {
        self.num_cones() == 0
    }

    /// Total invalidated cones across all trees (edited leaves plus
    /// rebuilt subtrees) — what `fume.plan.cone_patches` counts per
    /// patch.
    pub fn num_cones(&self) -> usize {
        self.rebuilt.iter().map(Vec::len).sum::<usize>()
            + self.edited.iter().map(Vec::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DareConfig;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    fn setup(seed: u64) -> (Dataset, Dataset, DareForest) {
        let (data, _) = planted_toy().generate_scaled(0.2, seed).unwrap();
        let (train, test) = train_test_split(&data, 0.3, seed).unwrap();
        let forest = DareForest::fit(&train, DareConfig::small(seed));
        (train, test, forest)
    }

    fn assert_bitwise(plan: &PredictPlan, forest: &DareForest, data: &Dataset) {
        let fast = plan.predict_proba(data);
        for (row, p) in fast.iter().enumerate() {
            assert_eq!(
                p.to_bits(),
                forest.predict_row(data, row).to_bits(),
                "row {row}"
            );
        }
    }

    #[test]
    fn compiled_plan_matches_the_pointer_walk_bitwise() {
        let (_, test, forest) = setup(51);
        let plan = PredictPlan::compile(&forest);
        assert_eq!(plan.num_trees(), forest.trees().len());
        let expected: usize = forest.trees().iter().map(|t| t.root().size()).sum();
        assert_eq!(plan.num_nodes(), expected);
        assert!(plan.approx_bytes() > 0);
        assert_bitwise(&plan, &forest, &test);
    }

    #[test]
    fn arena_structure_is_preorder_with_implicit_left_children() {
        let (_, test, forest) = setup(52);
        let plan = PredictPlan::compile(&forest);
        for tree in plan.tree_plans() {
            assert_eq!(tree.subtree_end(0), tree.len(), "root spans the arena");
            let mut deepest = 0u32;
            for i in 0..tree.len() {
                deepest = deepest.max(u32::from(tree.path[i].depth()));
                if tree.is_leaf(i) {
                    assert_eq!(tree.nodes[i].kids, [i as u32; 2], "leaf self-loops");
                } else {
                    let [l, r] = tree.nodes[i].kids.map(|k| k as usize);
                    // Left child is the next slot; the left subtree is
                    // exactly `i+1..r`, the right subtree `r..end`.
                    assert_eq!(l, i + 1);
                    assert_eq!(tree.subtree_end(l), r);
                    assert!(r > l && r < tree.subtree_end(i));
                    // The stored paths agree with the slot structure.
                    assert_eq!(tree.path[l], tree.path[i].child(false));
                    assert_eq!(tree.path[r], tree.path[i].child(true));
                }
                assert_eq!(tree.locate(tree.path[i]), i, "locate inverts path");
            }
            assert_eq!(tree.steps, deepest, "steps covers the deepest leaf");
        }
        // Routing lands on slots whose path/proba match the walk.
        for (t, tree) in forest.trees().iter().enumerate() {
            let arena = &plan.tree_plans()[t];
            for row in 0..test.num_rows() {
                let (path, proba) = tree.root().route_row(&test, row);
                let slot = arena.route_row(&test, row);
                assert_eq!(arena.path_of(slot), path);
                assert_eq!(arena.proba_of(slot).to_bits(), proba.to_bits());
            }
        }
    }

    #[test]
    fn empty_forest_plan_answers_half() {
        let (data, _) = planted_toy().generate_scaled(0.1, 53).unwrap();
        let cfg = DareConfig { n_trees: 0, ..DareConfig::small(53) };
        let forest = DareForest::fit(&data, cfg);
        let plan = PredictPlan::compile(&forest);
        assert_eq!(plan.num_trees(), 0);
        for p in plan.predict_proba(&data) {
            assert_eq!(p.to_bits(), 0.5f64.to_bits());
        }
    }

    #[test]
    fn patch_tracks_a_journaled_delete_and_rollback() {
        let (train, test, mut forest) = setup(54);
        let mut plan = PredictPlan::compile(&forest);
        let pristine = plan.clone();
        for subset in [vec![0u32, 1, 2], (0..60).step_by(3).collect::<Vec<u32>>()] {
            let journal = forest.delete_journaled(&subset, &train);
            let cones = plan.patch(&journal, &forest);
            // The patched plan is the plan a fresh compile would build.
            assert_eq!(plan, PredictPlan::compile(&forest));
            assert_bitwise(&plan, &forest, &test);
            forest.rollback(journal);
            plan.patch_cones(&cones, &forest);
            assert_eq!(plan, pristine, "rollback replay restores the arena");
            assert_bitwise(&plan, &forest, &test);
        }
    }

    #[test]
    fn empty_journal_patches_nothing() {
        let (train, _, mut forest) = setup(55);
        let mut plan = PredictPlan::compile(&forest);
        let before = plan.clone();
        let journal = forest.delete_journaled(&[], &train);
        let cones = plan.patch(&journal, &forest);
        assert!(cones.is_empty());
        assert_eq!(cones.num_cones(), 0);
        assert_eq!(plan, before);
    }

    #[test]
    #[should_panic(expected = "journal covers")]
    fn journal_from_a_different_forest_shape_is_rejected() {
        let (train, _, forest) = setup(56);
        let mut plan = PredictPlan::compile(&forest);
        let other_cfg = DareConfig { n_trees: 3, ..DareConfig::small(56) };
        let mut other = DareForest::fit(&train, other_cfg);
        let journal = other.delete_journaled(&[0, 1], &train);
        plan.patch(&journal, &other);
    }

    #[test]
    fn predict_into_rejects_misshapen_output() {
        let (_, test, forest) = setup(57);
        let plan = PredictPlan::compile(&forest);
        let mut out = vec![0.0; test.num_rows() + 1];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.predict_into(&test, &mut out)
        }));
        assert!(err.is_err(), "length mismatch must panic");
    }
}
