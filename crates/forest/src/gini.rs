//! Gini impurity and split-gain computations over label counts.
//!
//! All scores work on integer counts so that cached statistics (updated
//! incrementally during unlearning) reproduce build-time decisions exactly.

/// Gini impurity of a node with `n` instances of which `n_pos` are positive:
/// `1 − p₊² − p₋²`. An empty node has impurity 0 by convention.
#[inline]
pub fn gini(n: u32, n_pos: u32) -> f64 {
    debug_assert!(n_pos <= n);
    if n == 0 {
        return 0.0;
    }
    let p = n_pos as f64 / n as f64;
    1.0 - p * p - (1.0 - p) * (1.0 - p)
}

/// Gini *gain* of splitting `(n, n_pos)` into a left part `(n_l, n_l_pos)`
/// and the complementary right part: parent impurity minus the
/// count-weighted child impurity. Non-separating splits (`n_l == 0` or
/// `n_l == n`) gain exactly 0.
#[inline]
pub fn gini_gain(n: u32, n_pos: u32, n_l: u32, n_l_pos: u32) -> f64 {
    debug_assert!(n_l <= n && n_l_pos <= n_pos && (n_pos - n_l_pos) <= (n - n_l));
    if n == 0 || n_l == 0 || n_l == n {
        return 0.0;
    }
    let n_r = n - n_l;
    let n_r_pos = n_pos - n_l_pos;
    let w_l = n_l as f64 / n as f64;
    let w_r = n_r as f64 / n as f64;
    gini(n, n_pos) - w_l * gini(n_l, n_l_pos) - w_r * gini(n_r, n_r_pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_nodes_have_zero_impurity() {
        assert_eq!(gini(10, 0), 0.0);
        assert_eq!(gini(10, 10), 0.0);
        assert_eq!(gini(0, 0), 0.0);
    }

    #[test]
    fn balanced_node_has_half_impurity() {
        assert!((gini(10, 5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn impurity_is_symmetric_in_classes() {
        for n_pos in 0..=20 {
            assert!((gini(20, n_pos) - gini(20, 20 - n_pos)).abs() < 1e-12);
        }
    }

    #[test]
    fn perfect_split_gains_full_impurity() {
        // 10 instances, 5 positive, split puts all positives left.
        let g = gini_gain(10, 5, 5, 5);
        assert!((g - 0.5).abs() < 1e-12);
    }

    #[test]
    fn useless_split_gains_nothing() {
        // Children mirror the parent distribution.
        let g = gini_gain(20, 10, 10, 5);
        assert!(g.abs() < 1e-12);
    }

    #[test]
    fn non_separating_split_gains_zero() {
        assert_eq!(gini_gain(10, 5, 0, 0), 0.0);
        assert_eq!(gini_gain(10, 5, 10, 5), 0.0);
    }

    #[test]
    fn gain_is_never_negative() {
        // Exhaustive over small counts: Gini gain of any valid split ≥ 0.
        for n in 1..=12u32 {
            for n_pos in 0..=n {
                for n_l in 0..=n {
                    for n_l_pos in 0..=n_l.min(n_pos) {
                        if n_pos - n_l_pos <= n - n_l {
                            let g = gini_gain(n, n_pos, n_l, n_l_pos);
                            assert!(g >= -1e-12, "gain {g} for {n},{n_pos},{n_l},{n_l_pos}");
                        }
                    }
                }
            }
        }
    }
}
