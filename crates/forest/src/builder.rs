//! Tree construction: random upper layers + greedy Gini nodes with cached
//! candidate-threshold statistics.

use fume_tabular::cast::{code_u16, row_u32};
use fume_tabular::rng::{Rng, SliceRandom, StdRng};
use fume_tabular::Dataset;

use crate::config::DareConfig;
use crate::gini::gini_gain;
use crate::node::{Candidate, Internal, Leaf, Node};

/// Tolerance for "strictly better" gain comparisons: build-time choice and
/// delete-time re-evaluation must use the same epsilon or unlearning would
/// retrain on floating-point noise.
pub(crate) const GAIN_EPS: f64 = 1e-12;

/// Per-attribute label histogram over a set of instance ids.
pub(crate) struct Histogram {
    /// `counts[c]` = instances with code `c`.
    pub counts: Vec<u32>,
    /// `pos[c]` = positive instances with code `c`.
    pub pos: Vec<u32>,
}

impl Histogram {
    pub(crate) fn compute(data: &Dataset, attr: usize, ids: &[u32]) -> Self {
        let card = data.schema().attributes()[attr].cardinality() as usize;
        let column = data.column(attr);
        let labels = data.labels();
        let mut counts = vec![0u32; card];
        let mut pos = vec![0u32; card];
        for &id in ids {
            let c = column[id as usize] as usize;
            counts[c] += 1;
            pos[c] += u32::from(labels[id as usize]);
        }
        Self { counts, pos }
    }

    /// Distinct codes present, ascending.
    pub(crate) fn present(&self) -> Vec<u16> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| code_u16(i))
            .collect()
    }

    /// `(n_left, n_left_pos)` of the cut `code <= threshold`.
    pub(crate) fn left_stats(&self, threshold: u16) -> (u32, u32) {
        let t = threshold as usize;
        let n_left: u32 = self.counts[..=t].iter().sum();
        let n_left_pos: u32 = self.pos[..=t].iter().sum();
        (n_left, n_left_pos)
    }
}

/// Stable partition of `ids` into (left, right) by `code <= threshold`.
pub(crate) fn partition(
    data: &Dataset,
    ids: &[u32],
    attr: u16,
    threshold: u16,
) -> (Vec<u32>, Vec<u32>) {
    let column = data.column(attr as usize);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &id in ids {
        if column[id as usize] <= threshold {
            left.push(id);
        } else {
            right.push(id);
        }
    }
    (left, right)
}

fn count_pos(data: &Dataset, ids: &[u32]) -> u32 {
    let labels = data.labels();
    row_u32(ids.iter().filter(|&&id| labels[id as usize]).count())
}

fn make_leaf(data: &Dataset, ids: Vec<u32>) -> Node {
    let n_pos = count_pos(data, &ids);
    Node::Leaf(Leaf { ids, n_pos })
}

/// Whether a candidate split separates the node's data while honoring the
/// leaf-size minimum. Used identically at build time and unlearning time.
#[inline]
pub(crate) fn candidate_valid(c: &Candidate, n: u32, cfg: &DareConfig) -> bool {
    c.n_left >= cfg.min_samples_leaf && (n - c.n_left) >= cfg.min_samples_leaf
}

/// Index of the best valid candidate by Gini gain (ties keep the earliest),
/// or `None` if no candidate is valid. Zero-gain splits are allowed — like
/// standard random forests, a mixed node keeps splitting until pure or
/// depth-capped, because deeper splits may separate what this one cannot
/// (e.g. XOR-shaped labels).
pub(crate) fn best_candidate(
    candidates: &[Candidate],
    n: u32,
    n_pos: u32,
    cfg: &DareConfig,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in candidates.iter().enumerate() {
        if !candidate_valid(c, n, cfg) {
            continue;
        }
        let g = gini_gain(n, n_pos, c.n_left, c.n_left_pos);
        match best {
            Some((_, bg)) if g <= bg + GAIN_EPS => {}
            _ => best = Some((i, g)),
        }
    }
    best.map(|(i, _)| i)
}

/// Samples up to `k` cut thresholds for `attr` from the histogram's present
/// codes (every present code except the largest is a valid cut), without
/// replacement, and computes their statistics. `exclude` suppresses cuts
/// already cached (used when replenishing after unlearning).
pub(crate) fn sample_candidates(
    hist: &Histogram,
    attr: u16,
    k: usize,
    exclude: &[u16],
    rng: &mut StdRng,
) -> Vec<Candidate> {
    let present = hist.present();
    if present.len() < 2 {
        return Vec::new();
    }
    let mut cuts: Vec<u16> = present[..present.len() - 1]
        .iter()
        .copied()
        .filter(|c| !exclude.contains(c))
        .collect();
    cuts.shuffle(rng);
    cuts.truncate(k);
    // Deterministic order within the node regardless of shuffle: sort the
    // chosen cuts so equal RNG states give identical candidate layouts.
    cuts.sort_unstable();
    cuts.into_iter()
        .map(|threshold| {
            let (n_left, n_left_pos) = hist.left_stats(threshold);
            Candidate { attr, threshold, n_left, n_left_pos }
        })
        .collect()
}

/// Recursively builds a (sub)tree over `ids` rooted at `depth`.
pub(crate) fn build_node(
    data: &Dataset,
    ids: Vec<u32>,
    depth: usize,
    rng: &mut StdRng,
    cfg: &DareConfig,
) -> Node {
    let n = row_u32(ids.len());
    let n_pos = count_pos(data, &ids);
    if n < cfg.min_samples_split || n_pos == 0 || n_pos == n || depth >= cfg.max_depth {
        return make_leaf(data, ids);
    }

    if depth < cfg.random_depth {
        return build_random_node(data, ids, n, n_pos, depth, rng, cfg);
    }
    build_greedy_node(data, ids, n, n_pos, depth, rng, cfg)
}

/// A random upper-layer node: uniformly random attribute, uniformly random
/// threshold within that attribute's observed code range. Both children are
/// non-empty by construction (`threshold ∈ [min, max)`).
fn build_random_node(
    data: &Dataset,
    ids: Vec<u32>,
    n: u32,
    n_pos: u32,
    depth: usize,
    rng: &mut StdRng,
    cfg: &DareConfig,
) -> Node {
    let p = data.num_attributes();
    let mut attrs: Vec<u16> = (0..code_u16(p)).collect();
    attrs.shuffle(rng);
    for attr in attrs {
        let column = data.column(attr as usize);
        let (mut lo, mut hi) = (u16::MAX, 0u16);
        for &id in &ids {
            let c = column[id as usize];
            lo = lo.min(c);
            hi = hi.max(c);
        }
        if lo >= hi {
            continue; // constant attribute in this node
        }
        let threshold = rng.gen_range(lo..hi);
        let (left_ids, right_ids) = partition(data, &ids, attr, threshold);
        if row_u32(left_ids.len()) < cfg.min_samples_leaf
            || row_u32(right_ids.len()) < cfg.min_samples_leaf
        {
            continue;
        }
        let left = build_node(data, left_ids, depth + 1, rng, cfg);
        let right = build_node(data, right_ids, depth + 1, rng, cfg);
        return Node::Internal(Box::new(Internal {
            attr,
            threshold,
            is_random: true,
            n,
            n_pos,
            candidates: Vec::new(),
            chosen: 0,
            left,
            right,
        }));
    }
    // No attribute can split this node's data.
    make_leaf(data, ids)
}

/// A greedy node: samples `p̃` attributes and `k'` thresholds per attribute,
/// caches every candidate's statistics, and splits on the best Gini gain.
fn build_greedy_node(
    data: &Dataset,
    ids: Vec<u32>,
    n: u32,
    n_pos: u32,
    depth: usize,
    rng: &mut StdRng,
    cfg: &DareConfig,
) -> Node {
    let p = data.num_attributes();
    let p_tilde = cfg.max_features.resolve(p);
    let mut attrs: Vec<u16> = (0..code_u16(p)).collect();
    attrs.shuffle(rng);
    attrs.truncate(p_tilde);
    attrs.sort_unstable(); // deterministic candidate layout

    let mut candidates = Vec::new();
    for attr in attrs {
        let hist = Histogram::compute(data, attr as usize, &ids);
        candidates.extend(sample_candidates(&hist, attr, cfg.n_thresholds, &[], rng));
    }
    // Only cache candidates the builder could actually choose: cuts that
    // violate the leaf-size minimum would be dead weight and would break
    // the "every cached candidate is valid" invariant that unlearning's
    // replenishment step maintains.
    candidates.retain(|c| candidate_valid(c, n, cfg));

    match best_candidate(&candidates, n, n_pos, cfg) {
        None => make_leaf(data, ids),
        Some(chosen) => {
            let (attr, threshold) = (candidates[chosen].attr, candidates[chosen].threshold);
            let (left_ids, right_ids) = partition(data, &ids, attr, threshold);
            let left = build_node(data, left_ids, depth + 1, rng, cfg);
            let right = build_node(data, right_ids, depth + 1, rng, cfg);
            Node::Internal(Box::new(Internal {
                attr,
                threshold,
                is_random: false,
                n,
                n_pos,
                candidates,
                chosen: row_u32(chosen),
                left,
                right,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::{Attribute, Schema};
    use fume_tabular::rng::SeedableRng;
    use std::sync::Arc;

    fn xor_data() -> Dataset {
        // label = a XOR b, plus a noise attribute.
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("a", vec!["0".into(), "1".into()]),
                Attribute::categorical("b", vec!["0".into(), "1".into()]),
                Attribute::categorical("noise", vec!["0".into(), "1".into(), "2".into()]),
            ])
            .unwrap(),
        );
        let mut cols = vec![Vec::new(), Vec::new(), Vec::new()];
        let mut labels = Vec::new();
        for i in 0..64usize {
            let a = (i % 2) as u16;
            let b = ((i / 2) % 2) as u16;
            cols[0].push(a);
            cols[1].push(b);
            cols[2].push((i % 3) as u16);
            labels.push((a ^ b) == 1);
        }
        Dataset::new(schema, cols, labels).unwrap()
    }

    fn cfg() -> DareConfig {
        DareConfig {
            n_trees: 1,
            max_depth: 8,
            random_depth: 0,
            n_thresholds: 5,
            max_features: crate::config::MaxFeatures::All,
            ..DareConfig::default()
        }
    }

    #[test]
    fn histogram_counts() {
        let d = xor_data();
        let ids = d.all_row_ids();
        let h = Histogram::compute(&d, 0, &ids);
        assert_eq!(h.counts, vec![32, 32]);
        assert_eq!(h.pos.iter().sum::<u32>(), 32);
        assert_eq!(h.present(), vec![0, 1]);
        assert_eq!(h.left_stats(0), (32, 16));
        assert_eq!(h.left_stats(1), (64, 32));
    }

    #[test]
    fn partition_is_stable_and_complete() {
        let d = xor_data();
        let ids = d.all_row_ids();
        let (l, r) = partition(&d, &ids, 0, 0);
        assert_eq!(l.len() + r.len(), ids.len());
        assert!(l.windows(2).all(|w| w[0] < w[1]), "stable order");
        assert!(l.iter().all(|&id| d.code(id as usize, 0) == 0));
        assert!(r.iter().all(|&id| d.code(id as usize, 0) == 1));
    }

    #[test]
    fn greedy_tree_learns_xor() {
        let d = xor_data();
        let mut rng = StdRng::seed_from_u64(1);
        let root = build_node(&d, d.all_row_ids(), 0, &mut rng, &cfg());
        for row in 0..d.num_rows() {
            let p = root.predict_row(&d, row);
            assert_eq!(p > 0.5, d.label(row), "row {row} proba {p}");
        }
    }

    #[test]
    fn node_statistics_are_consistent() {
        let d = xor_data();
        let mut rng = StdRng::seed_from_u64(2);
        let root = build_node(&d, d.all_row_ids(), 0, &mut rng, &cfg());
        fn check(node: &Node) {
            if let Node::Internal(i) = node {
                assert_eq!(i.n, i.left.n() + i.right.n());
                assert_eq!(i.n_pos, i.left.n_pos() + i.right.n_pos());
                let c = &i.candidates[i.chosen as usize];
                assert_eq!((c.attr, c.threshold), (i.attr, i.threshold));
                assert_eq!(c.n_left, i.left.n());
                assert_eq!(c.n_left_pos, i.left.n_pos());
                check(&i.left);
                check(&i.right);
            }
        }
        check(&root);
    }

    #[test]
    fn random_layers_are_marked() {
        let d = xor_data();
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = cfg();
        c.random_depth = 2;
        let root = build_node(&d, d.all_row_ids(), 0, &mut rng, &c);
        if let Node::Internal(i) = &root {
            assert!(i.is_random);
            assert!(i.candidates.is_empty());
            // Random splits always separate.
            assert!(i.left.n() > 0 && i.right.n() > 0);
        } else {
            panic!("expected split at root");
        }
    }

    #[test]
    fn pure_data_yields_single_leaf() {
        let d = xor_data();
        let pure_ids: Vec<u32> = (0..d.num_rows() as u32)
            .filter(|&r| d.label(r as usize))
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        let root = build_node(&d, pure_ids.clone(), 0, &mut rng, &cfg());
        match root {
            Node::Leaf(l) => {
                assert_eq!(l.ids.len(), pure_ids.len());
                assert_eq!(l.proba(), 1.0);
            }
            _ => panic!("pure node must be a leaf"),
        }
    }

    #[test]
    fn max_depth_zero_means_single_leaf() {
        let d = xor_data();
        let mut c = cfg();
        c.max_depth = 0;
        let mut rng = StdRng::seed_from_u64(5);
        let root = build_node(&d, d.all_row_ids(), 0, &mut rng, &c);
        assert!(matches!(root, Node::Leaf(_)));
    }

    #[test]
    fn sample_candidates_excludes_and_caps() {
        let d = xor_data();
        let h = Histogram::compute(&d, 2, &d.all_row_ids()); // codes 0,1,2
        let mut rng = StdRng::seed_from_u64(6);
        let all = sample_candidates(&h, 2, 10, &[], &mut rng);
        assert_eq!(all.len(), 2); // cuts at 0 and 1
        let excl = sample_candidates(&h, 2, 10, &[0], &mut rng);
        assert_eq!(excl.len(), 1);
        assert_eq!(excl[0].threshold, 1);
        let capped = sample_candidates(&h, 2, 1, &[], &mut rng);
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let d = xor_data();
        let mut c = cfg();
        c.min_samples_leaf = 8;
        let mut rng = StdRng::seed_from_u64(7);
        let root = build_node(&d, d.all_row_ids(), 0, &mut rng, &c);
        fn check(node: &Node, msl: u32) {
            if let Node::Internal(i) = node {
                assert!(i.left.n() >= msl && i.right.n() >= msl);
                check(&i.left, msl);
                check(&i.right, msl);
            }
        }
        check(&root, 8);
    }
}
