//! The DaRE random forest: an ensemble of unlearnable trees.
//!
//! Following the DaRE-RF paper, trees are *not* bagged: every tree trains
//! on the full instance set, and diversity comes from per-tree random
//! attribute/threshold sampling. (Bagging would make exact unlearning
//! ambiguous — a deleted instance appears in a random subset of trees.)

use fume_tabular::cast::row_u32;
use fume_tabular::workers::{parallel_map, parallel_map_mut, parallel_zip_map, resolve_jobs};
use fume_tabular::{Classifier, Dataset};

use crate::config::DareConfig;
use crate::delete::DeleteReport;
use crate::insert::InsertReport;
use crate::journal::{TreeUndo, UndoJournal};
use crate::tree::DareTree;

/// A random forest classifier with exact unlearning (DaRE-RF).
///
/// ```
/// use fume_forest::{DareConfig, DareForest};
/// use fume_tabular::datasets::planted_toy;
/// use fume_tabular::Classifier;
///
/// let (data, _) = planted_toy().generate_scaled(0.2, 7).unwrap();
/// let mut forest = DareForest::fit(&data, DareConfig::small(7));
/// let acc_before = forest.accuracy(&data);
/// forest.delete(&[1, 2, 3], &data).unwrap();
/// assert_eq!(forest.num_instances() as usize, data.num_rows() - 3);
/// assert!(forest.accuracy(&data) > acc_before - 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DareForest {
    trees: Vec<DareTree>,
    config: DareConfig,
    /// Number of training instances still learned (after deletions).
    n_instances: u32,
}

/// Errors from forest unlearning/learning operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestError {
    /// A requested id is not (or no longer) in the training set.
    UnknownInstance(u32),
    /// An inserted id is already in the training set.
    DuplicateInstance(u32),
    /// An id is outside the dataset's row range.
    RowOutOfRange(u32),
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownInstance(id) => {
                write!(f, "instance {id} is not in the forest's training set")
            }
            Self::DuplicateInstance(id) => {
                write!(f, "instance {id} is already in the forest's training set")
            }
            Self::RowOutOfRange(id) => {
                write!(f, "row {id} is outside the dataset")
            }
        }
    }
}

impl std::error::Error for ForestError {}

impl DareForest {
    /// Trains a forest on all rows of `data`.
    pub fn fit(data: &Dataset, config: DareConfig) -> Self {
        Self::fit_on(data, data.all_row_ids(), config)
    }

    /// Trains a forest on the subset `ids` of `data` (used by the
    /// retrain-from-scratch baseline).
    pub fn fit_on(data: &Dataset, ids: Vec<u32>, config: DareConfig) -> Self {
        let _span =
            fume_obs::span!("forest.fit", trees = config.n_trees, instances = ids.len());
        let n_instances = row_u32(ids.len());
        let seeds: Vec<u64> = (0..config.n_trees)
            .map(|i| config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64))
            .collect();
        let jobs = resolve_jobs(config.n_jobs, config.n_trees);
        let trees = parallel_map(&seeds, jobs, |&s| DareTree::fit(data, ids.clone(), &config, s));
        Self { trees, config, n_instances }
    }

    /// Reassembles a forest from persisted trees. Returns `None` when the
    /// tree count disagrees with the configuration.
    pub(crate) fn from_saved(
        trees: Vec<DareTree>,
        config: DareConfig,
        n_instances: u32,
    ) -> Option<Self> {
        if trees.len() != config.n_trees {
            return None;
        }
        Some(Self { trees, config, n_instances })
    }

    /// Unlearns the given training instances from every tree. Ids are
    /// sorted and deduplicated internally; unknown ids are rejected before
    /// any tree is modified.
    pub fn delete(&mut self, ids: &[u32], data: &Dataset) -> Result<DeleteReport, ForestError> {
        let mut del: Vec<u32> = ids.to_vec();
        del.sort_unstable();
        del.dedup();
        if del.is_empty() {
            return Ok(DeleteReport::default());
        }
        // All trees hold the same instance set; check against the first.
        if let Some(tree) = self.trees.first() {
            let present = tree.instance_ids();
            for &id in &del {
                if present.binary_search(&id).is_err() {
                    return Err(ForestError::UnknownInstance(id));
                }
            }
        }
        Ok(self.delete_validated(del, data))
    }

    /// [`Self::delete`] without the presence check — the caller guarantees
    /// every id is currently held by the forest. FUME's attribution hot
    /// path uses this: lattice selections are drawn from the training
    /// universe the forest was fitted on, so re-scanning a tree's id list
    /// per evaluated subset would be pure overhead. Passing an absent id
    /// corrupts cached statistics (or panics in debug builds).
    pub fn delete_unchecked(&mut self, ids: &[u32], data: &Dataset) -> DeleteReport {
        let mut del: Vec<u32> = ids.to_vec();
        del.sort_unstable();
        del.dedup();
        if del.is_empty() {
            return DeleteReport::default();
        }
        self.delete_validated(del, data)
    }

    fn delete_validated(&mut self, del: Vec<u32>, data: &Dataset) -> DeleteReport {
        let _span = fume_obs::span!("forest.delete", ids = del.len());
        let jobs = resolve_jobs(self.config.n_jobs, self.trees.len());
        let (config, del_ref) = (&self.config, &del);
        let reports: Vec<DeleteReport> =
            parallel_map_mut(&mut self.trees, jobs, |t| t.delete(del_ref, data, config));
        let total = merge_delete_reports(&reports);
        self.n_instances -= row_u32(del.len());
        emit_delete_counters(del.len(), &total);
        total
    }

    /// [`Self::delete_unchecked`] with an undo journal: unlearns `ids`
    /// from every tree while recording everything mutated, so
    /// [`Self::rollback`] restores the forest byte-identically (same
    /// structure, statistics *and* per-tree RNG streams — a rolled-back
    /// forest compares equal to a pre-delete snapshot).
    ///
    /// Like `delete_unchecked`, the caller guarantees every id is
    /// currently held by the forest; this is FUME's scratch-forest hot
    /// path, where selections come from the training universe.
    pub fn delete_journaled(&mut self, ids: &[u32], data: &Dataset) -> UndoJournal {
        let mut del: Vec<u32> = ids.to_vec();
        del.sort_unstable();
        del.dedup();
        if del.is_empty() {
            return UndoJournal::empty();
        }
        let _span = fume_obs::span!("forest.delete", ids = del.len(), journaled = true);
        let jobs = resolve_jobs(self.config.n_jobs, self.trees.len());
        let (config, del_ref) = (&self.config, &del);
        let outcomes: Vec<(DeleteReport, TreeUndo)> =
            parallel_map_mut(&mut self.trees, jobs, |t| {
                t.delete_journaled(del_ref, data, config)
            });
        let (reports, undos): (Vec<DeleteReport>, Vec<TreeUndo>) =
            outcomes.into_iter().unzip();
        let total = merge_delete_reports(&reports);
        let n_deleted = row_u32(del.len());
        self.n_instances -= n_deleted;
        emit_delete_counters(del.len(), &total);
        let journal = UndoJournal { trees: undos, n_deleted, report: total };
        crate::deepcheck::check_forest(self, data, "delete_journaled");
        journal
    }

    /// Undoes a journaled deletion, restoring the forest to exactly its
    /// pre-delete state. Returns the total number of node restorations
    /// applied across all trees.
    ///
    /// `journal` must come from this forest's most recent
    /// [`Self::delete_journaled`]; journals do not compose, so roll back
    /// before the next journaled delete.
    pub fn rollback(&mut self, journal: UndoJournal) -> usize {
        if journal.trees.is_empty() && journal.n_deleted == 0 {
            return 0; // journal of an empty delete
        }
        assert_eq!(
            journal.trees.len(),
            self.trees.len(),
            "journal does not belong to this forest"
        );
        let _span = fume_obs::span!("forest.rollback", records = journal.nodes_recorded());
        let jobs = resolve_jobs(self.config.n_jobs, self.trees.len());
        let restored: Vec<usize> =
            parallel_zip_map(&mut self.trees, journal.trees, jobs, |t, undo| {
                t.rollback(undo)
            });
        self.n_instances += journal.n_deleted;
        restored.into_iter().sum()
    }

    /// Incrementally learns additional rows of `data` (the forest must
    /// have been fitted on rows of the same dataset). Ids are sorted and
    /// deduplicated internally; out-of-range or already-present ids are
    /// rejected before any tree is modified.
    pub fn insert(&mut self, ids: &[u32], data: &Dataset) -> Result<InsertReport, ForestError> {
        let mut ins: Vec<u32> = ids.to_vec();
        ins.sort_unstable();
        ins.dedup();
        if ins.is_empty() {
            return Ok(InsertReport::default());
        }
        for &id in &ins {
            if id as usize >= data.num_rows() {
                return Err(ForestError::RowOutOfRange(id));
            }
        }
        if let Some(tree) = self.trees.first() {
            let present = tree.instance_ids();
            for &id in &ins {
                if present.binary_search(&id).is_ok() {
                    return Err(ForestError::DuplicateInstance(id));
                }
            }
        }
        let _span = fume_obs::span!("forest.insert", ids = ins.len());
        let jobs = resolve_jobs(self.config.n_jobs, self.trees.len());
        let (config, ins_ref) = (&self.config, &ins);
        let reports: Vec<InsertReport> =
            parallel_map_mut(&mut self.trees, jobs, |t| t.insert(ins_ref, data, config));
        let mut total = InsertReport::default();
        for r in &reports {
            total.merge(r);
        }
        self.n_instances += row_u32(ins.len());
        fume_obs::counter!("forest.instances_inserted", ins.len());
        fume_obs::counter!("forest.subtrees_rebuilt", total.subtrees_rebuilt);
        fume_obs::counter!("forest.nodes_updated", total.nodes_updated);
        fume_obs::counter!("forest.leaves_updated", total.leaves_updated);
        Ok(total)
    }

    /// Positive-class probability for a single `row` of `data` — bitwise
    /// identical to `predict_proba(data)[row]`: same tree order, same
    /// accumulate-then-divide float sequence, same empty-forest answer.
    /// Incremental evaluators re-predict only dirty rows through this, so
    /// a partially refreshed prediction vector cannot drift from a full
    /// pass.
    pub fn predict_row(&self, data: &Dataset, row: usize) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        let mut acc = 0.0f64;
        for tree in &self.trees {
            acc += tree.predict_row(data, row);
        }
        acc / self.trees.len() as f64
    }

    /// The reference full prediction pass: the direct pointer walk over
    /// every tree for every row, accumulate then divide. This is the
    /// float-order contract every fast path must reproduce bitwise — the
    /// [`PredictPlan`](crate::plan::PredictPlan) kernel is cross-checked
    /// against it under `FUME_DEEPCHECK=1`, and `predict_kernel` benches
    /// measure its speedup relative to this walk.
    pub fn predict_proba_pointer(&self, data: &Dataset) -> Vec<f64> {
        let mut acc = vec![0.0f64; data.num_rows()];
        if self.trees.is_empty() {
            return vec![0.5; data.num_rows()];
        }
        for tree in &self.trees {
            for (row, slot) in acc.iter_mut().enumerate() {
                *slot += tree.predict_row(data, row);
            }
        }
        let k = self.trees.len() as f64;
        for slot in &mut acc {
            *slot /= k;
        }
        acc
    }

    /// The trees, for structural inspection (path mining, validation).
    pub fn trees(&self) -> &[DareTree] {
        &self.trees
    }

    /// The forest's configuration.
    pub fn config(&self) -> &DareConfig {
        &self.config
    }

    /// Number of training instances currently learned.
    pub fn num_instances(&self) -> u32 {
        self.n_instances
    }
}

impl Classifier for DareForest {
    /// Average of per-tree leaf probabilities. Passes over at least
    /// [`PLAN_FULL_PASS_MIN_ROWS`](crate::plan::PLAN_FULL_PASS_MIN_ROWS)
    /// rows compile a throwaway [`PredictPlan`](crate::plan::PredictPlan)
    /// and run its blocked kernel; smaller passes (and the empty
    /// ensemble) take [`Self::predict_proba_pointer`]. Both paths are
    /// bitwise identical — callers that hold the forest across many
    /// passes should compile a plan once instead of paying the implicit
    /// recompile here.
    fn predict_proba(&self, data: &Dataset) -> Vec<f64> {
        if self.trees.is_empty() || data.num_rows() < crate::plan::PLAN_FULL_PASS_MIN_ROWS {
            return self.predict_proba_pointer(data);
        }
        let plan = crate::plan::PredictPlan::compile(self);
        let mut out = vec![0.0f64; data.num_rows()];
        plan.predict_into(data, &mut out);
        if crate::deepcheck::enabled() {
            let reference = self.predict_proba_pointer(data);
            for (row, (a, b)) in out.iter().zip(&reference).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "FUME_DEEPCHECK: plan prediction diverged from the pointer walk at row {row}"
                );
            }
        }
        out
    }
}

fn merge_delete_reports(reports: &[DeleteReport]) -> DeleteReport {
    let mut total = DeleteReport::default();
    for r in reports {
        total.merge(r);
    }
    total
}

fn emit_delete_counters(n_deleted: usize, total: &DeleteReport) {
    fume_obs::counter!("forest.instances_removed", n_deleted);
    fume_obs::counter!("forest.nodes_retrained", total.subtrees_retrained);
    fume_obs::counter!("forest.nodes_updated", total.nodes_updated);
    fume_obs::counter!("forest.leaves_updated", total.leaves_updated);
    fume_obs::counter!("forest.candidates_replenished", total.candidates_replenished);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    fn small_cfg(seed: u64) -> DareConfig {
        DareConfig { n_trees: 15, max_depth: 6, seed, ..DareConfig::default() }
    }

    #[test]
    fn forest_learns_the_toy_task() {
        let (data, _) = planted_toy().generate_full(20).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 20).unwrap();
        let forest = DareForest::fit(&train, small_cfg(20));
        let acc = forest.accuracy(&test);
        assert!(acc > 0.55, "test accuracy {acc} barely better than chance");
    }

    #[test]
    fn parallel_and_serial_fits_agree() {
        let (data, _) = planted_toy().generate_scaled(0.2, 21).unwrap();
        let serial = DareForest::fit(&data, small_cfg(3).with_jobs(1));
        let parallel = DareForest::fit(&data, small_cfg(3).with_jobs(4));
        assert_eq!(serial.trees(), parallel.trees());
    }

    #[test]
    fn parallel_and_serial_deletes_agree() {
        let (data, _) = planted_toy().generate_scaled(0.2, 22).unwrap();
        let mut serial = DareForest::fit(&data, small_cfg(4).with_jobs(1));
        let mut parallel = DareForest::fit(&data, small_cfg(4).with_jobs(4));
        let del: Vec<u32> = (0..60).map(|i| i * 3).collect();
        let rs = serial.delete(&del, &data).unwrap();
        let rp = parallel.delete(&del, &data).unwrap();
        assert_eq!(serial.trees(), parallel.trees());
        assert_eq!(rs, rp);
    }

    #[test]
    fn delete_rejects_unknown_ids_without_mutating() {
        let (data, _) = planted_toy().generate_scaled(0.1, 23).unwrap();
        let mut forest = DareForest::fit(&data, small_cfg(5));
        let before = forest.clone();
        let err = forest.delete(&[0, 999_999], &data).unwrap_err();
        assert_eq!(err, ForestError::UnknownInstance(999_999));
        assert_eq!(forest, before, "failed delete must not mutate");
    }

    #[test]
    fn double_delete_rejected() {
        let (data, _) = planted_toy().generate_scaled(0.1, 24).unwrap();
        let mut forest = DareForest::fit(&data, small_cfg(6));
        forest.delete(&[7], &data).unwrap();
        let err = forest.delete(&[7], &data).unwrap_err();
        assert_eq!(err, ForestError::UnknownInstance(7));
    }

    #[test]
    fn empty_delete_is_noop() {
        let (data, _) = planted_toy().generate_scaled(0.1, 25).unwrap();
        let mut forest = DareForest::fit(&data, small_cfg(7));
        let before = forest.clone();
        let report = forest.delete(&[], &data).unwrap();
        assert_eq!(report, DeleteReport::default());
        assert_eq!(forest, before);
    }

    #[test]
    fn duplicate_ids_deduplicated() {
        let (data, _) = planted_toy().generate_scaled(0.1, 26).unwrap();
        let mut forest = DareForest::fit(&data, small_cfg(8));
        let n = forest.num_instances();
        forest.delete(&[3, 3, 3, 9], &data).unwrap();
        assert_eq!(forest.num_instances(), n - 2);
    }

    #[test]
    fn delete_unchecked_matches_checked_delete() {
        let (data, _) = planted_toy().generate_scaled(0.1, 31).unwrap();
        let mut a = DareForest::fit(&data, small_cfg(13));
        let mut b = a.clone();
        let del: Vec<u32> = (0..30).step_by(2).collect();
        let ra = a.delete(&del, &data).unwrap();
        let rb = b.delete_unchecked(&del, &data);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert_eq!(b.delete_unchecked(&[], &data), DeleteReport::default());
    }

    #[test]
    fn insert_validates_before_mutating() {
        let (data, _) = planted_toy().generate_scaled(0.1, 28).unwrap();
        let half: Vec<u32> = (0..(data.num_rows() / 2) as u32).collect();
        let mut forest = DareForest::fit_on(&data, half, small_cfg(10));
        let before = forest.clone();
        // Already present.
        let err = forest.insert(&[0], &data).unwrap_err();
        assert_eq!(err, ForestError::DuplicateInstance(0));
        assert_eq!(forest, before);
        // Out of range.
        let err = forest.insert(&[u32::MAX], &data).unwrap_err();
        assert_eq!(err, ForestError::RowOutOfRange(u32::MAX));
        assert_eq!(forest, before);
        // Empty is a no-op.
        assert_eq!(forest.insert(&[], &data).unwrap(), InsertReport::default());
    }

    #[test]
    fn streaming_insert_matches_instance_count_and_stays_valid() {
        use crate::validate::validate_forest;
        let (data, _) = planted_toy().generate_scaled(0.15, 29).unwrap();
        let n = data.num_rows() as u32;
        let seed_ids: Vec<u32> = (0..n / 3).collect();
        let mut forest = DareForest::fit_on(&data, seed_ids, small_cfg(11));
        for chunk_start in (n / 3..n).step_by(50) {
            let chunk: Vec<u32> = (chunk_start..(chunk_start + 50).min(n)).collect();
            forest.insert(&chunk, &data).unwrap();
        }
        assert_eq!(forest.num_instances(), n);
        let v = validate_forest(&forest, &data);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn insert_then_delete_roundtrip_restores_instance_set() {
        let (data, _) = planted_toy().generate_scaled(0.1, 30).unwrap();
        let mut forest = DareForest::fit(&data, small_cfg(12).with_trees(5));
        forest.delete(&[5, 6, 7], &data).unwrap();
        forest.insert(&[5, 6, 7], &data).unwrap();
        assert_eq!(forest.num_instances() as usize, data.num_rows());
        for t in forest.trees() {
            assert_eq!(t.instance_ids(), data.all_row_ids());
        }
    }

    #[test]
    fn journaled_delete_matches_unchecked_delete() {
        let (data, _) = planted_toy().generate_scaled(0.1, 32).unwrap();
        let mut a = DareForest::fit(&data, small_cfg(14));
        let mut b = a.clone();
        let del: Vec<u32> = (0..40).step_by(3).collect();
        let ra = a.delete_unchecked(&del, &data);
        let journal = b.delete_journaled(&del, &data);
        assert_eq!(a, b, "journaling must not change deletion outcome");
        assert_eq!(ra, journal.report);
        assert_eq!(journal.n_deleted(), del.len() as u32);
        assert!(journal.approx_bytes() > 0);
    }

    #[test]
    fn rollback_restores_pre_delete_snapshot() {
        let (data, _) = planted_toy().generate_scaled(0.1, 33).unwrap();
        for jobs in [1usize, 4] {
            let mut forest = DareForest::fit(&data, small_cfg(15).with_jobs(jobs));
            let snapshot = forest.clone();
            let del: Vec<u32> = (0..50).step_by(2).collect();
            let journal = forest.delete_journaled(&del, &data);
            assert_ne!(forest, snapshot, "delete must mutate the forest");
            let restored = forest.rollback(journal);
            assert!(restored > 0);
            assert_eq!(forest, snapshot, "rollback must restore byte-identical state");
            // The restored forest still unlearns correctly.
            forest.delete(&del, &data).unwrap();
            assert_eq!(forest.num_instances() as usize, data.num_rows() - del.len());
        }
    }

    #[test]
    fn empty_journaled_delete_is_noop() {
        let (data, _) = planted_toy().generate_scaled(0.1, 34).unwrap();
        let mut forest = DareForest::fit(&data, small_cfg(16));
        let before = forest.clone();
        let journal = forest.delete_journaled(&[], &data);
        assert_eq!(journal.n_deleted(), 0);
        assert_eq!(journal.nodes_recorded(), 0);
        assert_eq!(forest, before);
    }

    #[test]
    fn predict_row_is_bitwise_identical_to_the_full_pass() {
        let (data, _) = planted_toy().generate_scaled(0.1, 35).unwrap();
        let forest = DareForest::fit(&data, small_cfg(17));
        let full = forest.predict_proba(&data);
        for (row, p) in full.iter().enumerate() {
            assert_eq!(p.to_bits(), forest.predict_row(&data, row).to_bits(), "row {row}");
        }
    }

    #[test]
    fn proba_averages_trees() {
        let (data, _) = planted_toy().generate_scaled(0.1, 27).unwrap();
        let forest = DareForest::fit(&data, small_cfg(9));
        for p in forest.predict_proba(&data) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
