//! Exact unlearning: batch deletion of training instances from a tree.
//!
//! The saved statistics decide, top-down, whether each node can absorb the
//! deletion by updating counts (cheap) or whether its subtree must be
//! rebuilt from the surviving instances (rare). Decision rules mirror the
//! build rules exactly, so an unlearned tree is always a tree the builder
//! *could* have produced on the surviving data — DaRE's exactness
//! guarantee.

use fume_tabular::cast::row_u32;
use fume_tabular::rng::StdRng;
use fume_tabular::Dataset;

use crate::builder::{
    best_candidate, build_node, candidate_valid, partition, sample_candidates, Histogram,
    GAIN_EPS,
};
use crate::config::DareConfig;
use crate::gini::gini_gain;
use crate::journal::{JournalSink, NodePath};
use crate::node::{Internal, Node};

/// Counters describing what one deletion did to a tree (aggregated over the
/// forest by the caller). Useful for the paper's complexity discussion and
/// the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeleteReport {
    /// Decision nodes whose statistics were updated in place.
    pub nodes_updated: usize,
    /// Subtrees that had to be rebuilt.
    pub subtrees_retrained: usize,
    /// Leaves whose instance lists were edited.
    pub leaves_updated: usize,
    /// Greedy nodes that replenished invalidated candidate thresholds.
    pub candidates_replenished: usize,
}

impl DeleteReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: &DeleteReport) {
        self.nodes_updated += other.nodes_updated;
        self.subtrees_retrained += other.subtrees_retrained;
        self.leaves_updated += other.leaves_updated;
        self.candidates_replenished += other.candidates_replenished;
    }
}

/// Removes the sorted id set `del` (all of which must be present) from the
/// sorted-or-unsorted id list `ids`, in place.
fn subtract_sorted(ids: &mut Vec<u32>, del: &[u32]) {
    ids.retain(|id| del.binary_search(id).is_err());
}

/// Collects the subtree's ids and removes `del` (sorted) from them.
fn surviving_ids(node: &Node, del: &[u32]) -> Vec<u32> {
    let mut ids = Vec::with_capacity(node.n() as usize);
    node.collect_ids(&mut ids);
    subtract_sorted(&mut ids, del);
    ids
}

/// Deletes `del` (sorted, deduplicated, all present under `node`) from the
/// subtree rooted at `node` which sits at `depth`, without journaling.
pub(crate) fn delete_from_node(
    node: &mut Node,
    del: &[u32],
    data: &Dataset,
    depth: usize,
    rng: &mut StdRng,
    cfg: &DareConfig,
    report: &mut DeleteReport,
) {
    let mut pass = DeletePass::new(data, cfg, rng, report, JournalSink::Off);
    pass.delete(node, del, depth, NodePath::ROOT);
}

/// One top-down deletion pass over a tree: the shared traversal behind
/// both the destructive delete and the journaled delete+rollback path.
pub(crate) struct DeletePass<'a> {
    data: &'a Dataset,
    cfg: &'a DareConfig,
    rng: &'a mut StdRng,
    report: &'a mut DeleteReport,
    journal: JournalSink,
}

impl<'a> DeletePass<'a> {
    /// Builds a pass; `journal` decides whether mutations are recorded.
    pub(crate) fn new(
        data: &'a Dataset,
        cfg: &'a DareConfig,
        rng: &'a mut StdRng,
        report: &'a mut DeleteReport,
        journal: JournalSink,
    ) -> Self {
        Self { data, cfg, rng, report, journal }
    }

    /// Consumes the pass, yielding the journal's undo records.
    pub(crate) fn into_records(self) -> Vec<crate::journal::UndoRecord> {
        self.journal.into_records()
    }

    /// Deletes `del` (sorted, deduplicated, all present under `node`)
    /// from the subtree rooted at `node` which sits at `depth`/`path`.
    pub(crate) fn delete(
        &mut self,
        node: &mut Node,
        del: &[u32],
        depth: usize,
        path: NodePath,
    ) {
        if del.is_empty() {
            return;
        }
        let (data, cfg) = (self.data, self.cfg);
        let labels = data.labels();
        let del_pos = row_u32(del.iter().filter(|&&id| labels[id as usize]).count());

        match node {
            Node::Leaf(leaf) => {
                self.journal.record_leaf(path, leaf);
                subtract_sorted(&mut leaf.ids, del);
                leaf.n_pos -= del_pos;
                self.report.leaves_updated += 1;
            }
            Node::Internal(internal) => {
                let new_n = internal.n - row_u32(del.len());
                let new_n_pos = internal.n_pos - del_pos;

                // The builder would now make this node a leaf: rebuild.
                if new_n < cfg.min_samples_split || new_n_pos == 0 || new_n_pos == new_n {
                    let ids = surviving_ids(node, del);
                    let rebuilt = build_node(data, ids, depth, self.rng, cfg);
                    self.journal.replace_subtree(path, node, rebuilt);
                    self.report.subtrees_retrained += 1;
                    return;
                }

                self.journal.record_internal_stats(path, internal);
                internal.n = new_n;
                internal.n_pos = new_n_pos;
                self.report.nodes_updated += 1;

                let (del_left, del_right) =
                    partition(data, del, internal.attr, internal.threshold);

                let retrain = if internal.is_random {
                    random_split_invalid(internal, &del_left, &del_right, cfg)
                } else {
                    update_candidates(internal, del, data);
                    // The chosen split must stay valid and improving; if so,
                    // resample any invalidated candidate thresholds *before*
                    // re-checking optimality (a fresh candidate may win).
                    chosen_split_dead(internal, cfg) || {
                        self.replenish_candidates(internal, del, path);
                        greedy_split_beaten(internal, cfg)
                    }
                };

                if retrain {
                    let ids = surviving_ids(node, del);
                    let rebuilt = build_node(data, ids, depth, self.rng, cfg);
                    self.journal.replace_subtree(path, node, rebuilt);
                    self.report.subtrees_retrained += 1;
                    return;
                }

                self.delete(&mut internal.left, &del_left, depth + 1, path.child(false));
                self.delete(&mut internal.right, &del_right, depth + 1, path.child(true));
            }
        }
    }

    /// Replaces cached candidates that stopped separating the node's data
    /// with freshly sampled thresholds from the surviving instances,
    /// keeping the candidate pool full for future deletions (the
    /// `O(|D| log |D|)` threshold-resampling step of the DaRE paper).
    fn replenish_candidates(&mut self, internal: &mut Internal, del: &[u32], path: NodePath) {
        let (data, cfg) = (self.data, self.cfg);
        let n = internal.n;
        let any_invalid = internal
            .candidates
            .iter()
            .any(|c| !candidate_valid(c, n, cfg));
        if !any_invalid {
            return;
        }
        self.report.candidates_replenished += 1;
        // The pool is about to be restructured: journal it wholesale.
        self.journal.record_candidates(path, internal);

        // Identify the chosen candidate before the vector is filtered.
        let chosen_key = {
            let c = &internal.candidates[internal.chosen as usize];
            (c.attr, c.threshold)
        };

        // Count how many candidates each attribute lost.
        let mut lost: Vec<(u16, usize)> = Vec::new();
        for c in &internal.candidates {
            if !candidate_valid(c, n, cfg) {
                match lost.iter_mut().find(|(a, _)| *a == c.attr) {
                    Some((_, k)) => *k += 1,
                    None => lost.push((c.attr, 1)),
                }
            }
        }
        internal.candidates.retain(|c| candidate_valid(c, n, cfg));

        // The surviving instances of this node, needed for fresh histograms.
        let ids = {
            let mut ids = Vec::with_capacity(internal.n as usize + del.len());
            internal.left.collect_ids(&mut ids);
            internal.right.collect_ids(&mut ids);
            ids.retain(|id| del.binary_search(id).is_err());
            ids
        };

        for (attr, k) in lost {
            let existing: Vec<u16> = internal
                .candidates
                .iter()
                .filter(|c| c.attr == attr)
                .map(|c| c.threshold)
                .collect();
            let hist = Histogram::compute(data, attr as usize, &ids);
            let fresh = sample_candidates(&hist, attr, k, &existing, self.rng);
            internal
                .candidates
                .extend(fresh.into_iter().filter(|c| candidate_valid(c, n, cfg)));
        }

        // Re-locate the chosen candidate after the reshuffle.
        let chosen_pos = internal
            .candidates
            .iter()
            .position(|c| (c.attr, c.threshold) == chosen_key)
            // fume-lint: allow(F001) -- replenish invariant: the chosen candidate passed candidate_valid above, so the retain/extend pass cannot have dropped it
            .expect("chosen candidate is valid and therefore retained");
        internal.chosen = row_u32(chosen_pos);
    }
}

/// A random node must be redrawn when the deletion empties one side (its
/// threshold fell outside the surviving code range) or violates the
/// leaf-size minimum the builder honored.
fn random_split_invalid(
    internal: &Internal,
    del_left: &[u32],
    del_right: &[u32],
    cfg: &DareConfig,
) -> bool {
    let left_n = internal.left.n() - row_u32(del_left.len());
    let right_n = internal.right.n() - row_u32(del_right.len());
    left_n < cfg.min_samples_leaf.max(1) || right_n < cfg.min_samples_leaf.max(1)
}

/// Incrementally updates every cached candidate's statistics for the
/// deletion of `del`.
fn update_candidates(internal: &mut Internal, del: &[u32], data: &Dataset) {
    let labels = data.labels();
    for cand in &mut internal.candidates {
        let column = data.column(cand.attr as usize);
        for &id in del {
            if column[id as usize] <= cand.threshold {
                cand.n_left -= 1;
                cand.n_left_pos -= u32::from(labels[id as usize]);
            }
        }
    }
}

/// Whether the chosen split stopped being a split the builder could have
/// made: it no longer separates the node's data within the leaf-size
/// minimum. (Zero-gain splits are legal at build time, so gain alone never
/// kills a split — only being strictly beaten does, see
/// [`greedy_split_beaten`].)
fn chosen_split_dead(internal: &Internal, cfg: &DareConfig) -> bool {
    let chosen = &internal.candidates[internal.chosen as usize];
    !candidate_valid(chosen, internal.n, cfg)
}

/// After replenishment, the node must be rebuilt when some other cached
/// candidate now has a *strictly* better Gini gain (the paper's "improved
/// splitting criterion"). Ties never retrain — the builder's earliest-max
/// tie-break keeps the choice stable.
fn greedy_split_beaten(internal: &Internal, cfg: &DareConfig) -> bool {
    let chosen = &internal.candidates[internal.chosen as usize];
    let chosen_gain = gini_gain(internal.n, internal.n_pos, chosen.n_left, chosen.n_left_pos);
    match best_candidate(&internal.candidates, internal.n, internal.n_pos, cfg) {
        None => true,
        Some(best) => {
            let b = &internal.candidates[best];
            let best_gain = gini_gain(internal.n, internal.n_pos, b.n_left, b.n_left_pos);
            best_gain > chosen_gain + GAIN_EPS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MaxFeatures;
    use fume_tabular::{Attribute, Schema};
    use fume_tabular::rng::SeedableRng;
    use std::sync::Arc;

    fn data() -> Dataset {
        let schema = Arc::new(
            Schema::with_default_label(vec![
                Attribute::categorical("a", vec!["0".into(), "1".into(), "2".into()]),
                Attribute::categorical("b", vec!["0".into(), "1".into()]),
            ])
            .unwrap(),
        );
        let mut cols = vec![Vec::new(), Vec::new()];
        let mut labels = Vec::new();
        for i in 0..90usize {
            let a = (i % 3) as u16;
            let b = ((i / 3) % 2) as u16;
            cols[0].push(a);
            cols[1].push(b);
            // labels depend on a: a==2 mostly positive.
            labels.push(a == 2 || (a == 1 && i % 5 == 0));
        }
        Dataset::new(schema, cols, labels).unwrap()
    }

    fn cfg() -> DareConfig {
        DareConfig {
            random_depth: 0,
            max_features: MaxFeatures::All,
            max_depth: 6,
            ..DareConfig::default()
        }
    }

    fn validate(node: &Node, data: &Dataset, cfg: &DareConfig) {
        if let Node::Internal(i) = node {
            assert_eq!(i.n, i.left.n() + i.right.n(), "n consistency");
            assert_eq!(i.n_pos, i.left.n_pos() + i.right.n_pos(), "n_pos consistency");
            let mut left_ids = Vec::new();
            i.left.collect_ids(&mut left_ids);
            for id in left_ids {
                assert!(data.code(id as usize, i.attr as usize) <= i.threshold);
            }
            if !i.is_random {
                for c in &i.candidates {
                    let mut ids = Vec::new();
                    node.collect_ids(&mut ids);
                    let col = data.column(c.attr as usize);
                    let n_left = ids.iter().filter(|&&id| col[id as usize] <= c.threshold).count();
                    assert_eq!(c.n_left as usize, n_left, "candidate n_left stale");
                    assert!(candidate_valid(c, i.n, cfg), "invalid candidate retained");
                }
            }
            validate(&i.left, data, cfg);
            validate(&i.right, data, cfg);
        }
    }

    #[test]
    fn delete_keeps_statistics_exact() {
        let d = data();
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(10);
        let mut root = build_node(&d, d.all_row_ids(), 0, &mut rng, &cfg);
        let mut report = DeleteReport::default();
        // Delete a batch spread across the space.
        let del: Vec<u32> = vec![0, 7, 14, 21, 28, 35, 42];
        delete_from_node(&mut root, &del, &d, 0, &mut rng, &cfg, &mut report);
        assert_eq!(root.n() as usize, d.num_rows() - del.len());
        validate(&root, &d, &cfg);
        let mut ids = Vec::new();
        root.collect_ids(&mut ids);
        for id in &del {
            assert!(!ids.contains(id), "deleted id {id} survives");
        }
    }

    #[test]
    fn delete_everything_leaves_empty_leaf() {
        let d = data();
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(11);
        let mut root = build_node(&d, d.all_row_ids(), 0, &mut rng, &cfg);
        let mut report = DeleteReport::default();
        delete_from_node(&mut root, &d.all_row_ids(), &d, 0, &mut rng, &cfg, &mut report);
        assert_eq!(root.n(), 0);
        assert!(matches!(root, Node::Leaf(_)));
        assert!(report.subtrees_retrained >= 1);
    }

    #[test]
    fn delete_one_class_collapses_to_pure_leaf() {
        let d = data();
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(12);
        let mut root = build_node(&d, d.all_row_ids(), 0, &mut rng, &cfg);
        let positives: Vec<u32> = (0..d.num_rows() as u32)
            .filter(|&r| d.label(r as usize))
            .collect();
        let mut report = DeleteReport::default();
        delete_from_node(&mut root, &positives, &d, 0, &mut rng, &cfg, &mut report);
        assert!(matches!(root, Node::Leaf(_)), "pure data must collapse to a leaf");
        assert_eq!(root.n_pos(), 0);
        validate(&root, &d, &cfg);
    }

    #[test]
    fn sequential_deletions_stay_consistent() {
        let d = data();
        let cfg = cfg();
        let mut rng = StdRng::seed_from_u64(13);
        let mut root = build_node(&d, d.all_row_ids(), 0, &mut rng, &cfg);
        let mut remaining: Vec<u32> = d.all_row_ids();
        let mut report = DeleteReport::default();
        for step in 0..30 {
            let victim = remaining.remove((step * 7) % remaining.len());
            delete_from_node(&mut root, &[victim], &d, 0, &mut rng, &cfg, &mut report);
            assert_eq!(root.n() as usize, remaining.len(), "step {step}");
            validate(&root, &d, &cfg);
        }
    }

    #[test]
    fn random_node_redrawn_when_side_empties() {
        let d = data();
        let mut cfg = cfg();
        cfg.random_depth = 1;
        let mut rng = StdRng::seed_from_u64(14);
        let mut root = build_node(&d, d.all_row_ids(), 0, &mut rng, &cfg);
        let (attr, thr) = match &root {
            Node::Internal(i) => {
                assert!(i.is_random);
                (i.attr, i.threshold)
            }
            _ => panic!("expected internal root"),
        };
        // Delete the entire left side of the random root.
        let left_ids: Vec<u32> = (0..d.num_rows() as u32)
            .filter(|&r| d.code(r as usize, attr as usize) <= thr)
            .collect();
        let mut report = DeleteReport::default();
        delete_from_node(&mut root, &left_ids, &d, 0, &mut rng, &cfg, &mut report);
        assert!(report.subtrees_retrained >= 1);
        validate(&root, &d, &cfg);
        assert_eq!(root.n() as usize, d.num_rows() - left_ids.len());
    }

    #[test]
    fn subtract_sorted_removes_only_targets() {
        let mut ids = vec![5, 1, 9, 3, 7];
        subtract_sorted(&mut ids, &[3, 9]);
        assert_eq!(ids, vec![5, 1, 7]);
    }
}
