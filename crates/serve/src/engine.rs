//! The persistent explain engine: one trained forest, one warm scratch
//! pool, one eval cache — many requests.
//!
//! An [`Engine`] owns everything expensive: the dataset split, the
//! trained DaRE forest, and the cross-request [`EvalCache`]. Calling
//! [`Engine::serve`] brings up a bounded work queue drained by a fixed
//! worker pool (threads come from [`fume_tabular::workers`], the
//! workspace's single threading choke point) and hands the caller an
//! [`EngineHandle`] to submit jobs through. Every job funnels through
//! [`fume_core::Fume::run`] with [`RemovalSpec::Shared`], so the server
//! executes the exact same code path as the library and the CLI.
//!
//! Admission control is strict: a full queue rejects with
//! [`ServeError::Busy`] immediately — submission never blocks and never
//! hangs. Shutdown is a graceful drain: jobs already queued complete,
//! new submissions are refused, and `serve` returns only after every
//! worker has exited.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use fume_obs::clock::Duration;
use fume_obs::sync::{Counter, TrackedCondvar, TrackedGuard, TrackedMutex};

use fume_core::checkpoint::{self, CheckpointError};
use fume_core::{DareRemoval, ExplainRequest, Fume, FumeConfig, FumeError, FumeReport, RemovalSpec};
use fume_fairness::FairnessMetric;
use fume_forest::DareForest;
use fume_lattice::SupportRange;
use fume_obs::clock::Stopwatch;
use fume_tabular::{workers, Dataset, GroupSpec};

use crate::cache::{rho_scope, CacheStats, EvalCache, ScopedMemo};

/// Sizing and placement knobs for an [`Engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOptions {
    /// Worker threads draining the job queue (concurrent jobs).
    pub workers: usize,
    /// Maximum number of *queued* (not yet running) jobs before
    /// submissions are rejected with [`ServeError::Busy`].
    pub queue_depth: usize,
    /// Eval-parallelism *within* one job (`FumeConfig::n_jobs` of the
    /// per-job config). Keep at 1 when `workers > 1`: cross-job
    /// parallelism already saturates the scratch pool.
    pub job_jobs: usize,
    /// Entry capacity of the cross-request eval cache; 0 disables it.
    pub cache_capacity: usize,
    /// When set, the engine persists its normalized forest here and
    /// gives every job its own crash-resumable search checkpoint
    /// directory (`<root>/job-<id>`).
    pub checkpoint_root: Option<std::path::PathBuf>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 16,
            job_jobs: 1,
            cache_capacity: 4096,
            checkpoint_root: None,
        }
    }
}

/// Per-request overrides of the engine's base [`FumeConfig`]. Only the
/// search-shaping knobs are overridable per request; the dataset, the
/// forest, and the worker layout are engine-lifetime decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplainOverrides {
    /// Fairness metric to explain (engine default when `None`).
    pub metric: Option<FairnessMetric>,
    /// Support range `(min, max)` for pruning rule 2.
    pub support: Option<(f64, f64)>,
    /// Interpretability cap on literals per subset.
    pub max_literals: Option<usize>,
    /// How many subsets to report.
    pub top_k: Option<usize>,
    /// Debug-build-only test facility: sleep this long before running
    /// the search, to make queue-full and shutdown windows reachable
    /// deterministically from tests. Ignored in release builds.
    pub sleep_ms: u64,
}

/// What a job asks the engine to do.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Run the FUME search with the given overrides.
    Explain(ExplainOverrides),
    /// Snapshot the engine's counters (queued like any job, so the
    /// snapshot orders after previously submitted work).
    Stats,
}

/// A successful job's payload.
#[derive(Debug, Clone)]
pub enum JobReply {
    /// The explain report.
    Report(FumeReport),
    /// The counter snapshot.
    Stats(EngineStats),
}

/// How a job failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The queue was full; try again later. Carries the configured
    /// depth so clients can size their backoff.
    Busy {
        /// The engine's configured queue depth.
        queue_depth: usize,
    },
    /// The engine is draining and accepts no new work.
    ShuttingDown,
    /// The request itself was malformed (bad support range, unknown
    /// metric tag, ...).
    BadRequest(String),
    /// The underlying FUME run failed.
    Fume(FumeError),
    /// The job panicked; the worker survived and the engine keeps
    /// serving.
    JobPanicked,
}

impl ServeError {
    /// A stable machine-readable discriminant (the protocol's
    /// `error.kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Busy { .. } => "busy",
            Self::ShuttingDown => "shutting_down",
            Self::BadRequest(_) => "bad_request",
            Self::Fume(_) => "fume",
            Self::JobPanicked => "job_panicked",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Busy { queue_depth } => {
                write!(f, "engine busy: queue full at depth {queue_depth}")
            }
            Self::ShuttingDown => f.write_str("engine is shutting down"),
            Self::BadRequest(why) => write!(f, "bad request: {why}"),
            Self::Fume(e) => write!(f, "explain failed: {e}"),
            Self::JobPanicked => f.write_str("job panicked"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FumeError> for ServeError {
    fn from(e: FumeError) -> Self {
        Self::Fume(e)
    }
}

/// The result a [`Ticket`] resolves to.
pub type JobOutcome = Result<JobReply, ServeError>;

/// Monotonic engine counters plus the cache's view, as of one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Jobs executed (including failed ones).
    pub jobs: u64,
    /// Jobs that returned an error or panicked.
    pub jobs_failed: u64,
    /// Submissions refused because the queue was full.
    pub busy_rejections: u64,
    /// The eval cache's counters.
    pub cache: CacheStats,
}

struct Slot {
    result: TrackedMutex<Option<JobOutcome>>,
    done: TrackedCondvar,
}

/// A claim on one submitted job's eventual outcome. Every accepted
/// submission resolves — drained, failed, and panicked jobs all fill
/// their ticket.
#[must_use = "a ticket that is never waited on discards the job's outcome"]
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the job finishes and takes its outcome.
    pub fn wait(self) -> JobOutcome {
        let mut guard = self.slot.result.lock();
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self.slot.done.wait(guard);
        }
    }
}

struct Job {
    id: u64,
    spec: JobSpec,
    slot: Arc<Slot>,
    enqueued: Stopwatch,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared<'e> {
    engine: &'e Engine,
    removal: DareRemoval<'e>,
    state: TrackedMutex<QueueState>,
    work: TrackedCondvar,
    next_id: Counter,
}

impl Shared<'_> {
    fn lock(&self) -> TrackedGuard<'_, QueueState> {
        self.state.lock()
    }

    fn execute(&self, id: u64, spec: &JobSpec) -> JobOutcome {
        match spec {
            JobSpec::Stats => Ok(JobReply::Stats(self.engine.stats())),
            JobSpec::Explain(overrides) => {
                let _span = fume_obs::span!("fume.serve.job", job = id);
                fume_obs::fault::fault_point("serve-mid-job");
                if overrides.sleep_ms > 0 && cfg!(debug_assertions) {
                    std::thread::sleep(Duration::from_millis(overrides.sleep_ms));
                }
                let engine = self.engine;
                let cfg = engine.job_config(id, overrides)?;
                let scope = rho_scope(engine.fingerprint, cfg.metric, &cfg.forest);
                let memo = ScopedMemo::new(&engine.cache, scope);
                let fume = Fume::new(cfg);
                let request = ExplainRequest::new(&engine.train, &engine.test, engine.group)
                    .with_model(&engine.forest)
                    .with_removal(RemovalSpec::Shared(&self.removal))
                    .with_memo(&memo);
                let report = fume.run(&request)?;
                Ok(JobReply::Report(report))
            }
        }
    }
}

fn worker_loop(shared: &Shared<'_>, _index: usize) {
    loop {
        let job = {
            let mut state = shared.lock();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.work.wait(state);
            }
        };
        fume_obs::histogram!("fume.serve.queue_wait_ns", job.enqueued.elapsed_nanos());
        shared.engine.jobs.add(1);
        fume_obs::counter!("fume.serve.jobs", 1);
        let outcome = catch_unwind(AssertUnwindSafe(|| shared.execute(job.id, &job.spec)))
            .unwrap_or(Err(ServeError::JobPanicked));
        if outcome.is_err() {
            shared.engine.jobs_failed.add(1);
            fume_obs::counter!("fume.serve.jobs_failed", 1);
        }
        // fume-lint: allow(F010) -- lock-order: serve.engine.queue < serve.engine.slot (the queue guard is released before a slot result is filled)
        let mut result = job.slot.result.lock();
        *result = Some(outcome);
        job.slot.done.notify_all();
    }
}

/// The submission surface handed to [`Engine::serve`]'s closure. Copy
/// it freely into client threads; all methods are `&self` and
/// non-blocking except [`Ticket::wait`].
#[derive(Clone, Copy)]
pub struct EngineHandle<'s, 'e> {
    shared: &'s Shared<'e>,
}

impl EngineHandle<'_, '_> {
    /// Submits a job. Returns immediately: either a [`Ticket`] or a
    /// typed refusal ([`ServeError::Busy`] / [`ServeError::ShuttingDown`]).
    pub fn submit(&self, spec: JobSpec) -> Result<Ticket, ServeError> {
        let engine = self.shared.engine;
        let mut state = self.shared.lock();
        if state.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if state.queue.len() >= engine.opts.queue_depth {
            drop(state);
            engine.busy_rejections.add(1);
            fume_obs::counter!("fume.serve.busy_rejections", 1);
            return Err(ServeError::Busy { queue_depth: engine.opts.queue_depth });
        }
        let slot = Arc::new(Slot {
            result: TrackedMutex::new("serve.engine.slot", None),
            done: TrackedCondvar::new(),
        });
        let job = Job {
            id: self.shared.next_id.add(1),
            spec,
            slot: Arc::clone(&slot),
            enqueued: Stopwatch::start(),
        };
        state.queue.push_back(job);
        drop(state);
        self.shared.work.notify_one();
        Ok(Ticket { slot })
    }

    /// Convenience: submit an explain job.
    pub fn explain(&self, overrides: ExplainOverrides) -> Result<Ticket, ServeError> {
        self.submit(JobSpec::Explain(overrides))
    }

    /// The engine's counters right now (unordered with queued work; for
    /// an ordered snapshot submit [`JobSpec::Stats`]).
    pub fn stats(&self) -> EngineStats {
        self.shared.engine.stats()
    }

    /// Begins the graceful drain: refuses new work, wakes idle workers,
    /// lets queued jobs finish.
    pub fn shutdown(&self) {
        let mut state = self.shared.lock();
        state.shutting_down = true;
        drop(state);
        self.shared.work.notify_all();
    }

    /// Whether [`shutdown`](Self::shutdown) has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.lock().shutting_down
    }

    /// Jobs currently waiting in the queue (not yet picked up).
    pub fn queue_len(&self) -> usize {
        self.shared.lock().queue.len()
    }
}

/// A persistent FUME explain engine: dataset + trained forest + eval
/// cache, amortized across every request it serves.
pub struct Engine {
    config: FumeConfig,
    opts: EngineOptions,
    train: Dataset,
    test: Dataset,
    group: GroupSpec,
    forest: DareForest,
    fingerprint: u64,
    cache: EvalCache,
    jobs: Counter,
    jobs_failed: Counter,
    busy_rejections: Counter,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("train_rows", &self.train.num_rows())
            .field("test_rows", &self.test.num_rows())
            .field("group", &self.group)
            .field("opts", &self.opts)
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

impl Engine {
    /// Trains the forest from `config` and builds the engine around it.
    pub fn new(
        config: FumeConfig,
        train: Dataset,
        test: Dataset,
        group: GroupSpec,
        opts: EngineOptions,
    ) -> Result<Self, FumeError> {
        if train.is_empty() || test.is_empty() {
            return Err(FumeError::EmptyData);
        }
        let forest = {
            let _span = fume_obs::span!("fume.phase.train");
            DareForest::fit(&train, config.forest.clone())
        };
        Self::with_forest(config, train, test, group, forest, opts)
    }

    /// Builds the engine around an already-trained forest (which must
    /// have been fitted on exactly the rows of `train`).
    pub fn with_forest(
        config: FumeConfig,
        train: Dataset,
        test: Dataset,
        group: GroupSpec,
        forest: DareForest,
        opts: EngineOptions,
    ) -> Result<Self, FumeError> {
        if train.is_empty() || test.is_empty() {
            return Err(FumeError::EmptyData);
        }
        // Persist-and-reload once so every job sees the forest exactly as
        // a resumed run would — keeps served reports byte-identical to
        // checkpointed CLI runs.
        let forest = match &opts.checkpoint_root {
            Some(root) => {
                std::fs::create_dir_all(root).map_err(CheckpointError::from)?;
                checkpoint::normalize_forest(root, &forest)?
            }
            None => forest,
        };
        let fingerprint = checkpoint::fingerprint(&train, &test, group);
        let cache = EvalCache::new(opts.cache_capacity);
        Ok(Self {
            config,
            opts,
            train,
            test,
            group,
            forest,
            fingerprint,
            cache,
            jobs: Counter::new(0),
            jobs_failed: Counter::new(0),
            busy_rejections: Counter::new(0),
        })
    }

    /// The engine's base configuration (per-request overrides layer on
    /// top of this).
    pub fn config(&self) -> &FumeConfig {
        &self.config
    }

    /// The engine's sizing options.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The dataset fingerprint every cache scope is derived from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The trained forest being explained.
    pub fn forest(&self) -> &DareForest {
        &self.forest
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            jobs: self.jobs.get(),
            jobs_failed: self.jobs_failed.get(),
            busy_rejections: self.busy_rejections.get(),
            cache: self.cache.stats(),
        }
    }

    /// The per-job config: base config + request overrides + engine
    /// placement (worker layout, per-job checkpoint directory).
    fn job_config(&self, id: u64, overrides: &ExplainOverrides) -> Result<FumeConfig, ServeError> {
        let mut cfg = self.config.clone();
        if let Some(metric) = overrides.metric {
            cfg.metric = metric;
        }
        if let Some((min, max)) = overrides.support {
            cfg.support = SupportRange::new(min, max)
                .map_err(|e| ServeError::BadRequest(format!("support range: {e}")))?;
        }
        if let Some(eta) = overrides.max_literals {
            cfg.max_literals = eta;
        }
        if let Some(k) = overrides.top_k {
            cfg.top_k = k;
        }
        cfg.n_jobs = Some(self.opts.job_jobs.max(1));
        cfg.checkpoint_dir = match &self.opts.checkpoint_root {
            Some(root) => {
                let dir = root.join(format!("job-{id}"));
                std::fs::create_dir_all(&dir)
                    .map_err(|e| ServeError::Fume(CheckpointError::from(e).into()))?;
                Some(dir)
            }
            None => None,
        };
        Ok(cfg)
    }

    /// Runs the engine: brings up the worker pool around a warm scratch
    /// pool, calls `f` with a submission handle, then drains and joins.
    ///
    /// Jobs submitted by `f` (from any thread `f` fans out to — the
    /// handle is `Copy + Sync`) execute on the pool concurrently.
    /// `serve` returns `f`'s value after the queue is drained and every
    /// worker has exited; if `f` panics, the drain still completes
    /// before the panic resumes.
    pub fn serve<T: Send>(&self, f: impl FnOnce(EngineHandle<'_, '_>) -> T + Send) -> T {
        let removal = DareRemoval::new(&self.forest, &self.train);
        {
            use fume_core::RemovalMethod;
            removal.warm(self.opts.workers.max(1) * self.opts.job_jobs.max(1));
            // Pay the cold evaluation build (plan compile, routing index,
            // base predictions) up front too, so the first request hits a
            // fully warm engine. Requests overriding the metric still
            // share this state — it is keyed on (test, group) only.
            removal.prewarm_incremental(&fume_core::BiasEval {
                metric: self.config.metric,
                test: &self.test,
                group: self.group,
            });
        }
        let shared = Shared {
            engine: self,
            removal,
            state: TrackedMutex::new("serve.engine.queue", QueueState::default()),
            work: TrackedCondvar::new(),
            next_id: Counter::new(0),
        };
        workers::scoped_workers(
            self.opts.workers.max(1),
            |i| worker_loop(&shared, i),
            || {
                let handle = EngineHandle { shared: &shared };
                let out = catch_unwind(AssertUnwindSafe(|| f(handle)));
                handle.shutdown();
                match out {
                    Ok(v) => v,
                    Err(payload) => resume_unwind(payload),
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, PoisonError};

    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    /// Engine tests share the process-global fault-injection state and
    /// spin up competing worker pools, so they run one at a time.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn small_engine(opts: EngineOptions) -> Engine {
        let (data, group) = planted_toy().generate_scaled(0.5, 3).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 3).unwrap();
        let config = FumeConfig::default()
            .with_forest(fume_forest::DareConfig::small(3))
            .with_support(SupportRange::new(0.02, 0.25).unwrap());
        Engine::new(config, train, test, group, opts).unwrap()
    }

    #[test]
    fn serves_one_explain_job() {
        let _g = serial();
        let engine = small_engine(EngineOptions { workers: 1, ..EngineOptions::default() });
        let reply = engine
            .serve(|h| h.explain(ExplainOverrides::default()).unwrap().wait())
            .unwrap();
        let JobReply::Report(report) = reply else {
            panic!("expected a report");
        };
        assert!(!report.top_k.is_empty());
        let stats = engine.stats();
        assert_eq!(stats.jobs_failed, 0);
        assert!(stats.cache.misses > 0, "cold run must miss the cache");
    }

    #[test]
    fn repeated_job_is_served_from_cache() {
        let _g = serial();
        let engine = small_engine(EngineOptions { workers: 1, ..EngineOptions::default() });
        let (first, second) = engine.serve(|h| {
            let first = h.explain(ExplainOverrides::default()).unwrap().wait().unwrap();
            let second = h.explain(ExplainOverrides::default()).unwrap().wait().unwrap();
            (first, second)
        });
        let (JobReply::Report(a), JobReply::Report(b)) = (first, second) else {
            panic!("expected two reports");
        };
        assert_eq!(a.to_json(), b.to_json(), "cache hit must not change the report");
        let stats = engine.stats();
        assert!(stats.cache.hits >= stats.cache.misses, "warm run should hit, not re-miss");
        assert!(stats.cache.hits > 0);
    }

    #[test]
    fn queue_full_rejects_with_busy() {
        let _g = serial();
        if !cfg!(debug_assertions) {
            return; // needs the debug-only sleep_ms facility
        }
        let engine = small_engine(EngineOptions {
            workers: 1,
            queue_depth: 1,
            ..EngineOptions::default()
        });
        let outcome = engine.serve(|h| {
            // Occupy the single worker long enough to fill the queue.
            let blocker = h
                .explain(ExplainOverrides { sleep_ms: 300, ..ExplainOverrides::default() })
                .unwrap();
            // Wait until the worker has actually dequeued the blocker.
            while h.queue_len() > 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            let queued = h.explain(ExplainOverrides::default()).unwrap();
            let rejected = h.explain(ExplainOverrides::default());
            let rejected2 = h.submit(JobSpec::Stats);
            let kinds = (
                rejected.err().map(|e| e.kind()),
                rejected2.err().map(|e| e.kind()),
            );
            blocker.wait().unwrap();
            queued.wait().unwrap();
            kinds
        });
        assert_eq!(outcome, (Some("busy"), Some("busy")));
        assert_eq!(engine.stats().busy_rejections, 2);
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_refuses_new_ones() {
        let _g = serial();
        let engine = small_engine(EngineOptions { workers: 1, ..EngineOptions::default() });
        let (queued_ok, refused_kind) = engine.serve(|h| {
            let queued = h
                .explain(ExplainOverrides { sleep_ms: 100, ..ExplainOverrides::default() })
                .unwrap();
            h.shutdown();
            let refused = h.explain(ExplainOverrides::default());
            (queued.wait().is_ok(), refused.err().map(|e| e.kind()))
        });
        assert!(queued_ok, "jobs queued before shutdown must drain to completion");
        assert_eq!(refused_kind, Some("shutting_down"));
    }

    #[test]
    fn panicking_job_fails_its_ticket_but_engine_survives() {
        let _g = serial();
        if !cfg!(debug_assertions) {
            return; // fault injection only exists in debug builds
        }
        let engine = small_engine(EngineOptions { workers: 1, ..EngineOptions::default() });
        let (first_kind, second_ok) = engine.serve(|h| {
            fume_obs::fault::arm("serve-mid-job", 1);
            let doomed = h.explain(ExplainOverrides::default()).unwrap();
            let first = doomed.wait();
            fume_obs::fault::disarm();
            let survivor = h.explain(ExplainOverrides::default()).unwrap();
            (first.err().map(|e| e.kind()), survivor.wait().is_ok())
        });
        assert_eq!(first_kind, Some("job_panicked"));
        assert!(second_ok, "engine must keep serving after a job panic");
        assert_eq!(engine.stats().jobs_failed, 1);
    }

    #[test]
    fn stats_job_orders_after_prior_explains() {
        let _g = serial();
        let engine = small_engine(EngineOptions { workers: 1, ..EngineOptions::default() });
        let stats = engine.serve(|h| {
            let explain = h.explain(ExplainOverrides::default()).unwrap();
            let stats = h.submit(JobSpec::Stats).unwrap();
            explain.wait().unwrap();
            stats.wait().unwrap()
        });
        let JobReply::Stats(stats) = stats else {
            panic!("expected stats");
        };
        assert!(stats.cache.misses > 0, "stats job ran after the explain");
    }

    #[test]
    fn bad_support_range_is_a_bad_request() {
        let _g = serial();
        let engine = small_engine(EngineOptions { workers: 1, ..EngineOptions::default() });
        let kind = engine.serve(|h| {
            h.explain(ExplainOverrides {
                support: Some((0.9, 0.1)),
                ..ExplainOverrides::default()
            })
            .unwrap()
            .wait()
            .err()
            .map(|e| e.kind())
        });
        assert_eq!(kind, Some("bad_request"));
    }
}
