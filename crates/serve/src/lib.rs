//! # fume-serve
//!
//! A persistent, multi-request FUME explain engine.
//!
//! The one-shot pipeline (train a DaRE forest, warm a scratch pool, run
//! one lattice search, exit) wastes its two expensive assets — the
//! trained forest and the warm unlearning pool — after a single
//! question. This crate keeps them alive across requests:
//!
//! * [`Engine`] loads the data and trains (or adopts) the forest
//!   **once**, then serves any number of explain jobs against it;
//! * a fixed worker pool drains a bounded job queue — a full queue
//!   rejects immediately with a typed `busy` error, never a hang;
//! * every `ρ` an unlearn-eval produces is memoised in a
//!   cross-request [`EvalCache`], so a repeated request performs
//!   **zero** unlearning operations;
//! * requests arrive as newline-delimited JSON over stdio
//!   ([`serve_lines`]) or a Unix-domain socket
//!   ([`transport::unix::serve_unix`]), and every job executes through
//!   the same [`fume_core::Fume::run`] entrypoint as the library and
//!   the CLI — one code path, byte-identical reports.
//!
//! ```
//! use fume_core::FumeConfig;
//! use fume_forest::DareConfig;
//! use fume_lattice::SupportRange;
//! use fume_serve::{Engine, EngineOptions, ExplainOverrides, JobReply};
//! use fume_tabular::datasets::planted_toy;
//! use fume_tabular::split::train_test_split;
//!
//! let (data, group) = planted_toy().generate_scaled(0.5, 3).unwrap();
//! let (train, test) = train_test_split(&data, 0.3, 3).unwrap();
//! let config = FumeConfig::default()
//!     .with_forest(DareConfig::small(3))
//!     .with_support(SupportRange::new(0.02, 0.25).unwrap());
//! let engine = Engine::new(config, train, test, group, EngineOptions::default()).unwrap();
//! let reply = engine
//!     .serve(|handle| handle.explain(ExplainOverrides::default()).unwrap().wait())
//!     .unwrap();
//! let JobReply::Report(report) = reply else { panic!("expected a report") };
//! assert!(!report.top_k.is_empty());
//! ```
//!
//! See `docs/serving.md` for the wire protocol and operational notes.

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod protocol;
pub mod transport;

pub use cache::{rho_scope, CacheStats, EvalCache, ScopedMemo};
pub use engine::{
    Engine, EngineHandle, EngineOptions, EngineStats, ExplainOverrides, JobOutcome, JobReply,
    JobSpec, ServeError, Ticket,
};
pub use protocol::{Request, RequestError, PROTOCOL_SCHEMA};
pub use transport::{serve_lines, ServeExit};
