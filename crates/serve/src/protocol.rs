//! The wire protocol: newline-delimited JSON, one request per line, one
//! response per line, responses in request order.
//!
//! ## Requests
//!
//! Every request is a single-line JSON object with an `op` and a
//! caller-chosen `id` (echoed back verbatim):
//!
//! ```json
//! {"op":"explain","id":"r1","metric":"sp","support":[0.05,0.15],"max_literals":2,"top_k":5}
//! {"op":"stats","id":"r2"}
//! {"op":"ping","id":"r3"}
//! {"op":"shutdown","id":"r4"}
//! ```
//!
//! All `explain` fields besides `id` are optional overrides of the
//! engine's base configuration. `metric` accepts the CLI shorthands
//! (`sp`/`eo`/`pp`) and the report-schema tags
//! (`statistical_parity`, ...).
//!
//! ## Responses
//!
//! `{"schema":1,"id":...,"ok":true,...payload...}` on success,
//! `{"schema":1,"id":...,"ok":false,"error":{"kind":...,"message":...}}`
//! on failure. An explain response carries the full versioned report
//! (`FumeReport::to_json`) as its **last** field, so the canonical
//! report encoding appears as a contiguous byte range of the line:
//!
//! ```json
//! {"schema":1,"id":"r1","ok":true,"timing_ns":12345,"report":{"schema":1,...}}
//! ```

use fume_core::report_json::metric_from_tag;
use fume_core::FumeReport;
use fume_fairness::FairnessMetric;
use fume_obs::json::{self, Json};

use crate::engine::{EngineStats, ExplainOverrides, ServeError};

/// The protocol's envelope version.
pub const PROTOCOL_SCHEMA: u64 = 1;

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run an explain job.
    Explain {
        /// Echo id.
        id: String,
        /// Overrides of the engine's base config.
        overrides: ExplainOverrides,
    },
    /// Snapshot engine counters.
    Stats {
        /// Echo id.
        id: String,
    },
    /// Liveness check, answered inline without queueing.
    Ping {
        /// Echo id.
        id: String,
    },
    /// Acknowledge, then drain and stop serving.
    Shutdown {
        /// Echo id.
        id: String,
    },
}

impl Request {
    /// The request's echo id.
    pub fn id(&self) -> &str {
        match self {
            Self::Explain { id, .. } | Self::Stats { id } | Self::Ping { id } | Self::Shutdown { id } => id,
        }
    }
}

/// Why a request line could not be decoded. Carries the `id` when one
/// was recoverable so the error response can still be correlated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The request id, if the line parsed far enough to contain one.
    pub id: Option<String>,
    /// What went wrong.
    pub message: String,
}

fn bad(id: Option<String>, message: impl Into<String>) -> RequestError {
    RequestError { id, message: message.into() }
}

fn parse_metric(tag: &str) -> Option<FairnessMetric> {
    match tag {
        "sp" => Some(FairnessMetric::StatisticalParity),
        "eo" => Some(FairnessMetric::EqualizedOdds),
        "pp" => Some(FairnessMetric::PredictiveParity),
        other => metric_from_tag(other),
    }
}

fn parse_usize(obj: &Json, key: &str, id: &str) -> Result<Option<usize>, RequestError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => match v.as_u64() {
            Some(n) => Ok(Some(n as usize)),
            None => Err(bad(
                Some(id.to_string()),
                format!("field `{key}` must be a non-negative integer"),
            )),
        },
    }
}

/// Decodes one request line.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let obj = json::parse(line).map_err(|e| bad(None, format!("malformed JSON: {} at byte {}", e.msg, e.at)))?;
    if !matches!(obj, Json::Obj(_)) {
        return Err(bad(None, "request must be a JSON object"));
    }
    let id = obj
        .get("id")
        .and_then(Json::as_str)
        .map(str::to_string);
    let Some(op) = obj.get("op").and_then(Json::as_str) else {
        return Err(bad(id, "missing string field `op`"));
    };
    let Some(id) = id else {
        return Err(bad(None, "missing string field `id`"));
    };
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "explain" => {
            let mut overrides = ExplainOverrides::default();
            if let Some(tag) = obj.get("metric") {
                let Some(tag) = tag.as_str() else {
                    return Err(bad(Some(id), "field `metric` must be a string"));
                };
                let Some(metric) = parse_metric(tag) else {
                    return Err(bad(Some(id), format!("unknown metric `{tag}`")));
                };
                overrides.metric = Some(metric);
            }
            match obj.get("support") {
                None | Some(Json::Null) => {}
                Some(Json::Arr(bounds)) => {
                    let pair = match bounds.as_slice() {
                        [lo, hi] => lo.as_f64().zip(hi.as_f64()),
                        _ => None,
                    };
                    let Some((lo, hi)) = pair else {
                        return Err(bad(Some(id), "field `support` must be [min, max] numbers"));
                    };
                    overrides.support = Some((lo, hi));
                }
                Some(_) => {
                    return Err(bad(Some(id), "field `support` must be [min, max] numbers"));
                }
            }
            overrides.max_literals = parse_usize(&obj, "max_literals", &id)?;
            overrides.top_k = parse_usize(&obj, "top_k", &id)?;
            if let Some(ms) = parse_usize(&obj, "sleep_ms", &id)? {
                overrides.sleep_ms = ms as u64;
            }
            Ok(Request::Explain { id, overrides })
        }
        other => Err(bad(Some(id), format!("unknown op `{other}`"))),
    }
}

fn envelope(id: &str, ok: bool) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"schema\":");
    out.push_str(&PROTOCOL_SCHEMA.to_string());
    out.push_str(",\"id\":");
    json::write_str(&mut out, id);
    out.push_str(",\"ok\":");
    out.push_str(if ok { "true" } else { "false" });
    out
}

/// Encodes a successful explain response (single line; the canonical
/// report is the last field).
pub fn render_report(id: &str, timing_ns: u64, report: &FumeReport) -> String {
    let mut out = envelope(id, true);
    out.push_str(",\"timing_ns\":");
    out.push_str(&timing_ns.to_string());
    out.push_str(",\"report\":");
    out.push_str(&report.to_json());
    out.push('}');
    out
}

/// Encodes a stats response.
pub fn render_stats(id: &str, stats: &EngineStats) -> String {
    let mut out = envelope(id, true);
    out.push_str(",\"stats\":{");
    let fields: [(&str, u64); 7] = [
        ("jobs", stats.jobs),
        ("jobs_failed", stats.jobs_failed),
        ("busy_rejections", stats.busy_rejections),
        ("cache_hits", stats.cache.hits),
        ("cache_misses", stats.cache.misses),
        ("cache_evictions", stats.cache.evictions),
        ("cache_entries", stats.cache.entries),
    ];
    let mut first = true;
    for (key, value) in fields {
        json::write_key(&mut out, &mut first, key);
        out.push_str(&value.to_string());
    }
    out.push_str("}}");
    out
}

/// Encodes a ping response.
pub fn render_pong(id: &str) -> String {
    let mut out = envelope(id, true);
    out.push_str(",\"pong\":true}");
    out
}

/// Encodes the shutdown acknowledgement.
pub fn render_shutdown_ack(id: &str) -> String {
    let mut out = envelope(id, true);
    out.push_str(",\"shutdown\":true}");
    out
}

/// Encodes an error response. `id` is `null` when the request line was
/// too malformed to recover one.
pub fn render_error(id: Option<&str>, kind: &str, message: &str) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"schema\":");
    out.push_str(&PROTOCOL_SCHEMA.to_string());
    out.push_str(",\"id\":");
    match id {
        Some(id) => json::write_str(&mut out, id),
        None => out.push_str("null"),
    }
    out.push_str(",\"ok\":false,\"error\":{\"kind\":");
    json::write_str(&mut out, kind);
    out.push_str(",\"message\":");
    json::write_str(&mut out, message);
    out.push_str("}}");
    out
}

/// Encodes a [`ServeError`] as an error response.
pub fn render_serve_error(id: &str, error: &ServeError) -> String {
    render_error(Some(id), error.kind(), &error.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request(r#"{"op":"ping","id":"a"}"#), Ok(Request::Ping { id: "a".into() }));
        assert_eq!(parse_request(r#"{"op":"stats","id":"b"}"#), Ok(Request::Stats { id: "b".into() }));
        assert_eq!(
            parse_request(r#"{"op":"shutdown","id":"c"}"#),
            Ok(Request::Shutdown { id: "c".into() })
        );
        let req = parse_request(
            r#"{"op":"explain","id":"d","metric":"pp","support":[0.02,0.3],"max_literals":3,"top_k":7}"#,
        )
        .unwrap();
        let Request::Explain { id, overrides } = req else { panic!("expected explain") };
        assert_eq!(id, "d");
        assert_eq!(overrides.metric, Some(FairnessMetric::PredictiveParity));
        assert_eq!(overrides.support, Some((0.02, 0.3)));
        assert_eq!(overrides.max_literals, Some(3));
        assert_eq!(overrides.top_k, Some(7));
    }

    #[test]
    fn metric_accepts_shorthand_and_schema_tags() {
        for (tag, metric) in [
            ("sp", FairnessMetric::StatisticalParity),
            ("eo", FairnessMetric::EqualizedOdds),
            ("pp", FairnessMetric::PredictiveParity),
            ("statistical_parity", FairnessMetric::StatisticalParity),
            ("equal_opportunity", FairnessMetric::EqualOpportunity),
        ] {
            assert_eq!(parse_metric(tag), Some(metric), "tag {tag}");
        }
        assert_eq!(parse_metric("nope"), None);
    }

    #[test]
    fn bad_lines_keep_the_id_when_recoverable() {
        let err = parse_request(r#"{"op":"warp","id":"x"}"#).unwrap_err();
        assert_eq!(err.id.as_deref(), Some("x"));
        let err = parse_request("not json").unwrap_err();
        assert_eq!(err.id, None);
        let err = parse_request(r#"{"op":"explain","id":"y","support":"wide"}"#).unwrap_err();
        assert_eq!(err.id.as_deref(), Some("y"));
        let err = parse_request(r#"{"op":"explain"}"#).unwrap_err();
        assert_eq!(err.id, None);
    }

    #[test]
    fn responses_are_single_canonical_lines() {
        let pong = render_pong("r1");
        assert_eq!(pong, r#"{"schema":1,"id":"r1","ok":true,"pong":true}"#);
        assert!(!pong.contains('\n'));
        let err = render_error(None, "bad_request", "nope \"quoted\"");
        assert_eq!(
            err,
            r#"{"schema":1,"id":null,"ok":false,"error":{"kind":"bad_request","message":"nope \"quoted\""}}"#
        );
        let stats = render_stats(
            "s",
            &EngineStats {
                jobs: 2,
                jobs_failed: 0,
                busy_rejections: 1,
                cache: crate::cache::CacheStats { hits: 5, misses: 3, evictions: 0, entries: 3 },
            },
        );
        assert_eq!(
            stats,
            r#"{"schema":1,"id":"s","ok":true,"stats":{"jobs":2,"jobs_failed":0,"busy_rejections":1,"cache_hits":5,"cache_misses":3,"cache_evictions":0,"cache_entries":3}}"#
        );
    }

    #[test]
    fn report_is_the_last_field_of_an_explain_response() {
        let report = FumeReport {
            top_k: Vec::new(),
            evaluated: Vec::new(),
            levels: Vec::new(),
            metric: FairnessMetric::StatisticalParity,
            original_bias: 0.0,
            original_fairness: 0.0,
            original_accuracy: 0.0,
            unlearning_operations: 0,
            search_time: std::time::Duration::ZERO,
            training_time: std::time::Duration::ZERO,
            unlearn_time: std::time::Duration::ZERO,
        };
        let line = render_report("r9", 42, &report);
        let inner = report.to_json();
        assert!(line.ends_with(&format!("{inner}}}")));
        assert!(line.starts_with(r#"{"schema":1,"id":"r9","ok":true,"timing_ns":42,"report":{"#));
    }
}
