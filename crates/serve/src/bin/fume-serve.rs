//! `fume-serve` — a persistent FUME explain server.
//!
//! Loads a CSV once, trains the DaRE forest once, keeps the unlearning
//! scratch pool warm and the eval cache hot, and serves explain
//! requests as newline-delimited JSON — over stdin/stdout, and
//! optionally a Unix-domain socket at the same time.
//!
//! ```text
//! fume-serve --data loans.csv --label approved --positive yes \
//!     --sensitive sex --privileged male --workers 2
//! ```
//!
//! Then, per line on stdin (see `docs/serving.md` for the protocol):
//!
//! ```text
//! {"op":"explain","id":"r1"}
//! {"op":"stats","id":"r2"}
//! {"op":"shutdown","id":"r3"}
//! ```

use std::io::{BufReader, Write};
use std::process::exit;

use fume_core::{checkpoint, Fume, FumeConfig};
use fume_fairness::FairnessMetric;
use fume_forest::DareConfig;
use fume_lattice::{LiteralGen, SupportRange};
use fume_serve::transport::unix::serve_unix;
use fume_serve::{serve_lines, Engine, EngineHandle, EngineOptions};
use fume_tabular::csv::{read_csv, CsvOptions};
use fume_tabular::discretize::{discretize, Discretizer};
use fume_tabular::split::train_test_split;
use fume_tabular::{workers, Dataset, GroupSpec};

struct Args {
    data: String,
    label: String,
    positive: String,
    sensitive: String,
    privileged: String,
    metric: FairnessMetric,
    support: SupportRange,
    max_literals: usize,
    top_k: usize,
    trees: usize,
    depth: usize,
    seed: u64,
    test_fraction: f64,
    bins: usize,
    ranges: bool,
    trace: Option<String>,
    workers: usize,
    queue_depth: usize,
    jobs_within: usize,
    cache_capacity: usize,
    socket: Option<String>,
    acceptors: usize,
    checkpoint_root: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fume-serve --data FILE.csv --label COL --positive VALUE \
         --sensitive COL --privileged VALUE\n\
         dataset/model options (as in fume-cli):\n\
                  --metric <sp|eo|pp>   default fairness metric (default sp)\n\
                  --support MIN:MAX     default support range (default 0.05:0.15)\n\
                  --max-literals N      default interpretability cap (default 2)\n\
                  --top-k K             default subsets to report (default 5)\n\
                  --trees N             forest size (default 50)\n\
                  --depth D             max tree depth (default 10)\n\
                  --seed S              RNG seed (default 0)\n\
                  --test-fraction F     held-out fraction (default 0.3)\n\
                  --bins B              numeric discretization bins (default 5)\n\
                  --ranges              generate <=/>= literals on binned columns\n\
                  --trace FILE          write a JSONL span/counter trace (or set FUME_TRACE)\n\
         serving options:\n\
                  --workers N           concurrent explain jobs (default 2)\n\
                  --queue-depth N       queued jobs before `busy` (default 16)\n\
                  --jobs-within N       eval threads inside one job (default 1)\n\
                  --cache-capacity N    eval-cache entries, 0 disables (default 4096)\n\
                  --socket PATH         also serve a Unix-domain socket at PATH\n\
                  --acceptors N         concurrent socket connections (default 2)\n\
                  --checkpoint-root DIR crash-resumable per-job checkpoints under DIR"
    );
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("fume-serve: {msg}");
    exit(1)
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        data: String::new(),
        label: "label".into(),
        positive: "1".into(),
        sensitive: String::new(),
        privileged: String::new(),
        metric: FairnessMetric::StatisticalParity,
        support: SupportRange::medium(),
        max_literals: 2,
        top_k: 5,
        trees: 50,
        depth: 10,
        seed: 0,
        test_fraction: 0.3,
        bins: 5,
        ranges: false,
        trace: std::env::var("FUME_TRACE").ok().filter(|s| !s.is_empty()),
        workers: 2,
        queue_depth: 16,
        jobs_within: 1,
        cache_capacity: 4096,
        socket: None,
        acceptors: 2,
        checkpoint_root: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--data" => args.data = value(),
            "--label" => args.label = value(),
            "--positive" => args.positive = value(),
            "--sensitive" => args.sensitive = value(),
            "--privileged" => args.privileged = value(),
            "--metric" => {
                args.metric = match value().as_str() {
                    "sp" => FairnessMetric::StatisticalParity,
                    "eo" => FairnessMetric::EqualizedOdds,
                    "pp" => FairnessMetric::PredictiveParity,
                    other => fail(format!("unknown metric `{other}` (sp|eo|pp)")),
                }
            }
            "--support" => {
                let v = value();
                let Some((lo, hi)) = v.split_once(':') else {
                    fail(format!("--support expects MIN:MAX, got `{v}`"))
                };
                let (lo, hi) = match (lo.parse(), hi.parse()) {
                    (Ok(a), Ok(b)) => (a, b),
                    _ => fail(format!("--support expects numbers, got `{v}`")),
                };
                args.support = SupportRange::new(lo, hi).unwrap_or_else(|e| fail(e));
            }
            "--max-literals" => args.max_literals = value().parse().unwrap_or_else(|_| usage()),
            "--top-k" => args.top_k = value().parse().unwrap_or_else(|_| usage()),
            "--trees" => args.trees = value().parse().unwrap_or_else(|_| usage()),
            "--depth" => args.depth = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--test-fraction" => {
                args.test_fraction = value().parse().unwrap_or_else(|_| usage())
            }
            "--bins" => args.bins = value().parse().unwrap_or_else(|_| usage()),
            "--ranges" => args.ranges = true,
            "--trace" => args.trace = Some(value()),
            "--workers" => args.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => args.queue_depth = value().parse().unwrap_or_else(|_| usage()),
            "--jobs-within" => args.jobs_within = value().parse().unwrap_or_else(|_| usage()),
            "--cache-capacity" => {
                args.cache_capacity = value().parse().unwrap_or_else(|_| usage())
            }
            "--socket" => args.socket = Some(value()),
            "--acceptors" => args.acceptors = value().parse().unwrap_or_else(|_| usage()),
            "--checkpoint-root" => args.checkpoint_root = Some(value()),
            "--help" | "-h" => usage(),
            other => fail(format!("unknown flag `{other}`")),
        }
    }
    if args.data.is_empty() || args.sensitive.is_empty() || args.privileged.is_empty() {
        usage();
    }
    args
}

/// The same loading pipeline as `fume-cli`, so a served report is
/// byte-identical to a CLI run over the same flags.
fn load(args: &Args) -> (Dataset, Dataset, GroupSpec) {
    let opts = CsvOptions {
        label_column: args.label.clone(),
        positive_label: args.positive.clone(),
        ..CsvOptions::default()
    };
    let raw = read_csv(&args.data, &opts).unwrap_or_else(|e| fail(e));
    let data = discretize(&raw, Discretizer::Quantile(args.bins)).unwrap_or_else(|e| fail(e));
    let attr = data
        .schema()
        .attribute_index(&args.sensitive)
        .unwrap_or_else(|e| fail(e));
    let privileged_code = data
        .schema()
        .attribute(attr)
        .ok()
        .and_then(|a| a.code_of(&args.privileged))
        .unwrap_or_else(|| {
            fail(format!(
                "value `{}` not found in column `{}`",
                args.privileged, args.sensitive
            ))
        });
    let group = GroupSpec::new(attr, privileged_code);
    let (train, test) =
        train_test_split(&data, args.test_fraction, args.seed).unwrap_or_else(|e| fail(e));
    (train, test, group)
}

fn config(args: &Args) -> FumeConfig {
    Fume::builder()
        .metric(args.metric)
        .support(args.support)
        .max_literals(args.max_literals)
        .top_k(args.top_k)
        .literal_gen(if args.ranges {
            LiteralGen::WithRanges
        } else {
            LiteralGen::EqOnly
        })
        .forest(
            DareConfig::default()
                .with_trees(args.trees)
                .with_max_depth(args.depth)
                .with_seed(args.seed),
        )
        .into_config()
}

/// FNV-1a over a canonical rendering of the engine-defining flags
/// (mirrors `fume-cli`'s `config_hash` for `fume-trace diff`).
fn config_hash(args: &Args) -> u64 {
    let canonical = format!(
        "serve|{:?}|{}:{}|{}|{}|{}|{}|{}|{}|{}",
        args.metric,
        args.support.min,
        args.support.max,
        args.max_literals,
        args.top_k,
        args.trees,
        args.depth,
        args.seed,
        args.bins,
        args.ranges,
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serves stdin/stdout until EOF or a `shutdown` request, then starts
/// the engine drain (which also stops any socket acceptors).
fn stdio_loop(handle: EngineHandle<'_, '_>) {
    serve_lines(handle, BufReader::new(std::io::stdin()), std::io::stdout());
    handle.shutdown();
}

fn main() {
    let args = parse_args();
    if args.trace.is_some() {
        fume_obs::install();
    }
    let (train, test, group) = load(&args);
    eprintln!(
        "fume-serve: loaded {} train / {} test rows, {} attributes; sensitive `{}` (privileged `{}`)",
        train.num_rows(),
        test.num_rows(),
        train.num_attributes(),
        args.sensitive,
        args.privileged
    );
    if args.trace.is_some() {
        let rec = fume_obs::global().expect("recorder installed when tracing");
        rec.set_meta("seed", args.seed.to_string());
        rec.set_meta("config_hash", format!("{:016x}", config_hash(&args)));
        rec.set_meta(
            "dataset_fingerprint",
            format!("{:016x}", checkpoint::fingerprint(&train, &test, group)),
        );
        rec.set_meta("dataset", args.data.clone());
    }
    let opts = EngineOptions {
        workers: args.workers.max(1),
        queue_depth: args.queue_depth.max(1),
        job_jobs: args.jobs_within.max(1),
        cache_capacity: args.cache_capacity,
        checkpoint_root: args.checkpoint_root.as_ref().map(Into::into),
    };
    let engine = Engine::new(config(&args), train, test, group, opts)
        .unwrap_or_else(|e| fail(e));
    eprintln!(
        "fume-serve: engine ready ({} workers, queue depth {}, cache capacity {}); \
         reading NDJSON requests from stdin{}",
        args.workers.max(1),
        args.queue_depth.max(1),
        args.cache_capacity,
        args.socket.as_deref().map(|s| format!(" and socket {s}")).unwrap_or_default()
    );
    engine.serve(|handle| match &args.socket {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            workers::scoped_workers(
                1,
                |_| {
                    if let Err(e) = serve_unix(handle, &path, args.acceptors.max(1)) {
                        eprintln!("fume-serve: socket error: {e}");
                        handle.shutdown();
                    }
                },
                || stdio_loop(handle),
            )
        }
        None => stdio_loop(handle),
    });
    // With lock-order tracking active (debug builds or FUME_DEEPCHECK=1)
    // any inversion recorded during the session is a correctness bug:
    // report every cycle and refuse to exit cleanly. With tracking off
    // the graph is empty and this is free.
    let cycles = fume_obs::sync::cycle_reports();
    if !cycles.is_empty() {
        for cycle in &cycles {
            eprintln!("fume-serve: {cycle}");
        }
        fail(format!("{} lock-order cycle(s) detected during the session", cycles.len()));
    }
    let stats = engine.stats();
    eprintln!(
        "fume-serve: drained; {} jobs ({} failed, {} busy rejections), cache {} hits / {} misses / {} evictions",
        stats.jobs,
        stats.jobs_failed,
        stats.busy_rejections,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions
    );
    if let Some(path) = &args.trace {
        let rec = fume_obs::global().expect("recorder installed when tracing");
        match std::fs::write(path, rec.events_to_jsonl()) {
            Ok(()) => {
                eprintln!("fume-serve: wrote {} trace events to {path}", rec.event_count())
            }
            Err(e) => fail(format!("cannot write trace `{path}`: {e}")),
        }
        let _ = write!(std::io::stderr(), "\n{}", rec.profile_table());
    }
}
