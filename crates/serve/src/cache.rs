//! The cross-request eval memo-cache.
//!
//! One unlearn-eval — delete the subset, measure the counterfactual
//! bias, roll back — dominates a request's cost, and overlapping
//! requests against the same engine re-derive the same `ρ` values: a
//! repeated request re-derives *all* of them. [`EvalCache`] memoises
//! `ρ` across requests, keyed by everything it depends on:
//!
//! * the **scope** — a hash of the dataset fingerprint
//!   ([`fume_core::checkpoint::fingerprint`]), the fairness metric, and
//!   the forest hyperparameters (the model's identity), computed by
//!   [`rho_scope`]. Search bounds (support range, `η`, `top_k`) are
//!   deliberately *not* in the scope: `ρ` of a given row selection does
//!   not depend on them, which is what lets overlapping requests with
//!   different bounds share work;
//! * the **canonical row selection** — the exact sorted row ids, stored
//!   in full (no hashing of the selection itself, so a collision can
//!   never alias two subsets).
//!
//! Eviction is exact LRU, bounded by entry count. Counters:
//! `fume.serve.cache.hits` / `.misses` / `.evictions`.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use fume_obs::sync::{Counter, TrackedGuard, TrackedMutex};

use fume_core::report_json::metric_tag;
use fume_core::EvalMemo;
use fume_fairness::FairnessMetric;
use fume_forest::DareConfig;

/// Everything `ρ` depends on besides the row selection, folded into one
/// scope hash (FNV-1a). Requests whose scope hashes agree may share
/// cached `ρ` values.
pub fn rho_scope(dataset_fingerprint: u64, metric: FairnessMetric, forest: &DareConfig) -> u64 {
    let mut bytes = Vec::with_capacity(64);
    bytes.extend_from_slice(&dataset_fingerprint.to_le_bytes());
    bytes.extend_from_slice(metric_tag(metric).as_bytes());
    fume_forest::persist::encode_config_into(&mut bytes, forest);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Debug, Hash, PartialEq, Eq)]
struct Key {
    scope: u64,
    rows: Box<[u32]>,
}

#[derive(Debug)]
struct Entry {
    rho: f64,
    /// The logical timestamp of the last touch; also this entry's key in
    /// `Inner::order`.
    tick: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Arc<Key>, Entry>,
    /// Least-recently-used first: logical timestamp → key. Every map
    /// entry has exactly one order entry (`Entry::tick`).
    order: BTreeMap<u64, Arc<Key>>,
    tick: u64,
}

/// Point-in-time cache statistics (monotonic counters + current size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (the caller then paid an unlearn-eval).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// A bounded, exact-LRU, thread-safe `ρ` cache shared by every job of an
/// engine. Capacity 0 disables caching entirely (every lookup misses,
/// nothing is stored).
#[derive(Debug)]
pub struct EvalCache {
    inner: TrackedMutex<Inner>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

/// Poison recovery for the cache interior: a worker that died
/// mid-operation cannot have left a torn entry behind the lock, but
/// re-deriving a few `ρ` values is cheaper than reasoning about it.
fn reset_cache(inner: &mut Inner) {
    fume_obs::counter!("fume.serve.cache.poison_recoveries", 1);
    inner.map.clear();
    inner.order.clear();
}

impl EvalCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: TrackedMutex::with_recovery("serve.cache", Inner::default(), reset_cache),
            capacity,
            hits: Counter::new(0),
            misses: Counter::new(0),
            evictions: Counter::new(0),
        }
    }

    /// Locks the interior (poisoning recovered by [`reset_cache`]).
    fn guard(&self) -> TrackedGuard<'_, Inner> {
        self.inner.lock()
    }

    /// The cached `ρ` for `(scope, rows)`, refreshing its recency.
    pub fn lookup(&self, scope: u64, rows: &[u32]) -> Option<f64> {
        if self.capacity == 0 {
            self.misses.add(1);
            fume_obs::counter!("fume.serve.cache.misses", 1);
            return None;
        }
        let mut inner = self.guard();
        inner.tick += 1;
        let now = inner.tick;
        // Borrow dance: find the key handle first, then touch both maps.
        let found = inner.map.get_key_value(&Key { scope, rows: rows.into() }).map(
            |(key, entry)| (Arc::clone(key), entry.tick, entry.rho),
        );
        match found {
            Some((key, old_tick, rho)) => {
                inner.order.remove(&old_tick);
                inner.order.insert(now, Arc::clone(&key));
                if let Some(entry) = inner.map.get_mut(&key) {
                    entry.tick = now;
                }
                drop(inner);
                self.hits.add(1);
                fume_obs::counter!("fume.serve.cache.hits", 1);
                Some(rho)
            }
            None => {
                drop(inner);
                self.misses.add(1);
                fume_obs::counter!("fume.serve.cache.misses", 1);
                None
            }
        }
    }

    /// Inserts (or refreshes) `ρ` for `(scope, rows)`, evicting the
    /// least-recently-used entries if the cache is full.
    pub fn store(&self, scope: u64, rows: &[u32], rho: f64) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.guard();
        // Crash site *while the cache lock is held*: lets the resumability
        // suite prove the poison-recovery policy (reset_cache) works.
        fume_obs::fault::fault_point("serve-cache-store");
        inner.tick += 1;
        let now = inner.tick;
        let key = Arc::new(Key { scope, rows: rows.into() });
        if let Some(entry) = inner.map.get(&key) {
            let old_tick = entry.tick;
            inner.order.remove(&old_tick);
            inner.order.insert(now, Arc::clone(&key));
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.tick = now;
                entry.rho = rho;
            }
            return;
        }
        let mut evicted = 0u64;
        while inner.map.len() >= self.capacity {
            let Some((&oldest, _)) = inner.order.iter().next() else { break };
            if let Some(victim) = inner.order.remove(&oldest) {
                inner.map.remove(&victim);
                evicted += 1;
            }
        }
        inner.order.insert(now, Arc::clone(&key));
        inner.map.insert(key, Entry { rho, tick: now });
        drop(inner);
        if evicted > 0 {
            self.evictions.add(evicted);
            fume_obs::counter!("fume.serve.cache.evictions", evicted);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let entries = self.guard().map.len() as u64;
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            entries,
        }
    }
}

/// An [`EvalMemo`] view of an [`EvalCache`] pinned to one scope —
/// what a job attaches to its
/// [`ExplainRequest`](fume_core::ExplainRequest).
#[derive(Debug, Clone, Copy)]
pub struct ScopedMemo<'a> {
    cache: &'a EvalCache,
    scope: u64,
}

impl<'a> ScopedMemo<'a> {
    /// A memo view of `cache` under the given [`rho_scope`] hash.
    pub fn new(cache: &'a EvalCache, scope: u64) -> Self {
        Self { cache, scope }
    }
}

impl EvalMemo for ScopedMemo<'_> {
    fn lookup(&self, rows: &[u32]) -> Option<f64> {
        self.cache.lookup(self.scope, rows)
    }

    fn store(&self, rows: &[u32], rho: f64) {
        self.cache.store(self.scope, rows, rho);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = EvalCache::new(2);
        cache.store(1, &[1], 0.1);
        cache.store(1, &[2], 0.2);
        // Touch [1] so [2] becomes the LRU victim.
        assert_eq!(cache.lookup(1, &[1]), Some(0.1));
        cache.store(1, &[3], 0.3);
        assert_eq!(cache.lookup(1, &[2]), None, "LRU entry evicted");
        assert_eq!(cache.lookup(1, &[1]), Some(0.1));
        assert_eq!(cache.lookup(1, &[3]), Some(0.3));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn scopes_do_not_alias() {
        let cache = EvalCache::new(8);
        cache.store(10, &[1, 2, 3], 0.5);
        assert_eq!(cache.lookup(10, &[1, 2, 3]), Some(0.5));
        assert_eq!(cache.lookup(11, &[1, 2, 3]), None, "different scope");
        assert_eq!(cache.lookup(10, &[1, 2]), None, "different rows");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = EvalCache::new(0);
        cache.store(1, &[1], 0.5);
        assert_eq!(cache.lookup(1, &[1]), None);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn store_refreshes_existing_entries() {
        let cache = EvalCache::new(2);
        cache.store(1, &[1], 0.1);
        cache.store(1, &[2], 0.2);
        // Re-store [1]: refresh, not duplicate — so [2] is now LRU.
        cache.store(1, &[1], 0.1);
        cache.store(1, &[3], 0.3);
        assert_eq!(cache.lookup(1, &[2]), None);
        assert_eq!(cache.lookup(1, &[1]), Some(0.1));
    }

    #[test]
    fn rho_scope_separates_metric_and_config() {
        let cfg = DareConfig::small(1);
        let a = rho_scope(7, FairnessMetric::StatisticalParity, &cfg);
        let b = rho_scope(7, FairnessMetric::EqualOpportunity, &cfg);
        let c = rho_scope(8, FairnessMetric::StatisticalParity, &cfg);
        let d = rho_scope(7, FairnessMetric::StatisticalParity, &cfg.clone().with_trees(3));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, rho_scope(7, FairnessMetric::StatisticalParity, &cfg));
    }
}
