//! Transports: newline-delimited JSON over any `BufRead`/`Write` pair
//! (stdio) and over a Unix-domain socket.
//!
//! [`serve_lines`] is the whole protocol loop for one byte stream: the
//! calling thread reads and parses request lines and submits jobs; a
//! single responder thread (spawned through
//! [`fume_tabular::workers::scoped_workers`]) resolves tickets and
//! writes response lines. Because submissions enter one FIFO channel
//! and the responder resolves them in channel order, **responses always
//! come back in request order**, even though jobs execute concurrently
//! on the engine's worker pool.

use std::io::{BufRead, Write};
use std::sync::mpsc;

use fume_obs::clock::Stopwatch;
use fume_obs::sync::TrackedMutex;
use fume_tabular::workers;

use crate::engine::{EngineHandle, JobReply, JobSpec, Ticket};
use crate::protocol::{
    parse_request, render_pong, render_report, render_serve_error, render_shutdown_ack,
    render_stats, Request,
};

/// Why [`serve_lines`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeExit {
    /// The input stream ended (client hung up).
    Eof,
    /// A `shutdown` request was served; the engine is draining.
    Shutdown,
}

enum Pending {
    /// Already-rendered response (pings, parse errors, rejections).
    Immediate(String),
    /// A queued job whose outcome the responder must wait for.
    Job { id: String, ticket: Ticket, started: Stopwatch },
}

fn render_outcome(pending: Pending) -> String {
    match pending {
        Pending::Immediate(line) => line,
        // fume-lint: allow(F009) -- Ticket::wait is not a condvar wait; it re-checks the slot under a loop internally
        Pending::Job { id, ticket, started } => match ticket.wait() {
            Ok(JobReply::Report(report)) => {
                render_report(&id, started.elapsed_nanos(), &report)
            }
            Ok(JobReply::Stats(stats)) => render_stats(&id, &stats),
            Err(error) => render_serve_error(&id, &error),
        },
    }
}

/// Serves one NDJSON byte stream to completion. Returns on EOF or after
/// acknowledging a `shutdown` request (which also starts the engine's
/// drain). Write failures (client hung up mid-response) are swallowed:
/// remaining tickets are still resolved so the engine can drain.
pub fn serve_lines<R, W>(handle: EngineHandle<'_, '_>, reader: R, writer: W) -> ServeExit
where
    R: BufRead + Send,
    W: Write + Send,
{
    let (tx, rx) = mpsc::channel::<Pending>();
    let rx = TrackedMutex::new("serve.transport.rx", rx);
    let writer = TrackedMutex::new("serve.transport.writer", writer);
    workers::scoped_workers(
        1,
        |_| {
            let rx = rx.lock();
            while let Ok(pending) = rx.recv() {
                let line = render_outcome(pending);
                // fume-lint: allow(F010) -- lock-order: serve.transport.rx < serve.transport.writer (the responder holds rx for its lifetime and takes writer per line)
                let mut w = writer.lock();
                let _ = writeln!(w, "{line}");
                let _ = w.flush();
            }
        },
        move || {
            let mut exit = ServeExit::Eof;
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let pending = match parse_request(&line) {
                    Err(e) => Pending::Immediate(crate::protocol::render_error(
                        e.id.as_deref(),
                        "bad_request",
                        &e.message,
                    )),
                    Ok(Request::Ping { id }) => Pending::Immediate(render_pong(&id)),
                    Ok(Request::Shutdown { id }) => {
                        let _ = tx.send(Pending::Immediate(render_shutdown_ack(&id)));
                        handle.shutdown();
                        exit = ServeExit::Shutdown;
                        break;
                    }
                    Ok(Request::Explain { id, overrides }) => {
                        let started = Stopwatch::start();
                        match handle.explain(overrides) {
                            Ok(ticket) => Pending::Job { id, ticket, started },
                            Err(e) => Pending::Immediate(render_serve_error(&id, &e)),
                        }
                    }
                    Ok(Request::Stats { id }) => {
                        let started = Stopwatch::start();
                        match handle.submit(JobSpec::Stats) {
                            Ok(ticket) => Pending::Job { id, ticket, started },
                            Err(e) => Pending::Immediate(render_serve_error(&id, &e)),
                        }
                    }
                };
                if tx.send(pending).is_err() {
                    break;
                }
            }
            exit
        },
    )
}

/// Unix-domain-socket transport (Linux/macOS).
#[cfg(unix)]
pub mod unix {
    use std::io::{self, BufReader};
    use std::os::unix::net::UnixListener;
    use std::path::Path;

    use fume_obs::clock::Duration;
    use fume_tabular::workers;

    use super::serve_lines;
    use crate::engine::EngineHandle;

    /// How often an idle acceptor re-checks for connections/shutdown.
    const ACCEPT_POLL: Duration = Duration::from_millis(25);

    /// Listens on `path` and serves connections until the engine shuts
    /// down (a client's `shutdown` request, or
    /// [`EngineHandle::shutdown`] from elsewhere). Each of the
    /// `acceptors` threads serves one connection at a time with
    /// [`serve_lines`]. Removes the socket file on exit.
    pub fn serve_unix(
        handle: EngineHandle<'_, '_>,
        path: &Path,
        acceptors: usize,
    ) -> io::Result<()> {
        // A previous run may have left its socket file behind.
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        workers::scoped_workers(
            acceptors.max(1),
            |_| loop {
                if handle.is_shutting_down() {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        serve_lines(handle, BufReader::new(&stream), &stream);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            },
            || (),
        );
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineOptions};
    use fume_core::FumeConfig;
    use fume_lattice::SupportRange;
    use fume_tabular::datasets::planted_toy;
    use fume_tabular::split::train_test_split;

    fn small_engine() -> Engine {
        let (data, group) = planted_toy().generate_scaled(0.5, 3).unwrap();
        let (train, test) = train_test_split(&data, 0.3, 3).unwrap();
        let config = FumeConfig::default()
            .with_forest(fume_forest::DareConfig::small(3))
            .with_support(SupportRange::new(0.02, 0.25).unwrap());
        Engine::new(config, train, test, group, EngineOptions {
            workers: 1,
            ..EngineOptions::default()
        })
        .unwrap()
    }

    fn run_session(input: &str) -> (ServeExit, Vec<String>) {
        let engine = small_engine();
        let mut out: Vec<u8> = Vec::new();
        let exit = engine.serve(|h| serve_lines(h, input.as_bytes(), &mut out));
        let lines = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        (exit, lines)
    }

    #[test]
    fn responses_come_back_in_request_order() {
        let input = "\
            {\"op\":\"ping\",\"id\":\"a\"}\n\
            {\"op\":\"explain\",\"id\":\"b\"}\n\
            {\"op\":\"explain\",\"id\":\"c\"}\n\
            {\"op\":\"stats\",\"id\":\"d\"}\n";
        let (exit, lines) = run_session(input);
        assert_eq!(exit, ServeExit::Eof);
        assert_eq!(lines.len(), 4);
        for (line, id) in lines.iter().zip(["a", "b", "c", "d"]) {
            assert!(
                line.contains(&format!("\"id\":\"{id}\"")),
                "line out of order: {line}"
            );
            assert!(line.contains("\"ok\":true"), "unexpected failure: {line}");
        }
        assert!(lines[3].contains("\"cache_"), "stats payload missing: {}", lines[3]);
    }

    #[test]
    fn identical_requests_share_the_cache_and_the_report() {
        let input = "\
            {\"op\":\"explain\",\"id\":\"r1\"}\n\
            {\"op\":\"explain\",\"id\":\"r2\"}\n\
            {\"op\":\"stats\",\"id\":\"r3\"}\n";
        let (_, lines) = run_session(input);
        assert_eq!(lines.len(), 3);
        let report_of = |line: &str| {
            let at = line.find(",\"report\":").expect("report field");
            line[at + ",\"report\":".len()..line.len() - 1].to_string()
        };
        assert_eq!(
            report_of(&lines[0]),
            report_of(&lines[1]),
            "cache hit must not change the canonical report"
        );
        let stats = &lines[2];
        let hits: u64 = stats
            .split("\"cache_hits\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(hits > 0, "repeat request must hit the cache: {stats}");
    }

    #[test]
    fn shutdown_is_acked_and_later_lines_ignored() {
        let input = "\
            {\"op\":\"shutdown\",\"id\":\"s\"}\n\
            {\"op\":\"ping\",\"id\":\"late\"}\n";
        let (exit, lines) = run_session(input);
        assert_eq!(exit, ServeExit::Shutdown);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"shutdown\":true"));
    }

    #[test]
    fn malformed_lines_get_typed_errors_and_do_not_kill_the_session() {
        let input = "\
            not json at all\n\
            {\"op\":\"warp\",\"id\":\"w\"}\n\
            {\"op\":\"ping\",\"id\":\"p\"}\n";
        let (exit, lines) = run_session(input);
        assert_eq!(exit, ServeExit::Eof);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ok\":false") && lines[0].contains("\"id\":null"));
        assert!(lines[1].contains("\"ok\":false") && lines[1].contains("\"id\":\"w\""));
        assert!(lines[2].contains("\"pong\":true"));
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let engine = small_engine();
        let dir = std::env::temp_dir().join(format!("fume-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("engine.sock");
        engine.serve(|h| {
            workers::scoped_workers(
                1,
                |_| {
                    super::unix::serve_unix(h, &sock, 1).unwrap();
                },
                || {
                    // Wait for the listener to appear, then talk to it.
                    while !sock.exists() {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    let stream = UnixStream::connect(&sock).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut w = &stream;
                    let ping = r#"{"op":"ping","id":"u1"}"#;
                    let explain = r#"{"op":"explain","id":"u2"}"#;
                    writeln!(w, "{ping}").unwrap();
                    writeln!(w, "{explain}").unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    assert!(line.contains("\"pong\":true"), "{line}");
                    line.clear();
                    reader.read_line(&mut line).unwrap();
                    assert!(line.contains("\"id\":\"u2\"") && line.contains("\"report\":{"), "{line}");
                    let shutdown = r#"{"op":"shutdown","id":"u3"}"#;
                    writeln!(w, "{shutdown}").unwrap();
                    line.clear();
                    reader.read_line(&mut line).unwrap();
                    assert!(line.contains("\"shutdown\":true"), "{line}");
                },
            );
        });
        assert!(!sock.exists(), "socket file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
