//! A small self-contained benchmark harness (criterion cannot be
//! resolved offline). Keeps the criterion call-site shape — groups,
//! parameterized ids, `iter` closures — but measures with plain
//! `Instant` arithmetic: one warmup call, then iterations until a time
//! target or an iteration cap, reporting the mean.
//!
//! Not a statistics engine: no outlier rejection, no confidence
//! intervals. For regression hunting, pair it with the `fume-obs`
//! profile table (`repro --trace`), which attributes the time.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default measurement budget per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Iteration cap per benchmark (micro-benches on the time target
/// alone could spin for millions of iterations).
const MAX_ITERS: u64 = 10_000;

/// The bench driver: owns the name filter from the command line and
/// prints one line per benchmark.
pub struct Harness {
    filter: Option<String>,
    listing: bool,
}

impl Harness {
    /// Builds from `std::env::args`: the first non-flag argument is a
    /// substring filter (the convention `cargo bench -- <filter>`
    /// follows); `--list` prints names without running. Flags cargo
    /// passes to libtest-style harnesses (`--bench`, `--test`) are
    /// accepted and ignored.
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut listing = false;
        for arg in std::env::args().skip(1) {
            if arg == "--list" {
                listing = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Harness { filter, listing }
    }

    /// A harness with an explicit filter (for tests).
    pub fn with_filter(filter: Option<String>) -> Self {
        Harness { filter, listing: false }
    }

    fn should_run(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one benchmark: warmup call, then timed iterations.
    pub fn bench_function<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if !self.should_run(name) {
            return;
        }
        if self.listing {
            println!("{name}");
            return;
        }
        black_box(f()); // warmup (and one-shot validation)
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS {
            black_box(f());
            iters += 1;
            if start.elapsed() >= TARGET {
                break;
            }
        }
        let mean = start.elapsed() / u32::try_from(iters).expect("MAX_ITERS fits");
        println!("{name:<52} {:>12} {iters:>7} iters", fmt_duration(mean));
    }

    /// Opens a named group; benchmark names are prefixed `group/name`.
    pub fn benchmark_group(&mut self, group: &str) -> Group<'_> {
        Group { harness: self, prefix: group.to_string() }
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct Group<'a> {
    harness: &'a mut Harness,
    prefix: String,
}

impl Group<'_> {
    /// Runs `group/name`.
    pub fn bench_function<T>(&mut self, name: impl std::fmt::Display, f: impl FnMut() -> T) {
        let full = format!("{}/{name}", self.prefix);
        self.harness.bench_function(&full, f);
    }

    /// Runs `group/name/param` — the `bench_with_input` shape, with the
    /// input simply captured by the closure.
    pub fn bench_param<T>(
        &mut self,
        name: impl std::fmt::Display,
        param: impl std::fmt::Display,
        f: impl FnMut() -> T,
    ) {
        let full = format!("{}/{name}/{param}", self.prefix);
        self.harness.bench_function(&full, f);
    }
}

/// `1.23s` / `45.1ms` / `678µs` / `910ns` formatting.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_gates_execution() {
        let mut ran = Vec::new();
        let mut h = Harness::with_filter(Some("fit".into()));
        h.bench_function("forest_fit", || ran.push("fit"));
        let mut h2 = Harness::with_filter(Some("nomatch".into()));
        h2.bench_function("forest_predict", || ran.push("predict"));
        assert!(ran.contains(&"fit"));
        assert!(!ran.contains(&"predict"));
    }

    #[test]
    fn groups_prefix_names() {
        let mut h = Harness::with_filter(Some("g/x/3".into()));
        let mut count = 0;
        {
            let mut g = h.benchmark_group("g");
            g.bench_param("x", 3, || count += 1);
            g.bench_param("x", 4, || count += 1);
        }
        assert!(count >= 1, "param 3 matched the filter and ran");
    }

    #[test]
    fn durations_format() {
        assert_eq!(fmt_duration(Duration::from_nanos(910)), "910ns");
        assert_eq!(fmt_duration(Duration::from_micros(678)), "678.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(45)), "45.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
