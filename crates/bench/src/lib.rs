//! # fume-bench
//!
//! The reproduction harness of the FUME workspace: one module per table
//! and figure of the paper's evaluation, each regenerating the same
//! rows/series the paper reports (on the synthetic dataset stand-ins —
//! see `DESIGN.md` §2), plus micro-benchmarks of the hot primitives on
//! a small in-tree harness (`harness` module).
//!
//! Run `cargo run --release -p fume-bench --bin repro -- --exp all` to
//! regenerate everything, or `--exp tab3`, `--exp fig4`, … individually;
//! add `--full` for paper-scale datasets.

#![warn(missing_docs)]

pub mod common;
pub mod experiments;
pub mod harness;
pub mod scale;

pub use scale::RunScale;
