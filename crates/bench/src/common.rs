//! Shared experiment plumbing: dataset preparation and small formatting
//! helpers.

use std::time::Duration;

use fume_forest::{DareConfig, DareForest};
use fume_tabular::datasets::PaperDataset;
use fume_tabular::split::train_test_split;
use fume_tabular::{Dataset, GroupSpec};

use crate::scale::RunScale;

/// Master seed for all experiments; every derived seed is deterministic.
pub const SEED: u64 = 20_250_325; // EDBT 2025's opening day

/// A prepared experiment environment for one dataset.
pub struct Prepared {
    /// Dataset name.
    pub name: String,
    /// Training split (70 %).
    pub train: Dataset,
    /// Test split (30 %).
    pub test: Dataset,
    /// Sensitive-group specification.
    pub group: GroupSpec,
    /// Forest hyperparameters at this scale.
    pub forest_cfg: DareConfig,
}

impl Prepared {
    /// Generates, splits and configures one paper dataset at `scale`.
    pub fn new(ds: &PaperDataset, scale: RunScale, seed: u64) -> Self {
        let n = scale.rows(ds.full_size);
        let (data, group) = fume_tabular::generator::generate(&ds.spec, n, seed)
            .expect("spec is statically valid");
        let (train, test) = train_test_split(&data, 0.3, seed).expect("non-empty");
        Prepared {
            name: ds.spec.name.clone(),
            train,
            test,
            group,
            forest_cfg: scale.forest(seed),
        }
    }

    /// Trains the DaRE forest for this environment.
    pub fn fit(&self) -> DareForest {
        DareForest::fit(&self.train, self.forest_cfg.clone())
    }
}

/// Formats a duration as seconds with two decimals.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::datasets::german_credit;

    #[test]
    fn prepared_splits_70_30() {
        let p = Prepared::new(&german_credit(), RunScale::quick(), 1);
        let total = p.train.num_rows() + p.test.num_rows();
        assert_eq!(total, 1_000); // German is never scaled below full size
        assert!((p.train.num_rows() as f64 / total as f64 - 0.7).abs() < 0.02);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(Duration::from_millis(1_500)), "1.50");
        assert_eq!(pct(0.1234), "12.34%");
    }
}
