//! Tables 3–7 — the top-5 attributable subsets per dataset (statistical
//! parity, 5–15 % support), with the DropUnprivUnfavor baseline line the
//! paper reports alongside each table.

use fume_core::{drop_unpriv_unfavor, ExplainRequest, Fume};
use fume_fairness::FairnessMetric;
use fume_lattice::SupportRange;
use fume_tabular::datasets::{
    acs_income, adult, german_credit, meps, sqf, PaperDataset,
};

use crate::common::{fmt_secs, pct, Prepared, SEED};
use crate::scale::RunScale;

/// Which paper table to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopKTable {
    /// Table 3: German Credit.
    German,
    /// Table 4: Adult.
    Adult,
    /// Table 5: SQF.
    Sqf,
    /// Table 6: ACS Income.
    Acs,
    /// Table 7: MEPS.
    Meps,
}

impl TopKTable {
    /// The dataset behind the table.
    pub fn dataset(self) -> PaperDataset {
        match self {
            Self::German => german_credit(),
            Self::Adult => adult(),
            Self::Sqf => sqf(),
            Self::Acs => acs_income(),
            Self::Meps => meps(),
        }
    }

    /// Paper table number.
    pub fn number(self) -> usize {
        match self {
            Self::German => 3,
            Self::Adult => 4,
            Self::Sqf => 5,
            Self::Acs => 6,
            Self::Meps => 7,
        }
    }
}

/// Regenerates one of Tables 3–7.
pub fn run(table: TopKTable, scale: RunScale) -> String {
    let ds = table.dataset();
    let p = Prepared::new(&ds, scale, SEED);
    let fume = Fume::builder()
        .metric(FairnessMetric::StatisticalParity)
        .support(SupportRange::medium())
        .top_k(5)
        .forest(p.forest_cfg.clone())
        .build();
    let report = match fume.run(&ExplainRequest::new(&p.train, &p.test, p.group)) {
        Ok(r) => r,
        Err(e) => return format!("## Table {}: {} — {e}\n", table.number(), p.name),
    };

    let mut out = format!(
        "## Table {}: Top-5 subsets attributable to statistical disparity in {} \
         (support range 5%-15%)\n\n\
         Original |F|: {:.4} · model accuracy: {} · unlearning operations: {} · \
         search time: {}s\n\n",
        table.number(),
        p.name,
        report.original_bias,
        pct(report.original_accuracy),
        report.unlearning_operations,
        fmt_secs(report.search_time),
    );
    out.push_str(&report.to_markdown());

    let baseline = drop_unpriv_unfavor(
        &p.train,
        &p.test,
        p.group,
        FairnessMetric::StatisticalParity,
        &p.forest_cfg,
    );
    out.push_str(&format!(
        "\nDropUnprivUnfavor baseline: removes {} of the training data, parity \
         reduction {}, accuracy {} → {}.\n",
        pct(baseline.removed_fraction),
        pct(baseline.parity_reduction),
        pct(baseline.accuracy_before),
        pct(baseline.accuracy_after),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "trains forests end-to-end; run with: cargo test -p fume-bench --release -- --ignored"]
    fn german_table_has_five_rows_and_baseline() {
        let md = run(TopKTable::German, RunScale::quick());
        assert!(md.contains("## Table 3"), "{md}");
        assert!(md.contains("DropUnprivUnfavor"));
        // At least one attributable subset row.
        assert!(md.contains("| 1 |"), "{md}");
    }

    #[test]
    fn table_numbers() {
        assert_eq!(TopKTable::German.number(), 3);
        assert_eq!(TopKTable::Meps.number(), 7);
    }
}
