//! One module per table/figure of the paper's evaluation (§6).

pub mod ablation;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod mitigation;
pub mod tab1;
pub mod tab2;
pub mod tab8;
pub mod tab9;
pub mod topk;
