//! Table 1 — the motivating example: discriminatory tree paths mined from
//! the first levels of a German Credit forest, illustrating why manual
//! path inspection is an inadequate explanation strategy.

use fume_core::mine_unfair_paths;
use fume_tabular::datasets::german_credit;

use crate::common::{pct, Prepared, SEED};
use crate::scale::RunScale;

/// Regenerates Table 1 (patterns from the first three trees).
pub fn run(scale: RunScale) -> String {
    let p = Prepared::new(&german_credit(), scale, SEED);
    let forest = p.fit();
    let patterns = mine_unfair_paths(&forest, &p.train, p.group, 5);

    let mut out = String::from(
        "## Table 1: Paths mentioning the unprivileged group that predict the unfavorable label\n\n\
         (first 5 levels of the first 3 trees)\n\n\
         | Tree | Patterns | Size |\n|---|---|---|\n",
    );
    for tree in 0..3usize {
        let mine: Vec<_> = patterns.iter().filter(|m| m.tree_index == tree).collect();
        if mine.is_empty() {
            out.push_str(&format!("| {} | None found in the first five levels | - |\n", tree + 1));
        } else {
            for m in mine.iter().take(3) {
                out.push_str(&format!(
                    "| {} | {} | {} |\n",
                    tree + 1,
                    m.description,
                    pct(m.sample_fraction)
                ));
            }
        }
    }
    out.push_str(&format!(
        "\nTotal discriminatory paths across all {} trees: {} — enumerating, \
         summarizing and trusting these per-tree paths is exactly the burden \
         FUME removes.\n",
        forest.trees().len(),
        patterns.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "trains forests end-to-end; run with: cargo test -p fume-bench --release -- --ignored"]
    fn renders_three_tree_rows() {
        let md = run(RunScale::quick());
        assert!(md.contains("| 1 |"));
        assert!(md.contains("| 3 |"));
        assert!(md.contains("Total discriminatory paths"));
    }
}
