//! Table 2 — dataset summary: instances, features, sensitive attribute,
//! protected fraction, per-group base rates.

use fume_tabular::datasets::all_paper_datasets;
use fume_tabular::stats::summarize;

use crate::common::{pct, SEED};
use crate::scale::RunScale;

/// Paper values for side-by-side comparison:
/// (name, protected %, privileged rate, protected rate).
pub const PAPER: &[(&str, f64, f64, f64)] = &[
    ("German Credit", 0.4110, 0.7419, 0.6399),
    ("Adult Census Income", 0.3250, 0.3124, 0.1135),
    ("MEPS", 0.6407, 0.2549, 0.1236),
    ("SQF", 0.3594, 0.3832, 0.3016),
    ("ACS Income", 0.4855, 0.4353, 0.3106),
];

/// Regenerates Table 2.
pub fn run(scale: RunScale) -> String {
    let mut out = String::from(
        "## Table 2: Summary of datasets\n\n\
         | Dataset | #instances | #features | Sensitive attribute | Protected/Dataset (paper) | Privileged base rate (paper) | Protected base rate (paper) |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for (ds, paper) in all_paper_datasets().iter().zip(PAPER) {
        let n = scale.rows(ds.full_size);
        let (data, group) =
            fume_tabular::generator::generate(&ds.spec, n, SEED).expect("spec valid");
        let s = summarize(&data, group);
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} ({}) | {} ({}) | {} ({}) |\n",
            ds.name(),
            s.num_instances,
            s.num_features,
            s.sensitive_attribute,
            pct(s.protected_fraction),
            pct(paper.1),
            pct(s.privileged_base_rate),
            pct(paper.2),
            pct(s.protected_base_rate),
            pct(paper.3),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_five_datasets() {
        let md = run(RunScale::quick());
        for (name, ..) in PAPER {
            assert!(md.contains(name), "missing {name}");
        }
        // title + blank + table header + separator + 5 dataset rows
        assert_eq!(md.lines().count(), 9);
    }
}
