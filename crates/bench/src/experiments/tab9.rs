//! Table 9 — effect of pruning on subset exploration: per lattice level,
//! how many subsets were possible, how many were actually evaluated, and
//! the pruned percentage. Also runs the rule-4/5 ablation the design
//! document calls out.

use fume_core::{ExplainRequest, Fume};
use fume_lattice::RuleToggles;
use fume_tabular::datasets::german_credit;

use crate::common::{Prepared, SEED};
use crate::scale::RunScale;

fn level_table(report: &fume_core::FumeReport) -> String {
    let mut out = String::from(
        "| Level | Possible subsets | Generated | Explored | Pruned (%) | rule1 | support-low | oversized | rule4 | rule5 |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for l in &report.levels {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {:.2} | {} | {} | {} | {} | {} |\n",
            l.level,
            l.possible,
            l.generated,
            l.explored,
            l.pruned_percent(),
            l.pruned_rule1,
            l.pruned_support_low,
            l.oversized,
            l.pruned_rule4,
            l.pruned_rule5,
        ));
    }
    out
}

/// Regenerates Table 9 on German Credit with a 4-level lattice, plus the
/// rule-4/5 ablation.
pub fn run(scale: RunScale) -> String {
    let p = Prepared::new(&german_credit(), scale, SEED);
    let forest = p.fit();

    let base_cfg = Fume::builder()
        .max_literals(4)
        .forest(p.forest_cfg.clone())
        .into_config();

    let mut out = String::from("## Table 9: Effect of pruning on subset exploration (German, eta = 4)\n\n");

    let fume = Fume::new(base_cfg.clone());
    match fume.run(&ExplainRequest::new(&p.train, &p.test, p.group).with_model(&forest)) {
        Ok(report) => {
            out.push_str(&level_table(&report));
            out.push_str(&format!(
                "\nTotal unlearning operations with all rules on: {}\n",
                report.unlearning_operations
            ));
        }
        Err(e) => out.push_str(&format!("run failed: {e}\n")),
    }

    out.push_str("\n### Ablation: rules 4 and 5 disabled\n\n");
    let mut ablated = base_cfg;
    ablated.toggles = RuleToggles {
        rule4_parent_dominance: false,
        rule5_positive_only: false,
        ..RuleToggles::default()
    };
    match Fume::new(ablated).run(&ExplainRequest::new(&p.train, &p.test, p.group).with_model(&forest)) {
        Ok(report) => {
            out.push_str(&level_table(&report));
            out.push_str(&format!(
                "\nTotal unlearning operations without rules 4/5: {} — the \
                 attribution-based rules are what keep deeper levels tractable.\n",
                report.unlearning_operations
            ));
        }
        Err(e) => out.push_str(&format!("ablation failed: {e}\n")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_lattice::SupportRange;

    #[test]
    #[ignore = "trains forests end-to-end; run with: cargo test -p fume-bench --release -- --ignored"]
    fn pruning_reduces_exploration() {
        // Small, fast variant of the ablation with eta = 3.
        let p = Prepared::new(&german_credit(), RunScale::quick(), SEED);
        let forest = p.fit();
        let cfg = Fume::builder()
            .max_literals(3)
            .support(SupportRange::new(0.05, 0.25).unwrap())
            .forest(p.forest_cfg.clone())
            .into_config();
        let on = Fume::new(cfg.clone())
            .run(&ExplainRequest::new(&p.train, &p.test, p.group).with_model(&forest))
            .unwrap();
        let mut ablated = cfg;
        ablated.toggles = RuleToggles {
            rule4_parent_dominance: false,
            rule5_positive_only: false,
            ..RuleToggles::default()
        };
        let off = Fume::new(ablated)
            .run(&ExplainRequest::new(&p.train, &p.test, p.group).with_model(&forest))
            .unwrap();
        assert!(
            on.unlearning_operations <= off.unlearning_operations,
            "rules on: {} ops, off: {} ops",
            on.unlearning_operations,
            off.unlearning_operations
        );
    }
}
