//! Figure 3 — effectiveness of DaRE unlearning at estimating subset
//! attribution: for clouds of random and coherent subsets of German
//! Credit, compare the unlearning-estimated attribution against the
//! retrain-from-scratch ground truth. The paper's claim is that the
//! points hug the `y = x` line.

use fume_core::{AttributionEstimator, DareRemoval, RetrainRemoval};
use fume_fairness::FairnessMetric;
use fume_lattice::{expand_level, level1_nodes, EvalItem, Predicate, SupportRange};
use fume_tabular::datasets::german_credit;
use fume_tabular::Dataset;
use fume_tabular::rng::{Rng, SeedableRng, SliceRandom, StdRng};

use crate::common::{Prepared, SEED};
use crate::scale::RunScale;

/// One scatter point: a subset's true vs estimated attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Retrain-from-scratch parity reduction (x-axis).
    pub actual: f64,
    /// DaRE-unlearning-estimated parity reduction (y-axis).
    pub estimated: f64,
    /// Subset support.
    pub support: f64,
}

/// Scatter statistics for one subset family.
#[derive(Debug, Clone, PartialEq)]
pub struct Scatter {
    /// The points.
    pub points: Vec<Point>,
    /// Pearson correlation of actual vs estimated.
    pub correlation: f64,
    /// Mean absolute difference.
    pub mean_abs_diff: f64,
}

fn pearson(points: &[Point]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 1.0;
    }
    let mx = points.iter().map(|p| p.actual).sum::<f64>() / n;
    let my = points.iter().map(|p| p.estimated).sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for p in points {
        let (dx, dy) = (p.actual - mx, p.estimated - my);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 1.0;
    }
    sxy / (sxx * syy).sqrt()
}

fn summarize(points: Vec<Point>) -> Scatter {
    let correlation = pearson(&points);
    let mean_abs_diff = if points.is_empty() {
        0.0
    } else {
        points.iter().map(|p| (p.actual - p.estimated).abs()).sum::<f64>()
            / points.len() as f64
    };
    Scatter { points, correlation, mean_abs_diff }
}

/// Draws `count` *random* subsets: uniformly sized within the support
/// range, rows sampled without replacement.
pub fn random_subsets(
    data: &Dataset,
    range: SupportRange,
    count: usize,
    seed: u64,
) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.num_rows();
    (0..count)
        .map(|_| {
            let frac = rng.gen_range(range.min.max(0.005)..range.max);
            let size = ((n as f64 * frac) as usize).max(1);
            let mut ids = data.all_row_ids();
            ids.shuffle(&mut rng);
            ids.truncate(size);
            ids.sort_unstable();
            ids
        })
        .collect()
}

/// Draws up to `count` *coherent* subsets: 1- and 2-literal predicates
/// whose support falls in the range, sampled uniformly from the lattice's
/// first two levels.
pub fn coherent_subsets(
    data: &Dataset,
    range: SupportRange,
    count: usize,
    seed: u64,
) -> Vec<(Predicate, Vec<u32>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let level1 = level1_nodes(data, &[]);
    let level2 = expand_level(data, &level1, true).children;
    let n = data.num_rows();
    let mut eligible: Vec<(Predicate, Vec<u32>)> = level1
        .into_iter()
        .chain(level2)
        .filter(|nd| range.contains(nd.support(n)))
        .map(|nd| (nd.predicate, nd.rows))
        .collect();
    eligible.shuffle(&mut rng);
    eligible.truncate(count);
    eligible
}

/// Computes the scatter of estimated vs actual attribution for a batch of
/// row subsets, plus the *retrain noise floor*: the mean |ρ_A − ρ_B|
/// between two independent retrains, which bounds how well any exact
/// unlearning method can possibly agree with a single retrain draw.
fn scatter_for(
    prepared: &Prepared,
    subsets: &[Vec<u32>],
    metric: FairnessMetric,
) -> (Scatter, f64) {
    let forest = prepared.fit();
    let original = metric.bias(&forest, &prepared.test, prepared.group);
    if original <= f64::EPSILON {
        return (summarize(Vec::new()), 0.0);
    }
    let dare = AttributionEstimator::new(
        DareRemoval::new(&forest, &prepared.train),
        metric,
        &prepared.test,
        prepared.group,
        original,
        None,
    );
    let retrain = AttributionEstimator::new(
        RetrainRemoval::new(&prepared.train, prepared.forest_cfg.clone()),
        metric,
        &prepared.test,
        prepared.group,
        original,
        None,
    );
    let alt_cfg = prepared.forest_cfg.clone().with_seed(prepared.forest_cfg.seed ^ 0xABCD);
    let retrain_alt = AttributionEstimator::new(
        RetrainRemoval::new(&prepared.train, alt_cfg),
        metric,
        &prepared.test,
        prepared.group,
        original,
        None,
    );
    // Batch-evaluate through the same parallel path FUME uses.
    let dummy = Predicate::new(vec![]);
    let items: Vec<EvalItem<'_>> = subsets
        .iter()
        .map(|rows| EvalItem { predicate: &dummy, rows })
        .collect();
    use fume_lattice::BatchEvaluator as _;
    let estimated = dare.evaluate(&items);
    let actual = retrain.evaluate(&items);
    let actual_alt = retrain_alt.evaluate(&items);
    let noise_floor = if actual.is_empty() {
        0.0
    } else {
        actual
            .iter()
            .zip(&actual_alt)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / actual.len() as f64
    };
    let n = prepared.train.num_rows() as f64;
    let scatter = summarize(
        subsets
            .iter()
            .zip(actual)
            .zip(estimated)
            .map(|((rows, a), e)| Point {
                actual: a,
                estimated: e,
                support: rows.len() as f64 / n,
            })
            .collect(),
    );
    (scatter, noise_floor)
}

/// Regenerates Figure 3: random and coherent subset clouds on German
/// Credit with the predictive-parity metric and 5–15 % support. Returns a
/// markdown summary plus a CSV block of the points for plotting.
///
/// The estimator-vs-truth comparison needs *low model variance* — both
/// sides re-randomize tree structure, and with few trees that resampling
/// noise swamps the subset effects. The forest is therefore always run at
/// the paper's 100 trees for this experiment, regardless of scale.
pub fn run(scale: RunScale) -> String {
    let mut prepared = Prepared::new(&german_credit(), scale, SEED);
    prepared.forest_cfg = prepared.forest_cfg.with_trees(100).with_max_depth(10);
    let metric = FairnessMetric::PredictiveParity;
    let count = scale.fig3_subsets;

    let mut out = String::from(
        "## Figure 3: DaRE-estimated vs actual subset attribution (German, \
         predictive parity)\n\n\
         | Support range | Subset family | #subsets | Pearson r | mean |est − actual| | retrain noise floor |\n\
         |---|---|---|---|---|---|\n",
    );
    let mut csv = String::from("```csv\nrange,family,support,actual,estimated\n");

    for (label, range) in [("0-5%", SupportRange::small()), ("5-15%", SupportRange::medium())]
    {
        let random = random_subsets(&prepared.train, range, count, SEED + 1);
        let (random_scatter, random_floor) = scatter_for(&prepared, &random, metric);

        let coherent = coherent_subsets(&prepared.train, range, count, SEED + 2);
        let coherent_rows: Vec<Vec<u32>> =
            coherent.iter().map(|(_, rows)| rows.clone()).collect();
        let (coherent_scatter, coherent_floor) =
            scatter_for(&prepared, &coherent_rows, metric);

        for (family, sc, floor) in [
            ("random", &random_scatter, random_floor),
            ("coherent", &coherent_scatter, coherent_floor),
        ] {
            out.push_str(&format!(
                "| {} | {} | {} | {:.3} | {:.4} | {:.4} |\n",
                label,
                family,
                sc.points.len(),
                sc.correlation,
                sc.mean_abs_diff,
                floor,
            ));
            for p in &sc.points {
                csv.push_str(&format!(
                    "{label},{family},{:.4},{:.4},{:.4}\n",
                    p.support, p.actual, p.estimated
                ));
            }
        }
    }
    csv.push_str("```\n");

    out.push_str(
        "\nPaper shape (§5.1 + Figure 3): the unlearned model's fairness tracks \
         a true retrain — within the paper's own \"up to 25%\" envelope for \
         medium (5-15%) subsets. The *retrain noise floor* column is the mean \
         |ρ_A − ρ_B| between two independent retrains of the same surviving \
         data: when |est − actual| is at or below it, DaRE unlearning is \
         indistinguishable from an exact retrain draw, which is the strongest \
         checkable form of the paper's exactness claim.\n\n",
    );
    out.push_str(&csv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_subsets_respect_support_range() {
        let p = Prepared::new(&german_credit(), RunScale::quick(), 7);
        let subsets = random_subsets(&p.train, SupportRange::medium(), 10, 7);
        assert_eq!(subsets.len(), 10);
        let n = p.train.num_rows() as f64;
        for s in &subsets {
            let sup = s.len() as f64 / n;
            assert!((0.004..=0.151).contains(&sup), "support {sup}");
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        }
    }

    #[test]
    fn coherent_subsets_are_predicates_in_range() {
        let p = Prepared::new(&german_credit(), RunScale::quick(), 8);
        let subs = coherent_subsets(&p.train, SupportRange::medium(), 15, 8);
        assert!(!subs.is_empty());
        for (pred, rows) in &subs {
            assert!(pred.len() <= 2);
            assert_eq!(rows, &pred.select(&p.train));
        }
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let pts: Vec<Point> = (0..10)
            .map(|i| Point { actual: i as f64, estimated: i as f64, support: 0.1 })
            .collect();
        assert!((pearson(&pts) - 1.0).abs() < 1e-12);
    }
}
