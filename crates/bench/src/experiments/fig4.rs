//! Figure 4 — quality of the identified subsets: average and maximum
//! parity reduction of the top-5 per dataset × support range
//! ({0–5 %, 5–15 %, ≥30 %}).

use fume_core::{ExplainRequest, Fume};
use fume_lattice::SupportRange;
use fume_tabular::datasets::all_paper_datasets;

use crate::common::{pct, Prepared, SEED};
use crate::scale::RunScale;

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Dataset name.
    pub dataset: String,
    /// Support range label.
    pub range: &'static str,
    /// Average parity reduction of the top-5 (0 when nothing was found).
    pub avg: f64,
    /// Maximum parity reduction of the top-5.
    pub max: f64,
    /// How many attributable subsets were found (≤ 5).
    pub found: usize,
}

/// Computes every bar of Figure 4.
pub fn bars(scale: RunScale) -> Vec<Bar> {
    let ranges: [(&str, SupportRange); 3] = [
        ("0-5%", SupportRange::small()),
        ("5-15%", SupportRange::medium()),
        (">=30%", SupportRange::large()),
    ];
    let mut out = Vec::new();
    for ds in all_paper_datasets() {
        let p = Prepared::new(&ds, scale, SEED);
        let forest = p.fit();
        for (label, range) in ranges {
            let fume = Fume::builder()
                .support(range)
                .forest(p.forest_cfg.clone())
                .build();
            let (avg, max, found) =
                match fume.run(&ExplainRequest::new(&p.train, &p.test, p.group).with_model(&forest)) {
                    Ok(report) if !report.top_k.is_empty() => {
                        let rs: Vec<f64> =
                            report.top_k.iter().map(|s| s.parity_reduction).collect();
                        let avg = rs.iter().sum::<f64>() / rs.len() as f64;
                        let max = rs.iter().copied().fold(f64::MIN, f64::max);
                        (avg, max, rs.len())
                    }
                    _ => (0.0, 0.0, 0),
                };
            out.push(Bar { dataset: p.name.clone(), range: label, avg, max, found });
        }
    }
    out
}

/// Regenerates Figure 4 as a markdown table.
pub fn run(scale: RunScale) -> String {
    let mut out = String::from(
        "## Figure 4: Quality of attributable subsets by support range\n\n\
         | Dataset | Support range | Avg parity reduction (top-5) | Max parity reduction | #found |\n\
         |---|---|---|---|---|\n",
    );
    for b in bars(scale) {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            b.dataset,
            b.range,
            pct(b.avg),
            pct(b.max),
            b.found
        ));
    }
    out.push_str(
        "\nPaper shape: German reduces >90% of bias across ranges; ACS Income \
         only reaches large reductions in the ≥30% range; small datasets admit \
         small attributable subsets, large datasets need larger ones.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::datasets::german_credit;

    /// Full `bars()` covers 15 runs — too slow for a unit test; check one.
    #[test]
    #[ignore = "trains forests end-to-end; run with: cargo test -p fume-bench --release -- --ignored"]
    fn german_medium_range_finds_subsets() {
        let scale = RunScale::quick();
        let p = Prepared::new(&german_credit(), scale, SEED);
        let fume = Fume::builder()
            .support(SupportRange::medium())
            .forest(p.forest_cfg.clone())
            .build();
        let report = fume.run(&ExplainRequest::new(&p.train, &p.test, p.group)).unwrap();
        assert!(!report.top_k.is_empty());
    }
}
