//! Figure 5 — FUME efficiency on synthetic data:
//! (a) runtime vs number of instances for several attribute counts;
//! (b) runtime vs number of distinct attribute values (n = 30 000, p = 10).

use std::time::Instant;

use fume_core::{ExplainRequest, Fume};
use fume_tabular::datasets::{synthetic, SyntheticConfig};
use fume_tabular::split::train_test_split;

use crate::common::SEED;
use crate::scale::RunScale;

/// One timing sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Instances generated.
    pub instances: usize,
    /// Attributes.
    pub attributes: usize,
    /// Distinct values per attribute.
    pub values: usize,
    /// End-to-end seconds.
    pub seconds: f64,
}

fn measure(instances: usize, attributes: usize, values: usize, scale: RunScale) -> Sample {
    let ds = synthetic(SyntheticConfig {
        num_attributes: attributes,
        values_per_attribute: values,
        seed: SEED,
    });
    let (data, group) =
        fume_tabular::generator::generate(&ds.spec, instances, SEED).expect("valid spec");
    let (train, test) = train_test_split(&data, 0.3, SEED).expect("non-empty");
    let fume = Fume::builder().forest(scale.forest(SEED)).build();
    let t0 = Instant::now();
    let _ = fume.run(&ExplainRequest::new(&train, &test, group));
    Sample { instances, attributes, values, seconds: t0.elapsed().as_secs_f64() }
}

/// Figure 5(a): sweep instances × attributes (binary attributes).
pub fn run_a(scale: RunScale) -> String {
    let instance_grid: Vec<usize> = if scale.data_fraction >= 1.0 {
        vec![10_000, 30_000, 50_000]
    } else {
        vec![1_000, 3_000, 5_000]
    };
    let attr_grid = [5usize, 10, 15, 20];
    let mut out = String::from(
        "## Figure 5(a): runtime vs #instances and #attributes (d = 2)\n\n\
         | #instances | #attributes | Time (sec) |\n|---|---|---|\n",
    );
    for &n in &instance_grid {
        for &p in &attr_grid {
            let s = measure(n, p, 2, scale);
            out.push_str(&format!("| {} | {} | {:.2} |\n", s.instances, s.attributes, s.seconds));
        }
    }
    out.push_str(
        "\nPaper shape: runtime grows with both instance count and attribute \
         count; FUME stays efficient below ~50k instances.\n",
    );
    out
}

/// Figure 5(b): sweep distinct values per attribute (p = 10).
pub fn run_b(scale: RunScale) -> String {
    let n = if scale.data_fraction >= 1.0 { 30_000 } else { 3_000 };
    let mut out = format!(
        "## Figure 5(b): runtime vs #distinct attribute values (n = {n}, p = 10)\n\n\
         | #distinct values | Time (sec) |\n|---|---|\n",
    );
    for d in [2usize, 4, 6, 8, 10] {
        let s = measure(n, 10, d, scale);
        out.push_str(&format!("| {} | {:.2} |\n", s.values, s.seconds));
    }
    out.push_str(
        "\nPaper shape: no clear monotone trend — more values create more \
         subsets, but pruning removes most of them; runtime is governed by \
         the number of unlearning calls, not the raw lattice size.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "trains forests end-to-end; run with: cargo test -p fume-bench --release -- --ignored"]
    fn measure_returns_positive_time() {
        let s = measure(600, 5, 2, RunScale::quick());
        assert!(s.seconds > 0.0);
        assert_eq!(s.attributes, 5);
    }
}
