//! Extension experiment: DaRE design ablation. Compares the DaRE forest
//! against the HedgeCut-style extremely-randomized variant (all-random
//! splits) and across random-layer depths, on the axes that matter for
//! FUME: test accuracy, fairness-estimation work (retrained subtrees per
//! deletion) and deletion latency.

use std::time::Instant;

use fume_forest::extra_trees::ExtraForest;
use fume_forest::{DareConfig, DareForest};
use fume_tabular::datasets::german_credit;
use fume_tabular::Classifier;

use crate::common::{pct, Prepared, SEED};
use crate::scale::RunScale;

/// One ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Test accuracy.
    pub accuracy: f64,
    /// Seconds to delete a 5 % subset (average of 3 repeats over clones).
    pub delete_secs: f64,
    /// Subtrees retrained by that deletion.
    pub retrained: usize,
}

fn measure_delete(forest: &DareForest, train: &fume_tabular::Dataset, del: &[u32]) -> (f64, usize) {
    let mut secs = 0.0;
    let mut retrained = 0;
    for _ in 0..3 {
        let mut clone = forest.clone();
        let t0 = Instant::now();
        let report = clone.delete(del, train).expect("rows exist");
        secs += t0.elapsed().as_secs_f64();
        retrained = report.subtrees_retrained;
    }
    (secs / 3.0, retrained)
}

/// Runs the ablation on German Credit.
pub fn rows(scale: RunScale) -> Vec<AblationRow> {
    let p = Prepared::new(&german_credit(), scale, SEED);
    let del: Vec<u32> = (0..(p.train.num_rows() / 20) as u32).collect(); // 5 %
    let mut out = Vec::new();

    for d_rand in [0usize, 1, 3] {
        let cfg = DareConfig {
            random_depth: d_rand,
            ..p.forest_cfg.clone()
        };
        let forest = DareForest::fit(&p.train, cfg);
        let accuracy = forest.accuracy(&p.test);
        let (delete_secs, retrained) = measure_delete(&forest, &p.train, &del);
        out.push(AblationRow {
            variant: format!("DaRE (random_depth = {d_rand})"),
            accuracy,
            delete_secs,
            retrained,
        });
    }

    let ert = ExtraForest::fit(&p.train, p.forest_cfg.clone());
    let accuracy = ert.accuracy(&p.test);
    let (delete_secs, retrained) = measure_delete(ert.as_dare(), &p.train, &del);
    out.push(AblationRow {
        variant: "Extremely randomized (HedgeCut-style)".into(),
        accuracy,
        delete_secs,
        retrained,
    });
    out
}

/// Renders the ablation table.
pub fn run(scale: RunScale) -> String {
    let mut out = String::from(
        "## Extension: DaRE design ablation (German, 5% subset deletion)\n\n\
         | Variant | Test accuracy | Delete time (s) | Subtrees retrained |\n\
         |---|---|---|---|\n",
    );
    for r in rows(scale) {
        out.push_str(&format!(
            "| {} | {} | {:.3} | {} |\n",
            r.variant,
            pct(r.accuracy),
            r.delete_secs,
            r.retrained
        ));
    }
    out.push_str(
        "\nReading: random layers push retrains deeper into the trees where \
         subtrees are small, so deletion *latency* drops sharply even when the \
         retrain *count* rises; the fully random ERT variant is cheapest of all \
         but pays a large accuracy penalty. DaRE's single random layer — best \
         accuracy with near-minimal deletion latency — is the sweet spot the \
         DaRE paper advocates and FUME relies on.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "trains forests end-to-end; run with: cargo test -p fume-bench --release -- --ignored"]
    fn four_variants_measured() {
        let rows = rows(RunScale::quick());
        assert_eq!(rows.len(), 4);
        // The ERT variant must delete at least as fast as fully-greedy DaRE.
        assert!(
            rows[3].delete_secs <= rows[0].delete_secs + 1e-3,
            "ert {} vs greedy {}",
            rows[3].delete_secs,
            rows[0].delete_secs
        );
    }
}
