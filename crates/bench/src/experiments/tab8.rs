//! Table 8 — FUME runtime on the five real-world datasets, against the
//! dataset *dimension* (`n × p`). The paper reports near-linear scaling
//! initially, degrading for the largest datasets.

use std::time::Instant;

use fume_core::{ExplainRequest, Fume};
use fume_tabular::datasets::all_paper_datasets;

use crate::common::{Prepared, SEED};
use crate::scale::RunScale;

/// One measured row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// `n × p` of the generated training data.
    pub dimension: usize,
    /// End-to-end seconds (training + search).
    pub seconds: f64,
    /// Unlearning operations performed.
    pub unlearning_ops: usize,
}

/// Measures all five datasets (Table 8 order).
pub fn rows(scale: RunScale) -> Vec<Row> {
    all_paper_datasets()
        .iter()
        .map(|ds| {
            let p = Prepared::new(ds, scale, SEED);
            let fume = Fume::builder().forest(p.forest_cfg.clone()).build();
            let t0 = Instant::now();
            let report = fume.run(&ExplainRequest::new(&p.train, &p.test, p.group));
            let seconds = t0.elapsed().as_secs_f64();
            Row {
                dataset: p.name.clone(),
                dimension: p.train.dimension(),
                seconds,
                unlearning_ops: report.map(|r| r.unlearning_operations).unwrap_or(0),
            }
        })
        .collect()
}

/// Regenerates Table 8.
pub fn run(scale: RunScale) -> String {
    let measured = rows(scale);
    let base_dim = measured[0].dimension.max(1) as f64;
    let base_t = measured[0].seconds.max(1e-9);
    let mut out = String::from(
        "## Table 8: FUME runtime vs dataset dimension\n\n\
         | Dataset | Dimension (n×p) | Time (sec) | Dim ratio | Time ratio | Unlearning ops | ms/op |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for r in &measured {
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2}x | {:.2}x | {} | {:.1} |\n",
            r.dataset,
            r.dimension,
            r.seconds,
            r.dimension as f64 / base_dim,
            r.seconds / base_t,
            r.unlearning_ops,
            1_000.0 * r.seconds / r.unlearning_ops.max(1) as f64,
        ));
    }
    out.push_str(
        "\nPaper shape (German→Adult→MEPS→SQF→ACS): time ratios track dimension \
         ratios roughly linearly at first and grow steeper for the largest \
         datasets. Total time is (#unlearning ops) × (per-op cost); the schema \
         determines the former (German's 21 rich attributes spawn the most \
         candidates), the dimension the latter (`ms/op` grows with n×p).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fume_tabular::datasets::german_credit;

    #[test]
    #[ignore = "trains forests end-to-end; run with: cargo test -p fume-bench --release -- --ignored"]
    fn single_dataset_row_is_measured() {
        let scale = RunScale::quick();
        let p = Prepared::new(&german_credit(), scale, SEED);
        let fume = Fume::builder().forest(p.forest_cfg.clone()).build();
        let t0 = Instant::now();
        let _ = fume.run(&ExplainRequest::new(&p.train, &p.test, p.group));
        assert!(t0.elapsed().as_secs_f64() > 0.0);
        assert_eq!(p.train.dimension(), p.train.num_rows() * 21);
    }
}
