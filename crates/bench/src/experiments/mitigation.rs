//! Extension experiment (not a paper table): how FUME-guided subset
//! removal stacks up against the classic mitigation families its related
//! work cites — pre-processing (massaging), data-blanket removal
//! (DropUnprivUnfavor) and post-processing (group thresholds) — on the
//! German Credit stand-in. The point FUME makes is that *diagnosing* the
//! responsible cohort lets you fix the violation with a fraction of the
//! intervention.

use fume_core::{drop_unpriv_unfavor, ExplainRequest, Fume};
use fume_fairness::{
    fit_group_thresholds, massage, predict_with_thresholds, FairnessMetric, GroupConfusion,
};
use fume_forest::DareForest;
use fume_tabular::datasets::german_credit;
use fume_tabular::Classifier;

use crate::common::{pct, Prepared, SEED};
use crate::scale::RunScale;

/// One mitigation strategy's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Strategy name.
    pub strategy: &'static str,
    /// What fraction of the training data the intervention touches
    /// (removed or relabeled); post-processing touches none.
    pub data_touched: f64,
    /// Parity reduction achieved on the test set.
    pub parity_reduction: f64,
    /// Test accuracy after the intervention.
    pub accuracy_after: f64,
}

/// Runs all four strategies on German Credit.
pub fn outcomes(scale: RunScale) -> (f64, f64, Vec<Outcome>) {
    let p = Prepared::new(&german_credit(), scale, SEED);
    let metric = FairnessMetric::StatisticalParity;
    let forest = p.fit();
    let bias_before = metric.bias(&forest, &p.test, p.group);
    let acc_before = forest.accuracy(&p.test);
    let reduction = |after: f64| {
        if bias_before <= f64::EPSILON {
            0.0
        } else {
            (bias_before - after) / bias_before
        }
    };
    let mut out = Vec::new();

    // --- FUME: remove the single most attributable subset ---
    let fume = Fume::builder().forest(p.forest_cfg.clone()).build();
    if let Ok(report) = fume.run(&ExplainRequest::new(&p.train, &p.test, p.group).with_model(&forest)) {
        if let Some(top) = report.top_k.first() {
            let (cleaned, _) = fume_core::apply_removal(&forest, &p.train, &top.rows);
            out.push(Outcome {
                strategy: "FUME top-1 subset removal",
                data_touched: top.support,
                parity_reduction: reduction(metric.bias(&cleaned, &p.test, p.group)),
                accuracy_after: cleaned.accuracy(&p.test),
            });
        }
    }

    // --- DropUnprivUnfavor ---
    let b = drop_unpriv_unfavor(&p.train, &p.test, p.group, metric, &p.forest_cfg);
    out.push(Outcome {
        strategy: "DropUnprivUnfavor",
        data_touched: b.removed_fraction,
        parity_reduction: b.parity_reduction,
        accuracy_after: b.accuracy_after,
    });

    // --- Massaging (pre-processing) ---
    let massaged = massage(&p.train, p.group, &forest);
    let retrained = DareForest::fit(&massaged.data, p.forest_cfg.clone());
    out.push(Outcome {
        strategy: "Massaging (relabel + retrain)",
        data_touched: (massaged.promoted.len() + massaged.demoted.len()) as f64
            / p.train.num_rows().max(1) as f64,
        parity_reduction: reduction(metric.bias(&retrained, &p.test, p.group)),
        accuracy_after: retrained.accuracy(&p.test),
    });

    // --- Group thresholds (post-processing) ---
    let fit = fit_group_thresholds(&forest, &p.train, p.group, metric, 19);
    let preds = predict_with_thresholds(&forest, &p.test, p.group, fit.thresholds);
    let confusion =
        GroupConfusion::tally(&preds, p.test.labels(), &p.test.privileged_mask(p.group));
    let bias_after = metric.from_confusion(&confusion).abs();
    let correct = preds
        .iter()
        .zip(p.test.labels())
        .filter(|(a, b)| a == b)
        .count();
    out.push(Outcome {
        strategy: "Group thresholds (post-processing)",
        data_touched: 0.0,
        parity_reduction: reduction(bias_after),
        accuracy_after: correct as f64 / p.test.num_rows().max(1) as f64,
    });

    (bias_before, acc_before, out)
}

/// Renders the extension table.
pub fn run(scale: RunScale) -> String {
    let (bias_before, acc_before, rows) = outcomes(scale);
    let mut out = format!(
        "## Extension: mitigation comparison on German Credit\n\n\
         Deployed model: |F| = {bias_before:.4}, accuracy {}.\n\n\
         | Strategy | Training data touched | Parity reduction | Accuracy after |\n\
         |---|---|---|---|\n",
        pct(acc_before),
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            r.strategy,
            pct(r.data_touched),
            pct(r.parity_reduction),
            pct(r.accuracy_after)
        ));
    }
    out.push_str(
        "\nReading: FUME's targeted removal achieves its reduction touching an \
         order of magnitude less data than blanket pre-processing, at minimal \
         accuracy cost; post-processing patches predictions without explaining \
         anything about the data.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "trains forests end-to-end; run with: cargo test -p fume-bench --release -- --ignored"]
    fn all_four_strategies_report() {
        let (_bias, _acc, rows) = outcomes(RunScale::quick());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.strategy.starts_with("FUME")));
    }
}
