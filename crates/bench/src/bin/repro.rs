//! `repro` — regenerates every table and figure of the FUME paper.
//!
//! ```text
//! repro --exp all                # everything, quick scale
//! repro --exp tab3 --full        # Table 3 at paper scale
//! repro --exp fig3 --out results # write markdown under results/
//! repro --exp tab9 --trace t.jsonl  # append a span/counter trace
//! ```
//!
//! Every run records spans and counters via `fume-obs`; a per-phase
//! profile table is printed to stderr after each experiment, and
//! `--trace FILE` (or `FUME_TRACE=FILE`) appends the raw event stream
//! as JSONL, one experiment after another.

use std::io::Write as _;
use std::path::PathBuf;

use fume_bench::experiments::{ablation, fig3, fig4, fig5, mitigation, tab1, tab2, tab8, tab9, topk};
use fume_bench::RunScale;

const EXPERIMENTS: &[&str] = &[
    "tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7", "tab8", "tab9", "fig3", "fig4",
    "fig5a", "fig5b", "mitigation", "ablation",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro --exp <{}|all> [--full] [--out DIR] [--trace FILE]",
        EXPERIMENTS.join("|")
    );
    std::process::exit(2);
}

fn run_one(exp: &str, scale: RunScale) -> Option<String> {
    let md = match exp {
        "tab1" => tab1::run(scale),
        "tab2" => tab2::run(scale),
        "tab3" => topk::run(topk::TopKTable::German, scale),
        "tab4" => topk::run(topk::TopKTable::Adult, scale),
        "tab5" => topk::run(topk::TopKTable::Sqf, scale),
        "tab6" => topk::run(topk::TopKTable::Acs, scale),
        "tab7" => topk::run(topk::TopKTable::Meps, scale),
        "tab8" => tab8::run(scale),
        "tab9" => tab9::run(scale),
        "fig3" => fig3::run(scale),
        "fig4" => fig4::run(scale),
        "fig5a" => fig5::run_a(scale),
        "fig5b" => fig5::run_b(scale),
        "mitigation" => mitigation::run(scale),
        "ablation" => ablation::run(scale),
        _ => return None,
    };
    Some(md)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = String::from("all");
    let mut scale = RunScale::quick();
    let mut out_dir: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> =
        std::env::var("FUME_TRACE").ok().filter(|s| !s.is_empty()).map(PathBuf::from);

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--exp" => exp = it.next().cloned().unwrap_or_else(|| usage()),
            "--full" => scale = RunScale::full(),
            "--out" => out_dir = Some(PathBuf::from(it.next().cloned().unwrap_or_else(|| usage()))),
            "--trace" => trace = Some(PathBuf::from(it.next().cloned().unwrap_or_else(|| usage()))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    let selected: Vec<&str> = if exp == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&exp.as_str()) {
        vec![exp.as_str()]
    } else {
        eprintln!("unknown experiment `{exp}`");
        usage();
    };

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    if let Some(path) = &trace {
        // Start each run with a fresh file; experiments append below.
        std::fs::write(path, "").expect("truncate trace file");
    }
    let rec = fume_obs::install();

    for name in selected {
        eprintln!("[repro] running {name} ...");
        let t0 = std::time::Instant::now();
        let md = run_one(name, scale).expect("experiment name validated above");
        eprintln!("[repro] {name} finished in {:.1}s", t0.elapsed().as_secs_f64());
        eprintln!("[repro] {name} profile:\n{}", rec.profile_table());
        println!("{md}");
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{name}.md"));
            let mut f = std::fs::File::create(&path).expect("create result file");
            f.write_all(md.as_bytes()).expect("write result file");
            eprintln!("[repro] wrote {}", path.display());
        }
        if let Some(path) = &trace {
            let mut f = std::fs::File::options()
                .append(true)
                .open(path)
                .expect("open trace file");
            f.write_all(rec.events_to_jsonl().as_bytes()).expect("append trace");
            eprintln!("[repro] appended {} trace events to {}", rec.event_count(), path.display());
        }
        rec.reset();
    }
}
