//! Run-scale presets: the paper's experiments at full size or at a
//! CI-friendly fraction.
//!
//! Absolute runtimes are not the reproduction target (different language,
//! hardware and data substrate); the *shape* of every experiment is. The
//! default scale keeps each experiment in seconds-to-minutes on a laptop
//! while preserving dataset proportions; `--full` re-runs at the paper's
//! published sizes.

use fume_forest::DareConfig;

/// How large to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunScale {
    /// Multiplier on each dataset's published row count.
    pub data_fraction: f64,
    /// Trees per forest.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Subsets per cloud in the Figure 3 scatter.
    pub fig3_subsets: usize,
}

impl RunScale {
    /// Small, fast preset (default): ~10 % data, 25 trees.
    pub fn quick() -> Self {
        Self { data_fraction: 0.10, n_trees: 25, max_depth: 8, fig3_subsets: 60 }
    }

    /// The paper's scale: full datasets, 100 trees, 1 000 subsets.
    pub fn full() -> Self {
        Self { data_fraction: 1.0, n_trees: 100, max_depth: 10, fig3_subsets: 1_000 }
    }

    /// Forest hyperparameters for this scale.
    pub fn forest(&self, seed: u64) -> DareConfig {
        DareConfig::default()
            .with_trees(self.n_trees)
            .with_max_depth(self.max_depth)
            .with_seed(seed)
    }

    /// Rows to generate for a dataset with `full_size` published rows.
    /// Small datasets are never scaled below 1 000 rows (German's full
    /// size) — below that, test-set fairness becomes too granular to rank
    /// subsets meaningfully.
    pub fn rows(&self, full_size: usize) -> usize {
        ((full_size as f64 * self.data_fraction).round() as usize)
            .max(1_000)
            .min(full_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let q = RunScale::quick();
        assert!(q.data_fraction < 1.0);
        assert_eq!(q.rows(1_000), 1_000, "clamped to the 1k minimum, capped at full");
        assert_eq!(q.rows(100_000), 10_000);
        let f = RunScale::full();
        assert_eq!(f.rows(45_222), 45_222);
        assert_eq!(f.forest(3).n_trees, 100);
        assert_eq!(f.forest(3).seed, 3);
    }
}
