//! Throughput of the offline trace toolchain: how fast does
//! `fume_obs::trace::parse_trace` chew through a realistic JSONL trace?
//! Emits `BENCH_trace.json` with the measured MB/s so `scripts/verify.sh`
//! can archive parse throughput alongside the engine benchmarks.
//!
//! ```text
//! cargo bench --bench trace_parse            # ~64k-event trace
//! cargo bench --bench trace_parse -- --smoke # ~8k-event CI run
//! ```

use std::hint::black_box;
use std::time::Instant;

use fume_obs::trace::{aggregate, parse_trace};

/// Builds a synthetic but structurally realistic trace: a header, then
/// well-nested two-deep span pairs interleaved with counters, gauges and
/// histogram samples — the event mix a real explain run produces.
fn synthetic_trace(events: usize) -> String {
    let mut out = String::with_capacity(events * 96);
    out.push_str(
        "{\"type\":\"header\",\"schema\":2,\"meta\":{\"bench\":\"trace_parse\",\"seed\":\"7\"}}\n",
    );
    let mut t = 1_000u64;
    let mut i = 0usize;
    while i + 6 <= events {
        let inner = 40_000 + (i as u64 % 17) * 1_000;
        out.push_str(&format!(
            "{{\"type\":\"span_start\",\"name\":\"lattice.evaluate\",\"t_ns\":{t},\"thread\":0,\"fields\":{{\"level\":{}}}}}\n",
            i % 5
        ));
        t += 500;
        out.push_str(&format!(
            "{{\"type\":\"span_start\",\"name\":\"forest.delete\",\"t_ns\":{t},\"thread\":0,\"fields\":{{}}}}\n"
        ));
        t += inner;
        out.push_str(&format!(
            "{{\"type\":\"span_end\",\"name\":\"forest.delete\",\"t_ns\":{t},\"thread\":0,\"total_ns\":{inner},\"self_ns\":{inner}}}\n"
        ));
        t += 200;
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":\"fume.unlearn_evals\",\"delta\":1,\"t_ns\":{t}}}\n"
        ));
        out.push_str(&format!(
            "{{\"type\":\"hist\",\"name\":\"ckpt.state_bytes\",\"value\":{},\"t_ns\":{t}}}\n",
            10_000 + i * 3
        ));
        t += 300;
        out.push_str(&format!(
            "{{\"type\":\"span_end\",\"name\":\"lattice.evaluate\",\"t_ns\":{t},\"thread\":0,\"total_ns\":{},\"self_ns\":1000}}\n",
            inner + 1_000
        ));
        t += 100;
        i += 6;
    }
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (mode, events, rounds) = if smoke { ("smoke", 8_400, 5) } else { ("full", 64_002, 5) };
    let text = synthetic_trace(events);
    let bytes = text.len();

    // Parse throughput: best-of-N wall-clock over the whole document.
    let mut best_parse = f64::INFINITY;
    let mut parsed_events = 0usize;
    for _ in 0..rounds {
        let t0 = Instant::now();
        let trace = parse_trace(black_box(&text)).expect("synthetic trace parses");
        best_parse = best_parse.min(t0.elapsed().as_secs_f64());
        parsed_events = trace.events.len();
    }
    let parse_mbps = bytes as f64 / 1e6 / best_parse;

    // Aggregation on top of the parsed form (the `summary` hot path).
    let trace = parse_trace(&text).expect("parses");
    let mut best_agg = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        black_box(aggregate(black_box(&trace)));
        best_agg = best_agg.min(t0.elapsed().as_secs_f64());
    }
    let agg_mevps = parsed_events as f64 / 1e6 / best_agg;

    println!("trace_parse ({mode} · {parsed_events} events · {:.2} MB)", bytes as f64 / 1e6);
    println!("  parse      {:>9.3}ms   {parse_mbps:>8.1} MB/s", best_parse * 1e3);
    println!("  aggregate  {:>9.3}ms   {agg_mevps:>8.2} Mevents/s", best_agg * 1e3);

    let json = format!(
        "{{\"bench\":\"trace_parse\",\"mode\":\"{mode}\",\"events\":{parsed_events},\
         \"bytes\":{bytes},\"parse_secs\":{best_parse:.6},\"parse_mb_per_sec\":{parse_mbps:.2},\
         \"aggregate_secs\":{best_agg:.6},\"aggregate_mevents_per_sec\":{agg_mevps:.3}}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(out, json).expect("write BENCH_trace.json");
    eprintln!("wrote BENCH_trace.json");
}
