//! DaRE forest training and prediction micro-benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fume_forest::{DareConfig, DareForest};
use fume_tabular::datasets::german_credit;
use fume_tabular::Classifier;

fn cfg(seed: u64) -> DareConfig {
    DareConfig::default().with_trees(25).with_max_depth(8).with_seed(seed)
}

fn bench_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("forest_fit");
    g.sample_size(10);
    for &rows in &[1_000usize, 4_000] {
        let (data, _) = german_credit()
            .generate_scaled(rows as f64 / 1_000.0, 5)
            .expect("generate");
        g.bench_with_input(BenchmarkId::from_parameter(rows), &data, |b, data| {
            b.iter(|| DareForest::fit(data, cfg(5)));
        });
    }
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (data, _) = german_credit().generate_full(6).expect("generate");
    let forest = DareForest::fit(&data, cfg(6));
    c.bench_function("forest_predict_1k_rows", |b| {
        b.iter(|| forest.predict_proba(&data));
    });
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
