//! DaRE forest training and prediction micro-benchmarks.

use fume_bench::harness::Harness;
use fume_forest::{DareConfig, DareForest};
use fume_tabular::datasets::german_credit;
use fume_tabular::Classifier;

fn cfg(seed: u64) -> DareConfig {
    DareConfig::default().with_trees(25).with_max_depth(8).with_seed(seed)
}

fn bench_fit(h: &mut Harness) {
    let mut g = h.benchmark_group("forest_fit");
    for &rows in &[1_000usize, 4_000] {
        let (data, _) = german_credit()
            .generate_scaled(rows as f64 / 1_000.0, 5)
            .expect("generate");
        g.bench_param("rows", rows, || DareForest::fit(&data, cfg(5)));
    }
}

fn bench_predict(h: &mut Harness) {
    let (data, _) = german_credit().generate_full(6).expect("generate");
    let forest = DareForest::fit(&data, cfg(6));
    h.bench_function("forest_predict_1k_rows", || forest.predict_proba(&data));
}

fn main() {
    let mut h = Harness::from_args();
    bench_fit(&mut h);
    bench_predict(&mut h);
}
