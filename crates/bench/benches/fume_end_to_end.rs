//! End-to-end FUME benchmarks: the full explain pipeline per dataset
//! scale (the cost the paper's Table 8 reports).

use fume_bench::harness::Harness;
use fume_core::{ExplainRequest, Fume, FumeConfig};
use fume_forest::{DareConfig, DareForest};
use fume_lattice::SupportRange;
use fume_tabular::datasets::{german_credit, planted_toy};
use fume_tabular::split::train_test_split;

fn main() {
    let mut h = Harness::from_args();
    let mut g = h.benchmark_group("fume_explain");

    // Toy: small search space, fast unlearning.
    {
        let (data, group) = planted_toy().generate_full(23).expect("generate");
        let (train, test) = train_test_split(&data, 0.3, 23).expect("split");
        let cfg = FumeConfig::default()
            .with_support(SupportRange::new(0.02, 0.25).expect("valid"))
            .with_forest(DareConfig::small(23));
        let forest = DareForest::fit(&train, cfg.forest.clone());
        let fume = Fume::new(cfg);
        g.bench_function("planted_toy_2k", || {
            fume.run(&ExplainRequest::new(&train, &test, group).with_model(&forest))
        });
    }

    // German at full published size.
    {
        let (data, group) = german_credit().generate_full(24).expect("generate");
        let (train, test) = train_test_split(&data, 0.3, 24).expect("split");
        let cfg = FumeConfig::default().with_forest(
            DareConfig::default().with_trees(25).with_max_depth(8).with_seed(24),
        );
        let forest = DareForest::fit(&train, cfg.forest.clone());
        let fume = Fume::new(cfg);
        g.bench_function("german_1k", || fume.run(&ExplainRequest::new(&train, &test, group).with_model(&forest)));
    }
}
