//! The unlearn-eval engine head-to-head: clone-per-eval (PR-1 shape)
//! vs scratch-pool + undo-journal rollback vs the incremental bias path
//! (journal-driven dirty-row prediction reuse), on Adult-scale synthetic
//! data. Emits `BENCH_unlearn_eval.json` with the measured throughputs
//! and speedups; `scripts/verify.sh` runs the `--smoke` mode and fails
//! if the pooled path ever regresses below the clone baseline, or the
//! incremental path below the pooled one.
//!
//! ```text
//! cargo bench --bench unlearn_eval            # full Adult-scale run
//! cargo bench --bench unlearn_eval -- --smoke # small CI-gate run
//! ```

use std::time::Instant;

use fume_core::prelude::*;
use fume_fairness::FairnessMetric;
use fume_tabular::datasets::adult;
use fume_tabular::split::train_test_split;

struct Setup {
    mode: &'static str,
    train: Dataset,
    test: Dataset,
    group: GroupSpec,
    forest: DareForest,
    subsets: Vec<Vec<u32>>,
    rounds: usize,
}

fn setup(smoke: bool) -> Setup {
    let (mode, scale, trees, depth, n_subsets, rounds) =
        if smoke { ("smoke", 0.05, 30, 8, 8, 3) } else { ("full", 0.5, 50, 14, 30, 3) };
    let (data, group) = adult().generate_scaled(scale, 10).expect("generate");
    // A substantial held-out split: scoring the counterfactual model is
    // part of what the incremental path claims to win on (re-predicting
    // only journal-dirty rows), so the bias evaluation must carry a
    // realistic share of the per-eval cost.
    let (train, test) = train_test_split(&data, 0.3, 10).expect("split");
    let cfg = DareConfig::default().with_trees(trees).with_max_depth(depth).with_seed(10);
    let forest = DareForest::fit(&train, cfg);
    // Small contiguous subsets spread across the id range — the regime of
    // deep lattice levels, where hundreds of narrow candidates are each
    // unlearned against the same deployed forest.
    let n = train.num_rows() as u32;
    let subsets: Vec<Vec<u32>> = (0..n_subsets as u32)
        .map(|i| {
            let size = (n / 2000).max(4) + (i % 4) * 2;
            let start = (i * (n / n_subsets as u32)).min(n - size - 1);
            (start..start + size).collect()
        })
        .collect();
    Setup { mode, train, test, group, forest, subsets, rounds }
}

/// Runs every subset through `removal` (delete → bias → restore), for
/// `rounds` repetitions; returns the ρ-determining bias vector of the
/// last round and the best round's wall-clock seconds.
fn run_path<R: RemovalMethod>(removal: R, s: &Setup) -> (Vec<f64>, f64) {
    let metric = FairnessMetric::StatisticalParity;
    removal.warm(1);
    let mut best = f64::INFINITY;
    let mut biases = Vec::new();
    for _ in 0..s.rounds {
        let t0 = Instant::now();
        let out: Vec<f64> = s
            .subsets
            .iter()
            .map(|subset| {
                removal.with_removed(subset, |m| metric.bias(m, &s.test, s.group))
            })
            .collect();
        best = best.min(t0.elapsed().as_secs_f64());
        biases = out;
    }
    (biases, best)
}

/// Like [`run_path`], but through [`RemovalMethod::bias_removed`] — the
/// question FUME's hot loop actually asks — so a removal method with an
/// incremental override gets to use it. The first round pays the
/// one-time routing-index build; best-of-rounds reports the warm path.
fn run_bias_path<R: RemovalMethod>(removal: R, s: &Setup) -> (Vec<f64>, f64) {
    let eval =
        BiasEval { metric: FairnessMetric::StatisticalParity, test: &s.test, group: s.group };
    removal.warm(1);
    let mut best = f64::INFINITY;
    let mut biases = Vec::new();
    for _ in 0..s.rounds {
        let t0 = Instant::now();
        let out: Vec<f64> =
            s.subsets.iter().map(|subset| removal.bias_removed(subset, &eval)).collect();
        best = best.min(t0.elapsed().as_secs_f64());
        biases = out;
    }
    (biases, best)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // `FUME_TRACE=<path>`: record the whole head-to-head as a JSONL trace,
    // so `fume-trace diff` can gate two runs against each other.
    let trace_path = std::env::var("FUME_TRACE").ok().filter(|p| !p.is_empty());
    if trace_path.is_some() {
        let rec = fume_obs::install();
        rec.reset();
        rec.set_meta("bench", "unlearn_eval");
        rec.set_meta("mode", if smoke { "smoke" } else { "full" });
    }
    let s = setup(smoke);
    let evals = s.subsets.len();

    let (clone_biases, clone_secs) = run_path(DareCloneRemoval::new(&s.forest, &s.train), &s);
    let (pool_biases, pool_secs) = run_path(DareRemoval::new(&s.forest, &s.train), &s);
    let (incr_biases, incr_secs) = run_bias_path(DareRemoval::new(&s.forest, &s.train), &s);

    // The engines must agree bit-for-bit before their speed is comparable.
    assert_eq!(clone_biases.len(), pool_biases.len());
    assert_eq!(clone_biases.len(), incr_biases.len());
    for ((a, b), c) in clone_biases.iter().zip(&pool_biases).zip(&incr_biases) {
        assert_eq!(a.to_bits(), b.to_bits(), "pool and clone paths diverged");
        assert_eq!(a.to_bits(), c.to_bits(), "incremental path diverged from full recompute");
    }

    let clone_tput = evals as f64 / clone_secs;
    let pool_tput = evals as f64 / pool_secs;
    let incr_tput = evals as f64 / incr_secs;
    let speedup = clone_secs / pool_secs;
    let incr_speedup = pool_secs / incr_secs;

    println!(
        "unlearn_eval ({} · {} rows · {} test rows · {} trees · {evals} evals/round · {} rounds)",
        s.mode,
        s.train.num_rows(),
        s.test.num_rows(),
        s.forest.config().n_trees,
        s.rounds
    );
    println!("  clone-per-eval   {clone_secs:>9.3}s   {clone_tput:>8.1} evals/s");
    println!("  pool+rollback    {pool_secs:>9.3}s   {pool_tput:>8.1} evals/s");
    println!("  incr dirty-rows  {incr_secs:>9.3}s   {incr_tput:>8.1} evals/s");
    println!("  speedup          {speedup:>9.2}x (pool vs clone)");
    println!("  incr_speedup     {incr_speedup:>9.2}x (incr vs pool)");

    let json = format!(
        "{{\"bench\":\"unlearn_eval\",\"mode\":\"{}\",\"rows\":{},\"trees\":{},\
         \"evals_per_round\":{evals},\"rounds\":{},\
         \"clone_per_eval_secs\":{clone_secs:.6},\"pool_rollback_secs\":{pool_secs:.6},\
         \"incr_rollback_secs\":{incr_secs:.6},\
         \"clone_evals_per_sec\":{clone_tput:.3},\"pool_evals_per_sec\":{pool_tput:.3},\
         \"incr_evals_per_sec\":{incr_tput:.3},\
         \"speedup\":{speedup:.3},\"incr_speedup\":{incr_speedup:.3}}}\n",
        s.mode,
        s.train.num_rows(),
        s.forest.config().n_trees,
        s.rounds
    );
    // `cargo bench` sets the executable's CWD to the package directory;
    // anchor the output at the workspace root instead.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_unlearn_eval.json");
    std::fs::write(out, json).expect("write BENCH_unlearn_eval.json");
    eprintln!("wrote BENCH_unlearn_eval.json");

    if let (Some(path), Some(rec)) = (trace_path, fume_obs::global()) {
        // Like the BENCH json: `cargo bench` runs with the package as CWD,
        // so anchor relative paths at the workspace root.
        let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let dest = root.join(&path);
        std::fs::write(&dest, rec.events_to_jsonl()).expect("write FUME_TRACE file");
        eprintln!("wrote trace to {path}");
    }
}
