//! Lattice generation, expansion and search-skeleton benchmarks,
//! including the pruning-rule ablation (Table 9's cost side).

use fume_bench::harness::Harness;
use fume_lattice::{
    expand_level, level1_nodes, search, Predicate, RuleToggles, SearchParams, SupportRange,
};
use fume_tabular::datasets::german_credit;

fn main() {
    let mut h = Harness::from_args();
    let (data, _) = german_credit().generate_full(17).expect("generate");

    h.bench_function("lattice_level1", || level1_nodes(&data, &[]));

    let l1 = level1_nodes(&data, &[]);
    h.bench_function("lattice_expand_level2", || expand_level(&data, &l1, true));

    // Toy evaluator isolates pure search/pruning overhead from unlearning.
    let eval = |p: &Predicate, rows: &[u32]| {
        if rows.len().is_multiple_of(2) {
            0.1 * p.len() as f64
        } else {
            -0.1
        }
    };
    let params =
        SearchParams::new(SupportRange::new(0.01, 0.5).expect("valid"), 3).expect("valid");
    h.bench_function("lattice_search_eta3_rules_on", || search(&data, &params, &eval));

    let mut ablated = params.clone();
    ablated.toggles = RuleToggles {
        rule4_parent_dominance: false,
        rule5_positive_only: false,
        ..RuleToggles::default()
    };
    h.bench_function("lattice_search_eta3_rules_off", || search(&data, &ablated, &eval));
}
