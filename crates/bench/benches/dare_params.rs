//! Ablation of DaRE's design knobs: random-layer depth and candidate
//! thresholds per attribute (`k'`) — their effect on deletion cost.
//! Deeper random layers and more cached thresholds should make deletions
//! cheaper (fewer retrains) at some training cost.

use fume_bench::harness::Harness;
use fume_forest::{DareConfig, DareForest};
use fume_tabular::datasets::german_credit;

fn bench_random_depth(h: &mut Harness) {
    let (data, _) = german_credit().generate_full(31).expect("generate");
    let subset: Vec<u32> = (0..50u32).collect();
    let mut g = h.benchmark_group("delete_by_random_depth");
    for &d_rand in &[0usize, 1, 3] {
        let cfg = DareConfig::default()
            .with_trees(25)
            .with_max_depth(8)
            .with_random_depth(d_rand)
            .with_seed(31);
        let forest = DareForest::fit(&data, cfg);
        g.bench_function(d_rand, || {
            let mut f = forest.clone();
            f.delete(&subset, &data).expect("valid ids");
            f
        });
    }
}

fn bench_thresholds(h: &mut Harness) {
    let (data, _) = german_credit().generate_full(32).expect("generate");
    let subset: Vec<u32> = (0..50u32).collect();
    let mut g = h.benchmark_group("delete_by_k_thresholds");
    for &k in &[1usize, 5, 15] {
        let cfg = DareConfig::default()
            .with_trees(25)
            .with_max_depth(8)
            .with_thresholds(k)
            .with_seed(32);
        let forest = DareForest::fit(&data, cfg);
        g.bench_function(k, || {
            let mut f = forest.clone();
            f.delete(&subset, &data).expect("valid ids");
            f
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_random_depth(&mut h);
    bench_thresholds(&mut h);
}
