//! Ablation of DaRE's design knobs: random-layer depth and candidate
//! thresholds per attribute (`k'`) — their effect on deletion cost.
//! Deeper random layers and more cached thresholds should make deletions
//! cheaper (fewer retrains) at some training cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fume_forest::{DareConfig, DareForest};
use fume_tabular::datasets::german_credit;

fn bench_random_depth(c: &mut Criterion) {
    let (data, _) = german_credit().generate_full(31).expect("generate");
    let subset: Vec<u32> = (0..50u32).collect();
    let mut g = c.benchmark_group("delete_by_random_depth");
    g.sample_size(10);
    for &d_rand in &[0usize, 1, 3] {
        let cfg = DareConfig::default()
            .with_trees(25)
            .with_max_depth(8)
            .with_random_depth(d_rand)
            .with_seed(31);
        let forest = DareForest::fit(&data, cfg);
        g.bench_with_input(BenchmarkId::from_parameter(d_rand), &forest, |b, forest| {
            b.iter(|| {
                let mut f = forest.clone();
                f.delete(&subset, &data).expect("valid ids");
                f
            });
        });
    }
    g.finish();
}

fn bench_thresholds(c: &mut Criterion) {
    let (data, _) = german_credit().generate_full(32).expect("generate");
    let subset: Vec<u32> = (0..50u32).collect();
    let mut g = c.benchmark_group("delete_by_k_thresholds");
    g.sample_size(10);
    for &k in &[1usize, 5, 15] {
        let cfg = DareConfig::default()
            .with_trees(25)
            .with_max_depth(8)
            .with_thresholds(k)
            .with_seed(32);
        let forest = DareForest::fit(&data, cfg);
        g.bench_with_input(BenchmarkId::from_parameter(k), &forest, |b, forest| {
            b.iter(|| {
                let mut f = forest.clone();
                f.delete(&subset, &data).expect("valid ids");
                f
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_random_depth, bench_thresholds);
criterion_main!(benches);
