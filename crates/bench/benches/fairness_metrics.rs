//! Fairness-metric evaluation micro-benchmarks.

use fume_bench::harness::Harness;
use fume_fairness::{fairness_report, FairnessMetric, GroupConfusion};
use fume_tabular::classifier::MajorityClassifier;
use fume_tabular::datasets::acs_income;

fn main() {
    let mut h = Harness::from_args();
    let (data, group) = acs_income().generate_scaled(0.5, 13).expect("generate");
    let preds: Vec<bool> = (0..data.num_rows()).map(|i| i % 3 == 0).collect();
    let mask = data.privileged_mask(group);

    let mut g = h.benchmark_group("fairness");
    g.bench_param("tally_confusion", data.num_rows(), || {
        GroupConfusion::tally(&preds, data.labels(), &mask)
    });
    for metric in FairnessMetric::ALL {
        g.bench_param("metric", metric.name(), || {
            metric.compute(&preds, data.labels(), &mask)
        });
    }
    let model = MajorityClassifier::fit(&data);
    g.bench_function("full_fairness_report", || fairness_report(&model, &data, group));
}
