//! Fairness-metric evaluation micro-benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fume_fairness::{fairness_report, FairnessMetric, GroupConfusion};
use fume_tabular::classifier::MajorityClassifier;
use fume_tabular::datasets::acs_income;

fn bench(c: &mut Criterion) {
    let (data, group) = acs_income().generate_scaled(0.5, 13).expect("generate");
    let preds: Vec<bool> = (0..data.num_rows()).map(|i| i % 3 == 0).collect();
    let mask = data.privileged_mask(group);

    let mut g = c.benchmark_group("fairness");
    g.bench_function(BenchmarkId::new("tally_confusion", data.num_rows()), |b| {
        b.iter(|| GroupConfusion::tally(&preds, data.labels(), &mask));
    });
    for metric in FairnessMetric::ALL {
        g.bench_function(BenchmarkId::new("metric", metric.name()), |b| {
            b.iter(|| metric.compute(&preds, data.labels(), &mask));
        });
    }
    let h = MajorityClassifier::fit(&data);
    g.bench_function("full_fairness_report", |b| {
        b.iter(|| fairness_report(&h, &data, group));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
