//! Request throughput of the persistent serve engine: cold requests
//! (cross-request eval cache disabled, every ρ paid in full) against
//! warm requests (cache primed, repeats answered without unlearning).
//! Emits `BENCH_serve.json`; `scripts/verify.sh` runs the `--smoke`
//! mode and fails if the warm path ever drops below the cold path.
//!
//! ```text
//! cargo bench --bench serve_throughput            # Adult-scale run
//! cargo bench --bench serve_throughput -- --smoke # small CI-gate run
//! ```

use std::time::Instant;

use fume_core::FumeConfig;
use fume_forest::DareConfig;
use fume_lattice::SupportRange;
use fume_serve::{Engine, EngineOptions, ExplainOverrides, JobReply};
use fume_tabular::datasets::adult;
use fume_tabular::split::train_test_split;

struct Setup {
    mode: &'static str,
    config: FumeConfig,
    train: fume_tabular::Dataset,
    test: fume_tabular::Dataset,
    group: fume_tabular::GroupSpec,
    requests: usize,
}

fn setup(smoke: bool) -> Setup {
    let (mode, scale, trees, depth, requests) =
        if smoke { ("smoke", 0.05, 20, 8, 4) } else { ("full", 0.3, 40, 12, 10) };
    let (data, group) = adult().generate_scaled(scale, 11).expect("generate");
    let (train, test) = train_test_split(&data, 0.3, 11).expect("split");
    let config = FumeConfig::default()
        .with_forest(DareConfig::default().with_trees(trees).with_max_depth(depth).with_seed(11))
        .with_support(SupportRange::new(0.05, 0.4).expect("support"))
        .with_max_literals(2);
    Setup { mode, config, train, test, group, requests }
}

fn engine(s: &Setup, cache_capacity: usize) -> Engine {
    Engine::new(
        s.config.clone(),
        s.train.clone(),
        s.test.clone(),
        s.group,
        EngineOptions { workers: 1, cache_capacity, ..EngineOptions::default() },
    )
    .expect("engine")
}

/// Serves `s.requests` identical explain requests sequentially and
/// returns (canonical report JSON, wall-clock seconds). When `primed`,
/// one untimed request runs first so every timed one finds a hot cache.
fn run_requests(engine: &Engine, s: &Setup, primed: bool) -> (String, f64) {
    engine.serve(|h| {
        let explain = || match h.explain(ExplainOverrides::default()).expect("submit").wait() {
            Ok(JobReply::Report(report)) => report.to_json(),
            other => panic!("explain job failed: {other:?}"),
        };
        if primed {
            explain();
        }
        let t0 = Instant::now();
        let mut last = String::new();
        for _ in 0..s.requests {
            last = explain();
        }
        (last, t0.elapsed().as_secs_f64())
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let s = setup(smoke);

    // Cold: the cache is disabled, so every request re-unlearns every
    // candidate subset — the per-request cost a stateless CLI run pays.
    let cold_engine = engine(&s, 0);
    let (cold_report, cold_secs) = run_requests(&cold_engine, &s, false);

    // Warm: the cache is on and primed; repeats never touch a forest.
    let warm_engine = engine(&s, 1 << 16);
    let (warm_report, warm_secs) = run_requests(&warm_engine, &s, true);

    assert_eq!(cold_report, warm_report, "cache changed the canonical report");
    let warm_stats = warm_engine.stats();
    assert!(warm_stats.cache.hits > 0, "warm phase never hit the cache");

    let cold_rps = s.requests as f64 / cold_secs;
    let warm_rps = s.requests as f64 / warm_secs;
    let speedup = warm_rps / cold_rps;

    println!(
        "serve_throughput ({} · {} rows · {} requests/phase)",
        s.mode,
        s.train.num_rows(),
        s.requests
    );
    println!("  cold (no cache)  {cold_secs:>9.3}s   {cold_rps:>8.2} req/s");
    println!("  warm (cached)    {warm_secs:>9.3}s   {warm_rps:>8.2} req/s");
    println!("  speedup          {speedup:>9.2}x");

    let json = format!(
        "{{\"bench\":\"serve_throughput\",\"mode\":\"{}\",\"rows\":{},\
         \"requests\":{},\"cold_secs\":{cold_secs:.6},\"warm_secs\":{warm_secs:.6},\
         \"cold_rps\":{cold_rps:.3},\"warm_rps\":{warm_rps:.3},\
         \"cache_hits\":{},\"cache_misses\":{},\
         \"speedup\":{speedup:.3}}}\n",
        s.mode,
        s.train.num_rows(),
        s.requests,
        warm_stats.cache.hits,
        warm_stats.cache.misses,
    );
    // `cargo bench` sets the executable's CWD to the package directory;
    // anchor the output at the workspace root instead.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, json).expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");
}
