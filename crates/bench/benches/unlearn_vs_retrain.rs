//! The paper's central efficiency claim: estimating a subset's effect via
//! DaRE unlearning vs retraining from scratch, across subset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fume_core::{DareRemoval, GbdtRetrainRemoval, RemovalMethod, RetrainRemoval};
use fume_forest::{DareConfig, DareForest, GbdtConfig};
use fume_tabular::datasets::{adult, german_credit};

fn bench(c: &mut Criterion) {
    let (data, _) = german_credit().generate_full(9).expect("generate");
    let cfg = DareConfig::default().with_trees(25).with_max_depth(8).with_seed(9);
    let forest = DareForest::fit(&data, cfg.clone());
    let gbdt_cfg = GbdtConfig { n_rounds: 25, seed: 9, ..GbdtConfig::default() };

    let mut g = c.benchmark_group("subset_removal");
    g.sample_size(10);
    for &pct in &[1usize, 5, 10] {
        let size = data.num_rows() * pct / 100;
        let subset: Vec<u32> = (0..size as u32).collect();

        let dare = DareRemoval::new(&forest, &data);
        g.bench_with_input(
            BenchmarkId::new("dare_unlearning", format!("{pct}pct")),
            &subset,
            |b, subset| b.iter(|| dare.remove(subset)),
        );

        let retrain = RetrainRemoval::new(&data, cfg.clone());
        g.bench_with_input(
            BenchmarkId::new("retrain_from_scratch", format!("{pct}pct")),
            &subset,
            |b, subset| b.iter(|| retrain.remove(subset)),
        );

        // The sequential-model worst case: GBDT has no cheap removal.
        let gbdt = GbdtRetrainRemoval::new(&data, gbdt_cfg.clone());
        g.bench_with_input(
            BenchmarkId::new("gbdt_retrain", format!("{pct}pct")),
            &subset,
            |b, subset| b.iter(|| gbdt.remove(subset)),
        );
    }
    g.finish();
}

/// The speedup that motivates DaRE grows with dataset size: repeat the
/// comparison at Adult scale (~22.6k rows), where unlearning a 1 % subset
/// is ~9× faster than retraining on this hardware.
fn bench_larger_dataset(c: &mut Criterion) {
    let (data, _) = adult().generate_scaled(0.5, 10).expect("generate");
    let cfg = DareConfig::default().with_trees(25).with_max_depth(8).with_seed(10);
    let forest = DareForest::fit(&data, cfg.clone());

    let mut g = c.benchmark_group("subset_removal_adult22k");
    g.sample_size(10);
    for &pct in &[1usize, 5] {
        let size = data.num_rows() * pct / 100;
        let subset: Vec<u32> = (0..size as u32).collect();
        let dare = DareRemoval::new(&forest, &data);
        g.bench_with_input(
            BenchmarkId::new("dare_unlearning", format!("{pct}pct")),
            &subset,
            |b, subset| b.iter(|| dare.remove(subset)),
        );
        let retrain = RetrainRemoval::new(&data, cfg.clone());
        g.bench_with_input(
            BenchmarkId::new("retrain_from_scratch", format!("{pct}pct")),
            &subset,
            |b, subset| b.iter(|| retrain.remove(subset)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench, bench_larger_dataset);
criterion_main!(benches);
