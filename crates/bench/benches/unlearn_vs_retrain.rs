//! The paper's central efficiency claim: estimating a subset's effect via
//! DaRE unlearning vs retraining from scratch, across subset sizes.

use fume_bench::harness::Harness;
use fume_core::{DareRemoval, GbdtRetrainRemoval, RemovalMethod, RetrainRemoval};
use fume_forest::{DareConfig, DareForest, GbdtConfig};
use fume_tabular::datasets::{adult, german_credit};

fn bench(h: &mut Harness) {
    let (data, _) = german_credit().generate_full(9).expect("generate");
    let cfg = DareConfig::default().with_trees(25).with_max_depth(8).with_seed(9);
    let forest = DareForest::fit(&data, cfg.clone());
    let gbdt_cfg = GbdtConfig { n_rounds: 25, seed: 9, ..GbdtConfig::default() };

    let mut g = h.benchmark_group("subset_removal");
    for &pct in &[1usize, 5, 10] {
        let size = data.num_rows() * pct / 100;
        let subset: Vec<u32> = (0..size as u32).collect();

        // `with_removed` with an empty closure isolates the cost of
        // producing the counterfactual model (delete+rollback, or retrain).
        let dare = DareRemoval::new(&forest, &data);
        g.bench_param("dare_unlearning", format!("{pct}pct"), || {
            dare.with_removed(&subset, |_| ())
        });

        let retrain = RetrainRemoval::new(&data, cfg.clone());
        g.bench_param("retrain_from_scratch", format!("{pct}pct"), || {
            retrain.with_removed(&subset, |_| ())
        });

        // The sequential-model worst case: GBDT has no cheap removal.
        let gbdt = GbdtRetrainRemoval::new(&data, gbdt_cfg.clone());
        g.bench_param("gbdt_retrain", format!("{pct}pct"), || {
            gbdt.with_removed(&subset, |_| ())
        });
    }
}

/// The speedup that motivates DaRE grows with dataset size: repeat the
/// comparison at Adult scale (~22.6k rows), where unlearning a 1 % subset
/// is ~9× faster than retraining on this hardware.
fn bench_larger_dataset(h: &mut Harness) {
    let (data, _) = adult().generate_scaled(0.5, 10).expect("generate");
    let cfg = DareConfig::default().with_trees(25).with_max_depth(8).with_seed(10);
    let forest = DareForest::fit(&data, cfg.clone());

    let mut g = h.benchmark_group("subset_removal_adult22k");
    for &pct in &[1usize, 5] {
        let size = data.num_rows() * pct / 100;
        let subset: Vec<u32> = (0..size as u32).collect();
        let dare = DareRemoval::new(&forest, &data);
        g.bench_param("dare_unlearning", format!("{pct}pct"), || {
            dare.with_removed(&subset, |_| ())
        });
        let retrain = RetrainRemoval::new(&data, cfg.clone());
        g.bench_param("retrain_from_scratch", format!("{pct}pct"), || {
            retrain.with_removed(&subset, |_| ())
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench(&mut h);
    bench_larger_dataset(&mut h);
}
