//! Pointer walk vs flattened prediction plan: full ensemble prediction
//! passes over an Adult-scale test set, plus the plan compile cost.
//! Emits `BENCH_predict.json`; `scripts/verify.sh` runs the `--smoke`
//! mode and fails if the plan kernel regresses below 1.5x over the
//! pointer walk. The two paths must agree bitwise before their speed is
//! comparable — the bench asserts full-vector bit equality every round,
//! and runs with `FUME_DEEPCHECK` semantics hard-coded (the comparison
//! here *is* the deepcheck, at bench scale, in release mode).
//!
//! ```text
//! cargo bench --bench predict_kernel            # full Adult-scale run
//! cargo bench --bench predict_kernel -- --smoke # small CI-gate run
//! ```

use std::time::Instant;

use fume_forest::{DareConfig, DareForest, PredictPlan};
use fume_tabular::datasets::adult;
use fume_tabular::split::train_test_split;
use fume_tabular::Dataset;

struct Setup {
    mode: &'static str,
    test: Dataset,
    forest: DareForest,
    /// Full passes per timed round: smoke-scale single passes are
    /// sub-millisecond, so each round times a batch and reports
    /// per-pass seconds — otherwise the gate compares timer noise.
    passes: usize,
    rounds: usize,
}

fn setup(smoke: bool) -> Setup {
    let (mode, scale, trees, depth, passes, rounds) =
        if smoke { ("smoke", 0.05, 30, 8, 30, 5) } else { ("full", 0.5, 50, 14, 5, 5) };
    let (data, _) = adult().generate_scaled(scale, 11).expect("generate");
    let (train, test) = train_test_split(&data, 0.3, 11).expect("split");
    let cfg = DareConfig::default().with_trees(trees).with_max_depth(depth).with_seed(11);
    let forest = DareForest::fit(&train, cfg);
    Setup { mode, test, forest, passes, rounds }
}

/// Best-of-rounds per-pass seconds for `f`, which runs one full pass.
fn time_passes(passes: usize, rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..passes {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / passes as f64);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let trace_path = std::env::var("FUME_TRACE").ok().filter(|p| !p.is_empty());
    if trace_path.is_some() {
        let rec = fume_obs::install();
        rec.reset();
        rec.set_meta("bench", "predict_kernel");
        rec.set_meta("mode", if smoke { "smoke" } else { "full" });
    }
    let s = setup(smoke);
    let rows = s.test.num_rows();
    let trees = s.forest.config().n_trees;

    // Compile cost, timed separately — the plan is reused across passes
    // in every real call site (routing build + base predictions share
    // one compile), so it must not be charged to each pass.
    let mut compile_secs = f64::INFINITY;
    for _ in 0..s.rounds {
        let t0 = Instant::now();
        let plan = PredictPlan::compile(&s.forest);
        compile_secs = compile_secs.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&plan);
    }
    let plan = PredictPlan::compile(&s.forest);

    // Bitwise equivalence before any speed claim: every row of the plan
    // kernel's output must carry the exact bits of the pointer walk.
    let reference = s.forest.predict_proba_pointer(&s.test);
    let mut out = vec![0.0f64; rows];
    plan.predict_into(&s.test, &mut out);
    for (row, (a, b)) in out.iter().zip(&reference).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "plan kernel diverged from the pointer walk at row {row}"
        );
    }

    let pointer_secs = time_passes(s.passes, s.rounds, || {
        std::hint::black_box(s.forest.predict_proba_pointer(&s.test));
    });
    let plan_secs = time_passes(s.passes, s.rounds, || {
        plan.predict_into(&s.test, &mut out);
        std::hint::black_box(&out);
    });

    let speedup = pointer_secs / plan_secs;
    let pointer_rps = rows as f64 / pointer_secs;
    let plan_rps = rows as f64 / plan_secs;

    println!(
        "predict_kernel ({} · {rows} test rows · {trees} trees · {} passes/round · {} rounds)",
        s.mode, s.passes, s.rounds
    );
    println!("  pointer walk   {:>12.6}s/pass   {pointer_rps:>12.0} rows/s", pointer_secs);
    println!("  plan kernel    {:>12.6}s/pass   {plan_rps:>12.0} rows/s", plan_secs);
    println!("  plan compile   {:>12.6}s ({} nodes, ~{} KiB)",
        compile_secs, plan.num_nodes(), plan.approx_bytes() / 1024);
    println!("  speedup        {speedup:>12.2}x (plan vs pointer)");

    let json = format!(
        "{{\"bench\":\"predict\",\"mode\":\"{}\",\"rows\":{rows},\"trees\":{trees},\
         \"passes_per_round\":{},\"rounds\":{},\
         \"pointer_secs\":{pointer_secs:.9},\"plan_secs\":{plan_secs:.9},\
         \"compile_secs\":{compile_secs:.9},\
         \"pointer_rows_per_sec\":{pointer_rps:.0},\"plan_rows_per_sec\":{plan_rps:.0},\
         \"speedup\":{speedup:.3}}}\n",
        s.mode, s.passes, s.rounds
    );
    let out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_predict.json");
    std::fs::write(out_path, json).expect("write BENCH_predict.json");
    eprintln!("wrote BENCH_predict.json");

    if let (Some(path), Some(rec)) = (trace_path, fume_obs::global()) {
        let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let dest = root.join(&path);
        std::fs::write(&dest, rec.events_to_jsonl()).expect("write FUME_TRACE file");
        eprintln!("wrote trace to {path}");
    }
}
