//! Live search progress: lock-free tick counters fed by the lattice
//! driver and the unlearn-eval engine, periodically snapshotted into
//! `progress` trace events and an optional observer callback (the CLI's
//! rewriting stderr status line).
//!
//! The hot path — [`tick_eval`] from inside the parallel eval closure —
//! is a handful of relaxed atomic ops plus one CAS-guarded time check;
//! it emits at most one snapshot per [`EMIT_EVERY_MS`]. Everything here
//! is inert (one relaxed load) until [`enable`] is called.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::clock::Stopwatch;
use crate::ProgressSnapshot;

/// Minimum milliseconds between periodic snapshots.
const EMIT_EVERY_MS: u64 = 100;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static LEVEL: AtomicU64 = AtomicU64::new(0);
static FRONTIER: AtomicU64 = AtomicU64::new(0);
static PLANNED: AtomicU64 = AtomicU64::new(0);
static DONE_LEVEL: AtomicU64 = AtomicU64::new(0);
static DONE_TOTAL: AtomicU64 = AtomicU64::new(0);
static DEDUPED: AtomicU64 = AtomicU64::new(0);
/// Epoch milliseconds of the last emitted snapshot (CAS-guarded).
static LAST_EMIT_MS: AtomicU64 = AtomicU64::new(0);
/// Epoch milliseconds when the current level started, for the rate.
static LEVEL_START_MS: AtomicU64 = AtomicU64::new(0);

static EPOCH: OnceLock<Stopwatch> = OnceLock::new();
type Observer = Box<dyn Fn(&ProgressSnapshot) + Send + Sync>;
static OBSERVER: OnceLock<Observer> = OnceLock::new();

fn now_ms() -> u64 {
    let sw = EPOCH.get_or_init(Stopwatch::start);
    sw.elapsed_nanos().checked_div(1_000_000).unwrap_or(0)
}

/// Turns progress tracking on (it stays on for the process lifetime,
/// like [`crate::install`]). Call [`set_observer`] first if live
/// output is wanted in addition to trace events.
pub fn enable() {
    let _ = now_ms(); // pin the epoch before the first tick
    ACTIVE.store(true, Ordering::Release);
}

/// Whether progress tracking is on — the single relaxed load every
/// inactive tick site pays.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Registers the process-wide observer called with each emitted
/// snapshot (first call wins) and enables tracking.
pub fn set_observer(obs: impl Fn(&ProgressSnapshot) + Send + Sync + 'static) {
    let _ = OBSERVER.set(Box::new(obs));
    enable();
}

fn snapshot() -> ProgressSnapshot {
    let done = DONE_LEVEL.load(Ordering::Relaxed);
    let planned = PLANNED.load(Ordering::Relaxed);
    let elapsed_ms = now_ms().saturating_sub(LEVEL_START_MS.load(Ordering::Relaxed));
    let rate = if elapsed_ms > 0 {
        done as f64 / (elapsed_ms as f64 / 1e3)
    } else {
        0.0
    };
    let remaining = planned.saturating_sub(done);
    let eta_s = if rate > 0.0 { remaining as f64 / rate } else { 0.0 };
    ProgressSnapshot {
        level: LEVEL.load(Ordering::Relaxed),
        frontier: FRONTIER.load(Ordering::Relaxed),
        planned,
        done,
        done_total: DONE_TOTAL.load(Ordering::Relaxed),
        deduped: DEDUPED.load(Ordering::Relaxed),
        rate,
        eta_s,
    }
}

fn emit() {
    let snap = snapshot();
    if let Some(rec) = crate::global() {
        rec.record_progress(snap);
    }
    if let Some(obs) = OBSERVER.get() {
        obs(&snap);
    }
}

/// Announces a new lattice level: `frontier` candidate patterns, of
/// which `planned` passed support gating and will be unlearn-evaluated.
/// Always emits a snapshot (level boundaries are the anchor points of
/// the trace's throughput series).
pub fn level_started(level: u64, frontier: u64, planned: u64) {
    if !active() {
        return;
    }
    LEVEL.store(level, Ordering::Relaxed);
    FRONTIER.store(frontier, Ordering::Relaxed);
    PLANNED.store(planned, Ordering::Relaxed);
    DONE_LEVEL.store(0, Ordering::Relaxed);
    LEVEL_START_MS.store(now_ms(), Ordering::Relaxed);
    LAST_EMIT_MS.store(now_ms(), Ordering::Relaxed);
    emit();
}

/// Records `n` completed unlearn-evals; emits a snapshot at most once
/// per [`EMIT_EVERY_MS`], and always when the level's plan completes.
pub fn tick_eval(n: u64) {
    if !active() {
        return;
    }
    let done = DONE_LEVEL.fetch_add(n, Ordering::Relaxed) + n;
    DONE_TOTAL.fetch_add(n, Ordering::Relaxed);
    let now = now_ms();
    let last = LAST_EMIT_MS.load(Ordering::Relaxed);
    let level_complete = done >= PLANNED.load(Ordering::Relaxed);
    if !level_complete && now.saturating_sub(last) < EMIT_EVERY_MS {
        return;
    }
    // One thread wins the right to emit this interval; losers skip.
    if LAST_EMIT_MS
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        emit();
    }
}

/// Records `n` evals satisfied from the dedup cache (they count toward
/// the level's plan without costing forest work).
pub fn tick_deduped(n: u64) {
    if !active() {
        return;
    }
    DEDUPED.fetch_add(n, Ordering::Relaxed);
    tick_eval(n);
}

/// Records `n` evals satisfied from a cross-run eval memo. Like
/// [`tick_deduped`], memo hits count toward the level's plan without
/// costing forest work and fold into the snapshot's `deduped` figure —
/// without this tick a warm run's `done` would never reach `planned`.
pub fn tick_memoized(n: u64) {
    tick_deduped(n);
}

/// Resets the run-scoped counters (tests and back-to-back experiments).
/// The observer and active flag are process-wide and stay.
pub fn reset() {
    for a in [&LEVEL, &FRONTIER, &PLANNED, &DONE_LEVEL, &DONE_TOTAL, &DEDUPED] {
        a.store(0, Ordering::Relaxed);
    }
}

/// Renders the one-line status text the CLI prints on stderr:
/// `level 2 · frontier 40 · evals 10/33 (55 total, 4 deduped) · 125/s · eta 0.2s`.
pub fn status_line(snap: &ProgressSnapshot) -> String {
    format!(
        "level {} · frontier {} · evals {}/{} ({} total, {} deduped) · {:.0}/s · eta {:.1}s",
        snap.level,
        snap.frontier,
        snap.done,
        snap.planned,
        snap.done_total,
        snap.deduped,
        snap.rate,
        snap.eta_s
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Progress state is process-wide; tests serialize on this lock.
    static PROGRESS_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn inactive_ticks_are_inert() {
        let _g = PROGRESS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Not enabled yet (or state reset): ticking must not move counters.
        if !active() {
            tick_eval(5);
            assert_eq!(DONE_TOTAL.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn level_lifecycle_produces_sane_snapshots() {
        let _g = PROGRESS_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        reset();
        level_started(2, 40, 33);
        tick_eval(10);
        tick_deduped(4);
        let snap = snapshot();
        assert_eq!(snap.level, 2);
        assert_eq!(snap.frontier, 40);
        assert_eq!(snap.planned, 33);
        assert_eq!(snap.done, 14);
        assert_eq!(snap.done_total, 14);
        assert_eq!(snap.deduped, 4);
        assert!(snap.rate >= 0.0 && snap.eta_s >= 0.0);
        // Completing the plan forces an emit path without panicking.
        tick_eval(19);
        assert_eq!(snapshot().done, 33);
        reset();
    }

    #[test]
    fn status_line_is_compact() {
        let s = status_line(&ProgressSnapshot {
            level: 2,
            frontier: 40,
            planned: 33,
            done: 10,
            done_total: 55,
            deduped: 4,
            rate: 125.0,
            eta_s: 0.184,
        });
        assert_eq!(
            s,
            "level 2 · frontier 40 · evals 10/33 (55 total, 4 deduped) · 125/s · eta 0.2s"
        );
    }
}
