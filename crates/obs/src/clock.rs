//! The workspace's sanctioned clock (lint rule **F003**).
//!
//! Model, lattice, and attribution code must be bit-for-bit
//! reproducible, so raw `std::time` reads are banned outside `fume-obs`
//! and the bench harness. Code that legitimately *reports* wall-clock
//! durations (experiment timings, `AttributionReport::eval_time`)
//! imports this module instead: every clock read in the workspace is
//! then greppable as either a span or a [`Stopwatch`], and the lint can
//! vouch that no timing value ever feeds back into model state.

use std::time::Instant;

pub use std::time::Duration;

/// A started monotonic timer. Reading it cannot perturb determinism —
/// there is deliberately no way to get "the current time", only elapsed
/// durations for reporting.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (~584 years).
    #[inline]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let d = sw.elapsed();
        assert!(d >= Duration::from_millis(2));
        assert!(sw.elapsed_nanos() >= 2_000_000);
    }
}
