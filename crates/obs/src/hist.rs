//! Log-bucketed histograms: constant-size, dependency-free duration and
//! value distributions.
//!
//! Buckets are *log-linear* (the coarse HdrHistogram layout): values
//! below [`SUB_BUCKETS`] get exact unit buckets, and every power-of-two
//! octave above that is split into [`SUB_BUCKETS`] linear sub-buckets.
//! With 16 sub-buckets per octave the worst-case relative error of a
//! reconstructed value is `1/16` ≈ 6.25% — tight enough for latency
//! percentiles, small enough (≤ ~1 KB of counts per name) to keep one
//! histogram per span name in the [`crate::Recorder`] aggregates.
//!
//! The exact minimum, maximum, count and sum are tracked alongside the
//! buckets, so `min()`/`max()`/`mean()` are exact; only the interior
//! quantiles are bucket-resolution.

/// Linear sub-buckets per power-of-two octave. Must be a power of two.
pub const SUB_BUCKETS: u64 = 16;

/// log2(SUB_BUCKETS), used to locate the octave of a value.
const SUB_SHIFT: u32 = SUB_BUCKETS.trailing_zeros();

/// Total bucket count: unit buckets for `0..SUB_BUCKETS`, then
/// `SUB_BUCKETS` per octave for octaves `SUB_SHIFT..64`.
const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_SHIFT as usize + 1);

/// Maps a value to its bucket index.
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    // v ≥ SUB_BUCKETS ⇒ exp ≥ SUB_SHIFT.
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_SHIFT)) - SUB_BUCKETS;
    let octave = (exp - SUB_SHIFT) as u64;
    ((octave + 1) * SUB_BUCKETS + sub) as usize
}

/// The lowest value mapping to bucket `b` (inverse of [`bucket_of`]).
fn bucket_low(b: usize) -> u64 {
    let b = b as u64;
    if b < SUB_BUCKETS {
        return b;
    }
    let octave = b / SUB_BUCKETS - 1;
    let sub = b % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << octave
}

/// The highest value mapping to bucket `b`.
fn bucket_high(b: usize) -> u64 {
    if (b + 1) as u64 == NUM_BUCKETS as u64 {
        return u64::MAX;
    }
    bucket_low(b + 1).saturating_sub(1)
}

/// A fixed-size log-linear histogram of `u64` samples (span durations in
/// nanoseconds, or any ad-hoc value recorded via [`crate::histogram!`]).
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0u64; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) at bucket resolution: the
    /// midpoint of the bucket containing the sample of rank
    /// `ceil(q · count)`, clamped to the exact observed `[min, max]`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q = 0 means the first.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = bucket_low(b) + (bucket_high(b) - bucket_low(b)) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(low, high, count)` ranges, low to high.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (bucket_low(b), bucket_high(b), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotone_and_self_inverse() {
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            for off in [0u64, 1, 7] {
                values.push((1u64 << exp).saturating_add(off));
            }
        }
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of must be monotone at {v}");
            assert!(bucket_low(b) <= v, "low({b}) = {} > {v}", bucket_low(b));
            assert!(v <= bucket_high(b), "high({b}) = {} < {v}", bucket_high(b));
            prev = b;
        }
        // Unit buckets are exact.
        for v in 0..SUB_BUCKETS {
            let b = bucket_of(v);
            assert_eq!(bucket_low(b), v);
            assert_eq!(bucket_high(b), v);
        }
        assert!(bucket_of(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        // A deterministic multiplicative walk over five decades.
        let mut v = 17u64;
        let mut samples = Vec::new();
        for _ in 0..4000 {
            h.record(v);
            samples.push(v);
            v = v.wrapping_mul(48271) % 100_000_000 + 1;
        }
        samples.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1] as f64;
            let est = h.quantile(q) as f64;
            let rel = (est - exact).abs() / exact.max(1.0);
            assert!(
                rel <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
                "q={q}: est {est} vs exact {exact} (rel {rel})"
            );
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.min(), *samples.first().unwrap());
        assert_eq!(h.max(), *samples.last().unwrap());
    }

    #[test]
    fn empty_and_singleton() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0);
        h.record(42);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 42, "a single sample is every quantile");
        }
        assert_eq!(h.mean(), 42);
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..500u64 {
            let v = i * i + 3;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert!(h.quantile(1.0) > u64::MAX / 2);
    }

    #[test]
    fn nonzero_buckets_cover_all_samples() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 5, 1000, 123_456_789] {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().map(|(_, _, c)| c).sum();
        assert_eq!(total, 5);
        for (lo, hi, _) in h.nonzero_buckets() {
            assert!(lo <= hi);
        }
    }
}
