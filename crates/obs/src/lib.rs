//! `fume-obs`: dependency-free observability for the FUME stack.
//!
//! Four primitives, all routed through one process-wide [`Recorder`]:
//!
//! - **Spans** — RAII wall-time timers with nesting-aware self-time,
//!   opened with [`span!`]: `let _g = span!("lattice.level", level = 2);`
//! - **Counters** — named monotonic totals: `counter!("forest.nodes_retrained", n);`
//! - **Gauges** — last-value-wins instantaneous readings:
//!   `gauge!("forest.num_instances", n as f64);`
//! - **Histograms** — log-bucketed value distributions:
//!   `histogram!("ckpt.state_bytes", n);` — span durations are
//!   histogrammed automatically per span name.
//!
//! Until [`install`] is called, every instrumentation site costs one
//! relaxed atomic load and nothing else — no clock reads, no
//! allocation, no locking. With a recorder installed, events buffer in
//! memory (bounded) and fold into per-name aggregates, which render as
//! a human-readable profile table ([`Recorder::profile_table`]) or a
//! JSONL event stream ([`Recorder::events_to_jsonl`]).
//!
//! Naming convention: dotted lowercase paths, layer first —
//! `forest.delete`, `lattice.pruned.rule4`, `fume.phase.train`. The
//! full vocabulary is catalogued in `docs/observability.md`.

pub mod clock;
pub mod fault;
pub mod hist;
pub mod json;
pub mod progress;
mod recorder;
mod span;
pub mod sync;
pub mod trace;

use std::sync::OnceLock;

pub use hist::Histogram;
pub use recorder::{
    render_profile, Event, ProgressSnapshot, Recorder, SpanStats, TRACE_SCHEMA_VERSION,
};
pub use span::SpanGuard;

/// A structured field value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string.
    Str(String),
}

macro_rules! value_from {
    ($($t:ty => |$v:ident| $e:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from($v: $t) -> Self {
                $e
            }
        }
    )*};
}

value_from!(
    u16 => |v| Value::U64(u64::from(v)),
    u32 => |v| Value::U64(u64::from(v)),
    u64 => |v| Value::U64(v),
    usize => |v| Value::U64(v as u64),
    i32 => |v| Value::I64(i64::from(v)),
    i64 => |v| Value::I64(v),
    f64 => |v| Value::F64(v),
);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();
static ENABLED: sync::Flag = sync::Flag::new(false);

/// Installs the process-wide recorder (idempotent) and returns it.
/// From this point every `span!`/`counter!`/`gauge!` site records.
pub fn install() -> &'static Recorder {
    let rec = RECORDER.get_or_init(Recorder::new);
    ENABLED.set(true);
    rec
}

/// Whether a recorder is installed — the single atomic load every
/// disabled instrumentation site pays.
#[inline]
pub fn enabled() -> bool {
    ENABLED.get()
}

/// The installed recorder, if any.
#[inline]
pub fn global() -> Option<&'static Recorder> {
    if enabled() {
        RECORDER.get()
    } else {
        None
    }
}

/// Adds to a named counter on the installed recorder (no-op when none).
/// Call sites normally go through [`counter!`], which skips the call
/// entirely when disabled.
#[inline]
pub fn add_counter(name: &'static str, delta: u64) {
    if let Some(rec) = global() {
        rec.add_counter(name, delta);
    }
}

/// Sets a named gauge on the installed recorder (no-op when none).
#[inline]
pub fn set_gauge(name: &'static str, value: f64) {
    if let Some(rec) = global() {
        rec.set_gauge(name, value);
    }
}

/// Records one sample into a named histogram on the installed recorder
/// (no-op when none).
#[inline]
pub fn record_hist(name: &'static str, value: u64) {
    if let Some(rec) = global() {
        rec.record_hist(name, value);
    }
}

/// Opens a timing span for the enclosing scope. Bind the result:
///
/// ```
/// # use fume_obs::span;
/// let _span = span!("lattice.level", level = 2usize);
/// ```
///
/// Fields are `name = expr` pairs; any `Into<Value>` type works. With
/// no recorder installed this is one atomic load — the field
/// expressions are still evaluated, so keep them cheap.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter(
                $name,
                ::std::vec![$((stringify!($k), $crate::Value::from($v))),*],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Adds to a named monotonic counter:
/// `counter!("forest.nodes_retrained", report.subtrees_retrained)`.
/// One atomic load when no recorder is installed.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        if $crate::enabled() {
            $crate::add_counter($name, $delta as u64);
        }
    };
}

/// Sets a named gauge to an instantaneous value:
/// `gauge!("forest.num_instances", forest.num_instances() as f64)`.
/// One atomic load when no recorder is installed.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::set_gauge($name, $value as f64);
        }
    };
}

/// Records one sample into a named log-bucketed histogram:
/// `histogram!("ckpt.state_bytes", bytes)`. The distribution shows up
/// in the profile table and as `hist` events in the trace.
/// One atomic load when no recorder is installed.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::record_hist($name, $value as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The global recorder is process-wide state; tests touching it
    /// take this lock and reset before use.
    static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_global<T>(f: impl FnOnce(&'static Recorder) -> T) -> T {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = install();
        rec.reset();
        f(rec)
    }

    #[test]
    fn disabled_macros_record_nothing() {
        // `enabled()` may already be true if another test installed the
        // recorder first, so assert on the *guard* behaviour instead:
        // a disabled guard must stay inert through drop.
        let g = SpanGuard::disabled();
        drop(g);
        // And the macros must be expression-position-safe.
        let _g = span!("x.y");
        counter!("x.c", 1u64);
        gauge!("x.g", 2.0);
        histogram!("x.h", 3u64);
    }

    #[test]
    fn span_nesting_computes_self_time() {
        with_global(|rec| {
            {
                let _outer = span!("t.outer");
                std::thread::sleep(std::time::Duration::from_millis(8));
                {
                    let _inner = span!("t.inner", depth = 1u64);
                    std::thread::sleep(std::time::Duration::from_millis(8));
                }
            }
            let outer = rec.span_stats("t.outer").unwrap();
            let inner = rec.span_stats("t.inner").unwrap();
            assert_eq!(outer.calls, 1);
            assert_eq!(inner.calls, 1);
            // Inner's time is fully inside outer's.
            assert!(outer.total_ns >= inner.total_ns);
            // Outer's self-time excludes inner's total.
            assert!(outer.self_ns <= outer.total_ns - inner.total_ns + 1_000_000);
            // Inner has no children: self == total.
            assert_eq!(inner.self_ns, inner.total_ns);
        });
    }

    #[test]
    fn sibling_and_grandchild_spans_attribute_time_once() {
        with_global(|rec| {
            {
                let _a = span!("n.a");
                {
                    let _b = span!("n.b");
                    let _c = span!("n.c");
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                {
                    let _b2 = span!("n.b");
                }
            }
            let a = rec.span_stats("n.a").unwrap();
            let b = rec.span_stats("n.b").unwrap();
            let c = rec.span_stats("n.c").unwrap();
            assert_eq!(b.calls, 2);
            // c is nested under b, so b's child time includes c once —
            // a's child time counts b's totals, not b + c twice.
            assert!(a.total_ns >= b.total_ns);
            assert!(b.total_ns >= c.total_ns);
            let attributed = a.self_ns + b.self_ns + c.self_ns;
            assert!(
                attributed <= a.total_ns + 1_000_000,
                "self-times over-attribute: {attributed} vs {}",
                a.total_ns
            );
        });
    }

    #[test]
    fn counters_aggregate_across_threads() {
        with_global(|rec| {
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        for _ in 0..100 {
                            counter!("t.hits", 2u64);
                        }
                    });
                }
            });
            assert_eq!(rec.counter_value("t.hits"), Some(800));
        });
    }

    #[test]
    fn spans_on_different_threads_do_not_nest() {
        with_global(|rec| {
            let _outer = span!("th.outer");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = span!("th.worker");
                    std::thread::sleep(std::time::Duration::from_millis(5));
                });
            });
            drop(_outer);
            let w = rec.span_stats("th.worker").unwrap();
            // Worker ran on its own thread: its self-time is its own.
            assert_eq!(w.self_ns, w.total_ns);
        });
    }

    #[test]
    fn jsonl_lines_parse_with_tiny_checker() {
        with_global(|rec| {
            {
                let _g = span!("j.s", k = "va\"lue", n = 3u64, f = 0.5, yes = true);
            }
            counter!("j.c", 9u64);
            gauge!("j.g", 1.25);
            let out = rec.events_to_jsonl();
            assert!(out.lines().count() >= 4);
            for line in out.lines() {
                assert!(json_checker::parse(line), "invalid JSON line: {line}");
            }
        });
    }

    /// A deliberately tiny recursive-descent JSON validity checker —
    /// enough to prove each emitted line is well-formed JSON.
    mod json_checker {
        pub fn parse(s: &str) -> bool {
            let b = s.as_bytes();
            let mut i = 0;
            value(b, &mut i) && {
                skip_ws(b, &mut i);
                i == b.len()
            }
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> bool {
            skip_ws(b, i);
            match b.get(*i) {
                Some(b'{') => object(b, i),
                Some(b'[') => array(b, i),
                Some(b'"') => string(b, i),
                Some(b't') => literal(b, i, b"true"),
                Some(b'f') => literal(b, i, b"false"),
                Some(b'n') => literal(b, i, b"null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
                _ => false,
            }
        }

        fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> bool {
            if b[*i..].starts_with(lit) {
                *i += lit.len();
                true
            } else {
                false
            }
        }

        fn number(b: &[u8], i: &mut usize) -> bool {
            let start = *i;
            if b.get(*i) == Some(&b'-') {
                *i += 1;
            }
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            *i > start
        }

        fn string(b: &[u8], i: &mut usize) -> bool {
            if b.get(*i) != Some(&b'"') {
                return false;
            }
            *i += 1;
            while *i < b.len() {
                match b[*i] {
                    b'"' => {
                        *i += 1;
                        return true;
                    }
                    b'\\' => *i += 2,
                    0x00..=0x1F => return false,
                    _ => *i += 1,
                }
            }
            false
        }

        fn object(b: &[u8], i: &mut usize) -> bool {
            *i += 1; // past '{'
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return true;
            }
            loop {
                skip_ws(b, i);
                if !string(b, i) {
                    return false;
                }
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return false;
                }
                *i += 1;
                if !value(b, i) {
                    return false;
                }
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }

        fn array(b: &[u8], i: &mut usize) -> bool {
            *i += 1; // past '['
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return true;
            }
            loop {
                if !value(b, i) {
                    return false;
                }
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return true;
                    }
                    _ => return false,
                }
            }
        }
    }
}
