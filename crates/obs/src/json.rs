//! A hand-rolled JSON writer: just enough to emit the trace event
//! stream as JSONL without pulling in serde. Only what the recorder
//! needs — object/array framing, string escaping, and numbers.

/// Appends `s` to `out` as a JSON string literal, escaping per RFC 8259.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64`; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on a finite f64 round-trips and never produces inf/nan.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `"key":` (with escaping), prefixed by `,` unless first.
pub fn write_key(out: &mut String, first: &mut bool, key: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write_str(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn floats() {
        let mut s = String::new();
        write_f64(&mut s, 1.5);
        s.push(' ');
        write_f64(&mut s, f64::NAN);
        s.push(' ');
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "1.5 null null");
    }

    #[test]
    fn keys() {
        let mut s = String::from("{");
        let mut first = true;
        write_key(&mut s, &mut first, "a");
        s.push('1');
        write_key(&mut s, &mut first, "b");
        s.push('2');
        s.push('}');
        assert_eq!(s, r#"{"a":1,"b":2}"#);
    }
}
