//! A hand-rolled JSON writer and parser: just enough to emit and read
//! back the trace event stream as JSONL without pulling in serde.
//!
//! Writer and parser are RFC 8259-compliant on the subset they cover:
//! the writer escapes `"`, `\` and every control character below
//! U+0020 (short forms `\b \t \n \f \r` where they exist, `\uXXXX`
//! otherwise) and leaves all other characters as raw UTF-8; the parser
//! additionally accepts `\/` and `\uXXXX` escapes including UTF-16
//! surrogate pairs. Numbers are read as `f64`, which round-trips every
//! integer the recorder emits below 2^53.

/// Appends `s` to `out` as a JSON string literal, escaping per RFC 8259.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{8}' => out.push_str("\\b"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\u{c}' => out.push_str("\\f"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64`; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` on a finite f64 round-trips and never produces inf/nan.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `"key":` (with escaping), prefixed by `,` unless first.
pub fn write_key(out: &mut String, first: &mut bool, key: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write_str(out, key);
    out.push(':');
}

/// Maximum nesting depth the parser accepts — trace events are ≤ 3
/// levels deep, so this only guards against stack exhaustion on
/// hostile input.
const MAX_DEPTH: u32 = 64;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // fume-lint: allow(F005) -- integerness test: fract()==0.0 is the exact predicate wanted, not an epsilon comparison
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing whitespace is allowed,
/// trailing content is an error.
pub fn parse(s: &str) -> Result<Json, ParseError> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { msg, at: self.i }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &[u8], v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, ParseError> {
        self.i += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, ParseError> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v << 4 | u16::from(d);
            self.i += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if !self.b[self.i..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000
                                    + (u32::from(hi - 0xD800) << 10)
                                    + u32::from(lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar. The input is a &str, so the
                    // byte stream is valid UTF-8 by construction.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                        self.i += 1;
                    }
                    match std::str::from_utf8(&self.b[start..self.i]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // int part
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        // fraction
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        // exponent
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("invalid number"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn short_escapes_for_backspace_and_formfeed() {
        let mut s = String::new();
        write_str(&mut s, "\u{8}\u{c}\t");
        assert_eq!(s, r#""\b\f\t""#);
    }

    #[test]
    fn non_ascii_passes_through_raw() {
        let mut s = String::new();
        write_str(&mut s, "µs → 🦀");
        assert_eq!(s, "\"µs → 🦀\"");
    }

    #[test]
    fn floats() {
        let mut s = String::new();
        write_f64(&mut s, 1.5);
        s.push(' ');
        write_f64(&mut s, f64::NAN);
        s.push(' ');
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "1.5 null null");
    }

    #[test]
    fn keys() {
        let mut s = String::from("{");
        let mut first = true;
        write_key(&mut s, &mut first, "a");
        s.push('1');
        write_key(&mut s, &mut first, "b");
        s.push('2');
        s.push('}');
        assert_eq!(s, r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(parse("false"), Ok(Json::Bool(false)));
        assert_eq!(parse("0"), Ok(Json::Num(0.0)));
        assert_eq!(parse("-12.5e2"), Ok(Json::Num(-1250.0)));
        assert_eq!(parse(r#""hi""#), Ok(Json::Str("hi".into())));
    }

    #[test]
    fn parse_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let Some(Json::Arr(items)) = v.get("a") else { panic!("a missing") };
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("b"), Some(&Json::Null));
        assert_eq!(parse("[]"), Ok(Json::Arr(vec![])));
        assert_eq!(parse("{}"), Ok(Json::Obj(vec![])));
    }

    #[test]
    fn parse_escapes_and_surrogates() {
        let v = parse(r#""\"\\\/\b\f\n\r\tA""#).unwrap();
        assert_eq!(v, Json::Str("\"\\/\u{8}\u{c}\n\r\tA".into()));
        // 🦀 is U+1F980 = surrogate pair D83E DD80.
        assert_eq!(parse(r#""🦀""#), Ok(Json::Str("🦀".into())));
        assert!(parse(r#""\ud83e""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\udd80""#).is_err(), "unpaired low surrogate");
        assert!(parse(r#""\ud83ex""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "", "tru", "01", "1.", ".5", "1e", "+1", "nul", "\"abc", "{\"a\":}", "{\"a\" 1}",
            "[1,]", "{,}", "1 2", "\"a\u{1}b\"", "{\"a\":1}x",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), None, "beyond 2^53");
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn writer_parser_round_trip() {
        let cases = [
            "plain",
            "with \"quotes\" and \\slashes\\",
            "ctrl \u{0}\u{1}\u{1f} tab\t nl\n cr\r bs\u{8} ff\u{c}",
            "non-ascii µ→🦀 ütf",
            "",
        ];
        for case in cases {
            let mut out = String::new();
            write_str(&mut out, case);
            assert_eq!(
                parse(&out),
                Ok(Json::Str(case.into())),
                "round-trip failed for {case:?}"
            );
        }
    }
}
