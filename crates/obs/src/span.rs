//! Span guards: RAII timers with thread-local nesting so each span
//! knows how much of its wall time was spent in child spans.

use std::cell::RefCell;
use std::time::Instant;

use crate::sync::Counter;
use crate::Value;

/// Process-wide thread sequence numbers — stable small integers for the
/// trace (unlike `ThreadId`, which has no stable integer accessor).
static NEXT_THREAD_SEQ: Counter = Counter::new(0);

thread_local! {
    static THREAD_SEQ: u64 = NEXT_THREAD_SEQ.add(1);
    /// One child-time accumulator per open span on this thread.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn thread_seq() -> u64 {
    THREAD_SEQ.with(|s| *s)
}

/// An RAII span: created by the [`crate::span!`] macro, closed on drop.
///
/// A disabled guard (no recorder installed) is inert — it reads no
/// clock and touches no thread-local state.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    thread: u64,
}

impl SpanGuard {
    /// An inert guard, used when no recorder is installed.
    pub fn disabled() -> Self {
        SpanGuard { active: None }
    }

    /// Opens a span against the installed recorder. Called by the
    /// [`crate::span!`] macro after its enabled-check; a no-op when no
    /// recorder is installed.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, Value)>) -> Self {
        let Some(rec) = crate::global() else {
            return Self::disabled();
        };
        let thread = thread_seq();
        rec.span_start(name, fields, thread);
        CHILD_NS.with(|c| c.borrow_mut().push(0));
        SpanGuard { active: Some(ActiveSpan { name, start: Instant::now(), thread }) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let total_ns =
            u64::try_from(span.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let child_ns = CHILD_NS.with(|c| {
            let mut stack = c.borrow_mut();
            let mine = stack.pop().unwrap_or(0);
            // Everything under me — children included — counts as child
            // time for my parent.
            if let Some(parent) = stack.last_mut() {
                *parent = parent.saturating_add(total_ns);
            }
            mine
        });
        if let Some(rec) = crate::global() {
            rec.span_end(span.name, span.thread, total_ns, total_ns.saturating_sub(child_ns));
        }
    }
}
