//! The [`Recorder`]: thread-safe aggregation of spans, counters,
//! gauges and histograms, plus the bounded raw event stream behind
//! JSONL export.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::hist::Histogram;
use crate::json::{write_f64, write_key, write_str};
use crate::Value;

/// Trace schema version written in the header event. Version 2 added
/// the header itself plus `hist` and `progress` events.
pub const TRACE_SCHEMA_VERSION: u64 = 2;

/// Cap on buffered raw events; aggregates keep counting past it, and
/// the overflow is reported via [`Recorder::dropped_events`].
const MAX_EVENTS: usize = 1 << 20;

/// A live-progress snapshot from the search/eval pipeline (see
/// [`crate::progress`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProgressSnapshot {
    /// Current lattice level.
    pub level: u64,
    /// Patterns on the current level's frontier.
    pub frontier: u64,
    /// Unlearn-evals planned for this level.
    pub planned: u64,
    /// Unlearn-evals finished on this level (deduped hits included).
    pub done: u64,
    /// Unlearn-evals finished over the whole run.
    pub done_total: u64,
    /// Evals satisfied from the dedup cache over the whole run.
    pub deduped: u64,
    /// Recent evaluation rate, evals per second.
    pub rate: f64,
    /// Estimated seconds until the current level completes.
    pub eta_s: f64,
}

/// One raw trace event, timestamped relative to the recorder's epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened.
    SpanStart {
        /// Dotted span name.
        name: &'static str,
        /// Structured fields attached at the call site.
        fields: Vec<(&'static str, Value)>,
        /// Nanoseconds since the recorder was created.
        t_ns: u64,
        /// Per-process thread sequence number.
        thread: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Dotted span name.
        name: &'static str,
        /// Nanoseconds since the recorder was created (at close).
        t_ns: u64,
        /// Per-process thread sequence number.
        thread: u64,
        /// Wall time inside the span, children included.
        total_ns: u64,
        /// Wall time minus time spent in child spans on this thread.
        self_ns: u64,
    },
    /// A monotonic counter increment.
    Counter {
        /// Dotted counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
        /// Nanoseconds since the recorder was created.
        t_ns: u64,
    },
    /// A gauge set to an instantaneous value.
    Gauge {
        /// Dotted gauge name.
        name: &'static str,
        /// The new value.
        value: f64,
        /// Nanoseconds since the recorder was created.
        t_ns: u64,
    },
    /// One sample recorded into a named value histogram.
    Hist {
        /// Dotted histogram name.
        name: &'static str,
        /// The sample.
        value: u64,
        /// Nanoseconds since the recorder was created.
        t_ns: u64,
    },
    /// A live-progress snapshot.
    Progress {
        /// The snapshot.
        snap: ProgressSnapshot,
        /// Nanoseconds since the recorder was created.
        t_ns: u64,
    },
}

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of completed spans.
    pub calls: u64,
    /// Summed wall time, children included.
    pub total_ns: u64,
    /// Summed wall time minus child-span time.
    pub self_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

impl SpanStats {
    /// Summed wall time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }

    /// Mean wall time per call.
    pub fn mean(&self) -> Duration {
        Duration::from_nanos(self.total_ns.checked_div(self.calls).unwrap_or(0))
    }
}

#[derive(Default)]
struct State {
    events: Vec<Event>,
    dropped: u64,
    spans: BTreeMap<&'static str, SpanStats>,
    span_hists: BTreeMap<&'static str, Histogram>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Histogram>,
    meta: BTreeMap<&'static str, String>,
}

/// Collects trace events and aggregates from every thread of a run.
///
/// One recorder is normally installed process-wide via
/// [`crate::install`]; a standalone instance is useful in tests.
pub struct Recorder {
    epoch: Instant,
    state: crate::sync::TrackedMutex<State>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An empty recorder whose clock starts now.
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            // Quiet: this lock backs every `fume.sync.*` emission, so a
            // metric-emitting wrapper here would recurse into itself.
            state: crate::sync::TrackedMutex::new_quiet("obs.recorder", State::default()),
        }
    }

    /// Locks the aggregate state.
    ///
    /// Telemetry must never turn one panicking worker thread into a
    /// cascade: every mutation under this lock (push, BTreeMap insert,
    /// counter add) either completes or leaves the maps structurally
    /// valid, so after a poison the worst case is one lost event — the
    /// tracked lock's `Keep` recovery keeps recording rather than
    /// propagate the panic.
    fn state(&self) -> crate::sync::TrackedGuard<'_, State> {
        self.state.lock()
    }

    /// Nanoseconds since this recorder was created (saturating).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn push_event(state: &mut State, event: Event) {
        if state.events.len() < MAX_EVENTS {
            state.events.push(event);
        } else {
            state.dropped += 1;
        }
    }

    /// Records a span opening.
    ///
    /// The timestamp is taken *under* the state lock so buffered events
    /// are monotone in `t_ns` — an invariant `fume-trace check`
    /// verifies offline.
    pub fn span_start(
        &self,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
        thread: u64,
    ) {
        let mut st = self.state();
        let t_ns = self.now_ns();
        Self::push_event(&mut st, Event::SpanStart { name, fields, t_ns, thread });
    }

    /// Records a span closing and folds it into the aggregates,
    /// including the per-name duration histogram.
    pub fn span_end(&self, name: &'static str, thread: u64, total_ns: u64, self_ns: u64) {
        let mut st = self.state();
        let t_ns = self.now_ns();
        let s = st.spans.entry(name).or_default();
        s.calls += 1;
        s.total_ns += total_ns;
        s.self_ns += self_ns;
        s.max_ns = s.max_ns.max(total_ns);
        st.span_hists.entry(name).or_default().record(total_ns);
        Self::push_event(&mut st, Event::SpanEnd { name, t_ns, thread, total_ns, self_ns });
    }

    /// Adds `delta` to a monotonic counter.
    pub fn add_counter(&self, name: &'static str, delta: u64) {
        let mut st = self.state();
        let t_ns = self.now_ns();
        *st.counters.entry(name).or_insert(0) += delta;
        Self::push_event(&mut st, Event::Counter { name, delta, t_ns });
    }

    /// Sets a gauge to an instantaneous value.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        let mut st = self.state();
        let t_ns = self.now_ns();
        st.gauges.insert(name, value);
        Self::push_event(&mut st, Event::Gauge { name, value, t_ns });
    }

    /// Records one sample into a named value histogram.
    pub fn record_hist(&self, name: &'static str, value: u64) {
        let mut st = self.state();
        let t_ns = self.now_ns();
        st.hists.entry(name).or_default().record(value);
        Self::push_event(&mut st, Event::Hist { name, value, t_ns });
    }

    /// Buffers a live-progress snapshot in the trace.
    pub fn record_progress(&self, snap: ProgressSnapshot) {
        let mut st = self.state();
        let t_ns = self.now_ns();
        Self::push_event(&mut st, Event::Progress { snap, t_ns });
    }

    /// Attaches a run-description key to the trace header (seed,
    /// config hash, dataset fingerprint, …). Last write wins.
    pub fn set_meta(&self, key: &'static str, value: impl Into<String>) {
        self.state().meta.insert(key, value.into());
    }

    /// Aggregated stats for one span name, if it ever completed.
    pub fn span_stats(&self, name: &str) -> Option<SpanStats> {
        self.state().spans.get(name).copied()
    }

    /// Duration histogram for one span name, if it ever completed.
    pub fn span_hist(&self, name: &str) -> Option<Histogram> {
        self.state().span_hists.get(name).cloned()
    }

    /// Value histogram recorded via [`crate::histogram!`], if any.
    pub fn hist(&self, name: &str) -> Option<Histogram> {
        self.state().hists.get(name).cloned()
    }

    /// Current value of a counter, if it was ever incremented.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.state().counters.get(name).copied()
    }

    /// Last value of a gauge, if it was ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.state().gauges.get(name).copied()
    }

    /// Every instrumentation name seen so far, as `(name, kind)` pairs
    /// with kind one of `span`/`counter`/`gauge`/`histogram`. The
    /// doc-drift test diffs this against `docs/observability.md`.
    pub fn inventory(&self) -> Vec<(&'static str, &'static str)> {
        let st = self.state();
        let mut out = Vec::new();
        out.extend(st.spans.keys().map(|n| (*n, "span")));
        out.extend(st.counters.keys().map(|n| (*n, "counter")));
        out.extend(st.gauges.keys().map(|n| (*n, "gauge")));
        out.extend(st.hists.keys().map(|n| (*n, "histogram")));
        out
    }

    /// Number of buffered raw events.
    pub fn event_count(&self) -> usize {
        self.state().events.len()
    }

    /// Raw events dropped after the buffer cap was reached.
    pub fn dropped_events(&self) -> u64 {
        self.state().dropped
    }

    /// Clears events and aggregates; the epoch and meta keep running —
    /// meta describes the process, not one segment.
    pub fn reset(&self) {
        let mut st = self.state();
        let meta = std::mem::take(&mut st.meta);
        *st = State { meta, ..State::default() };
    }

    /// Serializes the buffered event stream as JSONL: a self-describing
    /// `header` line first, then one event per line (see
    /// `docs/observability.md` for the schema).
    pub fn events_to_jsonl(&self) -> String {
        let st = self.state();
        let mut out = String::with_capacity(st.events.len() * 96 + 128);
        out.push_str(&format!("{{\"type\":\"header\",\"schema\":{TRACE_SCHEMA_VERSION}"));
        if !st.meta.is_empty() {
            out.push_str(",\"meta\":{");
            let mut first = true;
            for (k, v) in &st.meta {
                write_key(&mut out, &mut first, k);
                write_str(&mut out, v);
            }
            out.push('}');
        }
        out.push_str("}\n");
        for ev in &st.events {
            write_event(&mut out, ev);
            out.push('\n');
        }
        if st.dropped > 0 {
            out.push_str(&format!(
                "{{\"type\":\"meta\",\"dropped_events\":{}}}\n",
                st.dropped
            ));
        }
        out
    }

    /// Renders the aggregate profile: spans sorted by total time with
    /// latency percentiles, then counters, gauges and histograms, as a
    /// fixed-width text table.
    pub fn profile_table(&self) -> String {
        let st = self.state();
        let spans: Vec<(String, SpanStats, Histogram)> = st
            .spans
            .iter()
            .map(|(k, v)| {
                let h = st.span_hists.get(k).cloned().unwrap_or_default();
                ((*k).to_owned(), *v, h)
            })
            .collect();
        let counters: Vec<(String, u64)> =
            st.counters.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect();
        let gauges: Vec<(String, f64)> =
            st.gauges.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect();
        let hists: Vec<(String, Histogram)> =
            st.hists.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect();
        render_profile(&spans, &counters, &gauges, &hists)
    }
}

/// Renders the profile table from aggregate data. Shared between the
/// in-process [`Recorder::profile_table`] and `fume-trace summary`,
/// which rebuilds the same aggregates from a trace file — byte-for-byte
/// identical output is the contract between them.
pub fn render_profile(
    spans: &[(String, SpanStats, Histogram)],
    counters: &[(String, u64)],
    gauges: &[(String, f64)],
    hists: &[(String, Histogram)],
) -> String {
    let mut out = String::new();
    let mut spans: Vec<&(String, SpanStats, Histogram)> = spans.iter().collect();
    spans.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then_with(|| a.0.cmp(&b.0)));
    let name_w = spans
        .iter()
        .map(|(n, _, _)| n.len())
        .chain(counters.iter().map(|(n, _)| n.len()))
        .chain(gauges.iter().map(|(n, _)| n.len()))
        .chain(hists.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(4)
        .max(4);
    if !spans.is_empty() {
        out.push_str(&format!(
            "{:name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "span", "calls", "total", "self", "mean", "p50", "p90", "p99", "max"
        ));
        for (name, s, h) in &spans {
            out.push_str(&format!(
                "{:name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                name,
                s.calls,
                fmt_ns(s.total_ns),
                fmt_ns(s.self_ns),
                fmt_ns(s.total_ns.checked_div(s.calls).unwrap_or(0)),
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.90)),
                fmt_ns(h.quantile(0.99)),
                fmt_ns(s.max_ns),
            ));
        }
    }
    if !counters.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("{:name_w$}  {:>12}\n", "counter", "value"));
        for (name, v) in counters {
            out.push_str(&format!("{:name_w$}  {:>12}\n", name, v));
        }
    }
    if !gauges.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("{:name_w$}  {:>12}\n", "gauge", "value"));
        for (name, v) in gauges {
            out.push_str(&format!("{:name_w$}  {:>12.4}\n", name, v));
        }
    }
    if !hists.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "{:name_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}\n",
            "histogram", "count", "p50", "p90", "p99", "max"
        ));
        for (name, h) in hists {
            out.push_str(&format!(
                "{:name_w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}\n",
                name,
                h.count(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max(),
            ));
        }
    }
    if out.is_empty() {
        out.push_str("(no events recorded)\n");
    }
    out
}

/// Human-readable nanoseconds: `532ns`, `18.3µs`, `4.71ms`, `1.20s`.
pub(crate) fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns_f / 1e6)
    } else {
        format!("{:.2}s", ns_f / 1e9)
    }
}

fn write_fields(out: &mut String, fields: &[(&'static str, Value)]) {
    out.push('{');
    let mut first = true;
    for (k, v) in fields {
        write_key(out, &mut first, k);
        match v {
            Value::U64(x) => out.push_str(&x.to_string()),
            Value::I64(x) => out.push_str(&x.to_string()),
            Value::F64(x) => write_f64(out, *x),
            Value::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
            Value::Str(s) => write_str(out, s),
        }
    }
    out.push('}');
}

fn write_event(out: &mut String, ev: &Event) {
    out.push('{');
    let mut first = true;
    match ev {
        Event::SpanStart { name, fields, t_ns, thread } => {
            write_key(out, &mut first, "type");
            out.push_str("\"span_start\"");
            write_key(out, &mut first, "name");
            write_str(out, name);
            write_key(out, &mut first, "t_ns");
            out.push_str(&t_ns.to_string());
            write_key(out, &mut first, "thread");
            out.push_str(&thread.to_string());
            if !fields.is_empty() {
                write_key(out, &mut first, "fields");
                write_fields(out, fields);
            }
        }
        Event::SpanEnd { name, t_ns, thread, total_ns, self_ns } => {
            write_key(out, &mut first, "type");
            out.push_str("\"span_end\"");
            write_key(out, &mut first, "name");
            write_str(out, name);
            write_key(out, &mut first, "t_ns");
            out.push_str(&t_ns.to_string());
            write_key(out, &mut first, "thread");
            out.push_str(&thread.to_string());
            write_key(out, &mut first, "total_ns");
            out.push_str(&total_ns.to_string());
            write_key(out, &mut first, "self_ns");
            out.push_str(&self_ns.to_string());
        }
        Event::Counter { name, delta, t_ns } => {
            write_key(out, &mut first, "type");
            out.push_str("\"counter\"");
            write_key(out, &mut first, "name");
            write_str(out, name);
            write_key(out, &mut first, "delta");
            out.push_str(&delta.to_string());
            write_key(out, &mut first, "t_ns");
            out.push_str(&t_ns.to_string());
        }
        Event::Gauge { name, value, t_ns } => {
            write_key(out, &mut first, "type");
            out.push_str("\"gauge\"");
            write_key(out, &mut first, "name");
            write_str(out, name);
            write_key(out, &mut first, "value");
            write_f64(out, *value);
            write_key(out, &mut first, "t_ns");
            out.push_str(&t_ns.to_string());
        }
        Event::Hist { name, value, t_ns } => {
            write_key(out, &mut first, "type");
            out.push_str("\"hist\"");
            write_key(out, &mut first, "name");
            write_str(out, name);
            write_key(out, &mut first, "value");
            out.push_str(&value.to_string());
            write_key(out, &mut first, "t_ns");
            out.push_str(&t_ns.to_string());
        }
        Event::Progress { snap, t_ns } => {
            write_key(out, &mut first, "type");
            out.push_str("\"progress\"");
            write_key(out, &mut first, "t_ns");
            out.push_str(&t_ns.to_string());
            write_key(out, &mut first, "level");
            out.push_str(&snap.level.to_string());
            write_key(out, &mut first, "frontier");
            out.push_str(&snap.frontier.to_string());
            write_key(out, &mut first, "planned");
            out.push_str(&snap.planned.to_string());
            write_key(out, &mut first, "done");
            out.push_str(&snap.done.to_string());
            write_key(out, &mut first, "done_total");
            out.push_str(&snap.done_total.to_string());
            write_key(out, &mut first, "deduped");
            out.push_str(&snap.deduped.to_string());
            write_key(out, &mut first, "rate");
            write_f64(out, snap.rate);
            write_key(out, &mut first, "eta_s");
            write_f64(out, snap.eta_s);
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_accumulate() {
        let r = Recorder::new();
        r.span_end("a.b", 0, 100, 60);
        r.span_end("a.b", 0, 300, 200);
        r.span_end("c", 1, 50, 50);
        let s = r.span_stats("a.b").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.total_ns, 400);
        assert_eq!(s.self_ns, 260);
        assert_eq!(s.max_ns, 300);
        assert_eq!(s.mean(), Duration::from_nanos(200));
        assert!(r.span_stats("nope").is_none());

        r.add_counter("k", 3);
        r.add_counter("k", 4);
        assert_eq!(r.counter_value("k"), Some(7));
        r.set_gauge("g", 1.5);
        r.set_gauge("g", 2.5);
        assert_eq!(r.gauge_value("g"), Some(2.5));
    }

    #[test]
    fn span_durations_fold_into_histograms() {
        let r = Recorder::new();
        for ns in [100u64, 200, 300, 400, 10_000] {
            r.span_end("h.s", 0, ns, ns);
        }
        let h = r.span_hist("h.s").unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 10_000);
        assert!(h.quantile(0.5) <= 400);
        assert!(r.span_hist("nope").is_none());
    }

    #[test]
    fn value_histograms_aggregate_and_stream() {
        let r = Recorder::new();
        r.record_hist("v.h", 7);
        r.record_hist("v.h", 9);
        let h = r.hist("v.h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 16);
        let out = r.events_to_jsonl();
        assert!(
            out.contains(r#""type":"hist","name":"v.h","value":7"#),
            "{out}"
        );
    }

    #[test]
    fn timestamps_are_monotone_under_contention() {
        let r = Recorder::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..200u64 {
                        r.add_counter("m.c", 1);
                        r.span_end("m.s", t, i, i);
                    }
                });
            }
        });
        let st = r.state();
        let mut prev = 0u64;
        for ev in &st.events {
            let t = match ev {
                Event::SpanStart { t_ns, .. }
                | Event::SpanEnd { t_ns, .. }
                | Event::Counter { t_ns, .. }
                | Event::Gauge { t_ns, .. }
                | Event::Hist { t_ns, .. }
                | Event::Progress { t_ns, .. } => *t_ns,
            };
            assert!(t >= prev, "event stream must be monotone in t_ns");
            prev = t;
        }
    }

    #[test]
    fn reset_clears_everything_but_meta() {
        let r = Recorder::new();
        r.add_counter("k", 1);
        r.span_end("s", 0, 10, 10);
        r.record_hist("h", 1);
        r.set_meta("seed", "7");
        assert!(r.event_count() > 0);
        r.reset();
        assert_eq!(r.event_count(), 0);
        assert!(r.counter_value("k").is_none());
        assert!(r.span_stats("s").is_none());
        assert!(r.hist("h").is_none());
        assert!(
            r.events_to_jsonl().contains(r#""seed":"7""#),
            "meta survives reset: it describes the process, not a segment"
        );
    }

    #[test]
    fn table_orders_spans_by_total_time() {
        let r = Recorder::new();
        r.span_end("fast", 0, 10, 10);
        r.span_end("slow", 0, 2_000_000_000, 1_000_000_000);
        r.add_counter("hits", 12);
        r.set_gauge("load", 0.7);
        let t = r.profile_table();
        let slow_at = t.find("slow").unwrap();
        let fast_at = t.find("fast").unwrap();
        assert!(slow_at < fast_at, "{t}");
        assert!(t.contains("2.00s"), "{t}");
        assert!(t.contains("hits"), "{t}");
        assert!(t.contains("0.7000"), "{t}");
        for col in ["p50", "p90", "p99"] {
            assert!(t.contains(col), "missing {col} column:\n{t}");
        }
    }

    #[test]
    fn empty_table_says_so() {
        assert_eq!(Recorder::new().profile_table(), "(no events recorded)\n");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(532), "532ns");
        assert_eq!(fmt_ns(18_300), "18.3µs");
        assert_eq!(fmt_ns(4_710_000), "4.71ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }

    #[test]
    fn jsonl_shapes() {
        let r = Recorder::new();
        r.span_start("s", vec![("level", Value::U64(2)), ("tag", Value::Str("x\"y".into()))], 3);
        r.span_end("s", 3, 40, 40);
        r.add_counter("c", 5);
        r.set_gauge("g", f64::NAN);
        let out = r.events_to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 events: {out}");
        assert!(
            lines[0].contains(&format!(r#""type":"header","schema":{TRACE_SCHEMA_VERSION}"#)),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains(r#""fields":{"level":2,"tag":"x\"y"}"#), "{}", lines[1]);
        assert!(lines[2].contains(r#""total_ns":40"#), "{}", lines[2]);
        assert!(lines[3].contains(r#""delta":5"#), "{}", lines[3]);
        assert!(lines[4].contains(r#""value":null"#), "{}", lines[4]);
    }

    #[test]
    fn header_carries_meta() {
        let r = Recorder::new();
        r.set_meta("seed", "42");
        r.set_meta("dataset", "adult");
        let out = r.events_to_jsonl();
        let header = out.lines().next().unwrap();
        assert!(
            header.contains(r#""meta":{"dataset":"adult","seed":"42"}"#),
            "{header}"
        );
    }

    #[test]
    fn progress_events_serialize() {
        let r = Recorder::new();
        r.record_progress(ProgressSnapshot {
            level: 2,
            frontier: 40,
            planned: 33,
            done: 10,
            done_total: 55,
            deduped: 4,
            rate: 125.0,
            eta_s: 0.184,
        });
        let out = r.events_to_jsonl();
        assert!(out.contains(r#""type":"progress""#), "{out}");
        assert!(out.contains(r#""level":2"#), "{out}");
        assert!(out.contains(r#""eta_s":0.184"#), "{out}");
    }
}
